#!/usr/bin/env python3
"""TBR over a polling MAC: time fairness with unmodified clients.

The paper (Section 4.1) observes that when the MAC polls stations
(802.11's PCF), TBR needs no client cooperation at all: the AP simply
polls token-positive stations.  This example builds a PCF-style cell
with a 1 Mbps and an 11 Mbps uploader (saturated UDP — the worst case
for ack-clocked regulation) and compares poll policies.

Run:  python examples/polling_coordinator.py
"""

from repro.channel import Channel
from repro.core import TbrScheduler
from repro.mac import (
    PolledStation,
    PollingCoordinator,
    RoundRobinPollPolicy,
    TokenPollPolicy,
)
from repro.phy import DOT11B_LONG_PREAMBLE
from repro.queueing import RoundRobinScheduler
from repro.sim import Simulator, us_from_s


class Backlog:
    """A saturating packet supply for one station."""

    def __init__(self, n=20_000):
        self.packets = [type("Pkt", (), {"size_bytes": 1500, "mac_dst": "ap",
                                         "station": None})() for _ in range(n)]


def run_case(policy_name: str, seconds: float = 5.0):
    sim = Simulator(seed=9)
    channel = Channel(sim)
    if policy_name == "round-robin":
        scheduler = RoundRobinScheduler()
        policy = RoundRobinPollPolicy()
    else:
        scheduler = TbrScheduler(sim)
        policy = TokenPollPolicy(scheduler)
    coordinator = PollingCoordinator(
        sim, channel, scheduler, DOT11B_LONG_PREAMBLE, policy
    )
    received = {}
    coordinator.rx_handler = lambda f: received.__setitem__(
        f.src, received.get(f.src, 0) + f.size_bytes
    )
    for name, rate in (("slow", 1.0), ("fast", 11.0)):
        station = PolledStation(
            sim, channel, name, DOT11B_LONG_PREAMBLE,
            rate_mbps=rate, queue_capacity=20_000,
        )
        policy.register(name)
        scheduler.associate(name)
        for pkt in Backlog().packets:
            station.enqueue(pkt)
    sim.run(until=us_from_s(seconds))
    return {
        name: received.get(name, 0) * 8.0 / us_from_s(seconds)
        for name in ("slow", "fast")
    }


def main() -> None:
    print("Saturated UDP uplink, 1 Mbps vs 11 Mbps, PCF-style polling.\n")
    rr = run_case("round-robin")
    print(f"round-robin polls : slow {rr['slow']:.2f}  fast {rr['fast']:.2f} "
          f" total {sum(rr.values()):.2f} Mbps   <- the anomaly, again")
    tbr = run_case("tbr")
    print(f"token-driven polls: slow {tbr['slow']:.2f}  fast {tbr['fast']:.2f} "
          f" total {sum(tbr.values()):.2f} Mbps   <- time fairness")
    print(
        "\nNo station-side changes, no notification bits: the coordinator "
        "just stops polling\nstations whose channel-time budget is spent."
    )


if __name__ == "__main__":
    main()
