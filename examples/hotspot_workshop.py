#!/usr/bin/env python3
"""Trace-driven evidence that rate diversity and congestion co-occur.

Recreates the paper's Section 3 in three steps:

1. synthesize workshop-session traces and report byte-per-rate mixes
   (Figure 1's WS bars);
2. *simulate* the EXP-1 office — an AP saturating four receivers behind
   walls, with ARF rate adaptation over an SNR-driven channel — and
   sniff the air to get the EXP-1 bar;
3. synthesize a dorm-day trace and run the busy-interval /
   heaviest-user analysis (Figure 5).

Run:  python examples/hotspot_workshop.py
"""

import statistics

from repro.experiments import fig1
from repro.traces import (
    DormTraceConfig,
    WorkshopTraceConfig,
    busy_intervals,
    generate_dorm_trace,
    generate_workshop_trace,
    heaviest_user_fractions,
    rate_fractions,
)


def main() -> None:
    print("1) Workshop sessions (synthetic, calibrated to Figure 1):")
    for session in ("WS-1", "WS-2", "WS-3"):
        config = WorkshopTraceConfig(
            session=session, total_bytes=20_000_000, n_users=20
        )
        records = generate_workshop_trace(config, seed=7)
        mix = rate_fractions(records)
        bars = ", ".join(
            f"{rate:g}M: {frac * 100:4.1f}%" for rate, frac in mix.items()
        )
        print(f"   {session}: {bars}")

    print("\n2) EXP-1 (live simulation: ARF + walls + SNR loss):")
    fractions = fig1.run_exp1(seed=7, seconds=15)
    for rate in (1.0, 2.0, 5.5, 11.0):
        share = fractions.get(rate, 0.0)
        bar = "#" * int(share * 40)
        print(f"   {rate:4g} Mbps {share * 100:5.1f}% {bar}")
    below = sum(f for r, f in fractions.items() if r < 11.0)
    print(f"   -> {below * 100:.0f}% of bytes below 11 Mbps "
          f"(paper: >50% at 1 Mbps alone)")

    print("\n3) Dorm day (synthetic) — are busy seconds single-user?")
    records = generate_dorm_trace(DormTraceConfig(), seed=7)
    intervals = busy_intervals(records, threshold_mbps=4.0)
    fractions5 = heaviest_user_fractions(records)
    multi = sum(1 for i in intervals if i.active_stations > 1)
    print(f"   busy 1-second intervals (>4 Mbps): {len(intervals)}")
    print(f"   heaviest user's mean share: "
          f"{statistics.mean(fractions5) * 100:.0f}%")
    print(f"   intervals with >1 active user: "
          f"{multi / len(intervals) * 100:.0f}%")
    print(
        "\nConclusion (as in the paper): congested periods almost always "
        "involve several users,\nand rates are diverse — so the multi-rate "
        "anomaly matters in practice."
    )


if __name__ == "__main__":
    main()
