#!/usr/bin/env python3
"""Quickstart: the multi-rate anomaly, and TBR fixing it.

Builds the paper's motivating scenario — a 1 Mbps laptop and an
11 Mbps laptop uploading files through the same access point — first
with a stock AP, then with the Time-based Regulator.

Run:  python examples/quickstart.py
"""

from repro.node import Cell


def run_case(scheduler: str) -> Cell:
    cell = Cell(seed=42, scheduler=scheduler)
    slow = cell.add_station("slow", rate_mbps=1.0)
    fast = cell.add_station("fast", rate_mbps=11.0)
    cell.tcp_flow(slow, direction="up")
    cell.tcp_flow(fast, direction="up")
    cell.run(seconds=12, warmup_seconds=3)
    return cell


def describe(label: str, cell: Cell) -> None:
    thr = cell.station_throughputs_mbps()
    occ = cell.occupancy_fractions()
    print(f"--- {label} ---")
    for name in ("slow", "fast"):
        print(
            f"  {name:5}: {thr[name]:5.2f} Mbps goodput, "
            f"{occ[name] * 100:4.1f}% of channel time"
        )
    print(f"  total: {sum(thr.values()):5.2f} Mbps")
    print()


def main() -> None:
    print("Two stations upload over TCP: one at 1 Mbps, one at 11 Mbps.\n")

    normal = run_case("fifo")
    describe("Stock AP (DCF throughput fairness)", normal)

    tbr = run_case("tbr")
    describe("AP with TBR (time-based fairness)", tbr)

    gain = (
        sum(tbr.station_throughputs_mbps().values())
        / sum(normal.station_throughputs_mbps().values())
        - 1.0
    )
    print(
        f"TBR improves aggregate throughput by {gain * 100:.0f}% "
        f"(the paper reports ~100% for this scenario),\n"
        f"while the slow station still gets what it would in an "
        f"all-1-Mbps cell (the baseline property)."
    )


if __name__ == "__main__":
    main()
