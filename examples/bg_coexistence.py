#!/usr/bin/env python3
"""802.11g next to 802.11b: the paper's forward-looking motivation.

The paper warns that mixed b/g deployments will make the anomaly worse:
"if 802.11g clients are slowed down to run at the rate of 802.11b
clients, there will be little incentive to upgrade."  This example puts
a 54 Mbps client and a 1 Mbps client in one protection-mode cell and
shows what each AP configuration delivers.

Run:  python examples/bg_coexistence.py
"""

from repro.node import Cell


def run_case(scheduler: str, g_rate: float, b_rate: float):
    cell = Cell(seed=5, scheduler=scheduler)
    g = cell.add_station("g-client", rate_mbps=g_rate)
    b = cell.add_station("b-client", rate_mbps=b_rate)
    cell.tcp_flow(g, direction="down")
    cell.tcp_flow(b, direction="down")
    cell.run(seconds=12, warmup_seconds=3)
    return cell.station_throughputs_mbps()


def main() -> None:
    print("A 54 Mbps 802.11g client and a 1 Mbps 802.11b client share "
          "a cell (downlink TCP).\n")

    solo = run_case("fifo", 54.0, 54.0)
    print(f"g client among g peers:      {solo['g-client']:6.2f} Mbps")

    normal = run_case("fifo", 54.0, 1.0)
    print(f"g client next to b (stock):  {normal['g-client']:6.2f} Mbps   "
          f"<- the upgrade bought almost nothing")

    tbr = run_case("tbr", 54.0, 1.0)
    print(f"g client next to b (TBR):    {tbr['g-client']:6.2f} Mbps   "
          f"<- time fairness restores the incentive")

    print(f"\nb client: stock {normal['b-client']:.2f} Mbps -> "
          f"TBR {tbr['b-client']:.2f} Mbps")
    print(
        "\nUnder TBR the b client still gets its all-b-cell baseline "
        "(half the channel time);\nthe g client stops paying for its "
        "neighbour's slow modulation."
    )


if __name__ == "__main__":
    main()
