#!/usr/bin/env python3
"""Sweep rate combinations and compare fairness notions end to end.

Reproduces the paper's Figures 2/3/9 story in one script: for each rate
pair and direction, run DCF+FIFO (throughput fairness) and TBR (time
fairness), then print measured values next to the analytic predictions
(Equations 6 and 12 over the paper's Table 2 baselines).

Run:  python examples/multirate_fairness.py [--seconds 15] [--seed 1]
"""

import argparse

from repro.analysis import NodeSpec, predict, PAPER_TABLE2_TCP_MBPS
from repro.experiments.common import fmt_table, run_competing

PAIRS = [(1.0, 11.0), (2.0, 11.0), (5.5, 11.0), (11.0, 11.0)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--direction", choices=("up", "down"), default="up"
    )
    args = parser.parse_args()

    rows = []
    for pair in PAIRS:
        nodes = [
            NodeSpec("n1", pair[0], beta_mbps=PAPER_TABLE2_TCP_MBPS[pair[0]]),
            NodeSpec("n2", pair[1], beta_mbps=PAPER_TABLE2_TCP_MBPS[pair[1]]),
        ]
        model = predict(nodes)
        normal = run_competing(
            list(pair), direction=args.direction, scheduler="fifo",
            seconds=args.seconds, seed=args.seed,
        )
        tbr = run_competing(
            list(pair), direction=args.direction, scheduler="tbr",
            seconds=args.seconds, seed=args.seed,
        )
        rows.append(
            [
                f"{pair[0]:g}vs{pair[1]:g}",
                f"{model.rf_total:.2f}",
                f"{normal.total_mbps:.2f}",
                f"{tbr.total_mbps:.2f}",
                f"{model.tf_total:.2f}",
                f"{(tbr.total_mbps / normal.total_mbps - 1) * 100:+.0f}%",
            ]
        )

    print(
        fmt_table(
            ["rates", "Eq6 (RF)", "DCF+FIFO", "TBR", "Eq12 (TF)", "TBR gain"],
            rows,
            title=(
                f"Aggregate TCP throughput (Mbps), {args.direction}link, "
                f"{args.seconds:.0f}s per run"
            ),
        )
    )
    print(
        "\nReading: measured DCF tracks Eq6, measured TBR tracks Eq12; "
        "the gain shrinks as the rates converge."
    )


if __name__ == "__main__":
    main()
