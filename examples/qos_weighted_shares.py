#!/usr/bin/env python3
"""QoS with TBR: weighted channel-time shares and client cooperation.

Two demonstrations of the paper's Section 4 extensions:

1. **Weighted shares** — TBR's token rates need not be equal; giving a
   premium station a 3x weight triples its channel-time share (and,
   same-rate, roughly its throughput).
2. **Client cooperation for uplink UDP** — uplink UDP has no ack stream
   the AP can withhold, so TBR piggybacks a defer hint on MAC ACKs and
   the station-side agent delays its queue.

Run:  python examples/qos_weighted_shares.py
"""

from repro.core import TbrConfig
from repro.node import Cell


def weighted_demo() -> None:
    print("1) Weighted TBR shares (both stations at 11 Mbps, bulk TCP):")
    config = TbrConfig(weights={"premium": 3.0, "basic": 1.0},
                       adjust_interval_us=0)
    cell = Cell(seed=11, scheduler="tbr", tbr_config=config)
    premium = cell.add_station("premium", rate_mbps=11.0)
    basic = cell.add_station("basic", rate_mbps=11.0)
    cell.tcp_flow(premium, direction="down")
    cell.tcp_flow(basic, direction="down")
    cell.run(seconds=12, warmup_seconds=3)
    thr = cell.station_throughputs_mbps()
    occ = cell.occupancy_fractions()
    for name in ("premium", "basic"):
        print(
            f"   {name:8}: weight {config.weights[name]:.0f}  "
            f"time {occ[name] * 100:4.1f}%  goodput {thr[name]:.2f} Mbps"
        )
    print(f"   throughput ratio: {thr['premium'] / thr['basic']:.2f} "
          f"(target 3.0)\n")


def cooperation_demo() -> None:
    print("2) Uplink UDP regulation via the client agent:")
    for cooperate in (False, True):
        config = TbrConfig(notify_clients=cooperate, defer_hint_us=8_000.0)
        cell = Cell(seed=11, scheduler="tbr", tbr_config=config)
        slow = cell.add_station("slow", rate_mbps=1.0,
                                cooperate_with_tbr=cooperate)
        fast = cell.add_station("fast", rate_mbps=11.0,
                                cooperate_with_tbr=cooperate)
        cell.udp_flow(slow, direction="up", rate_mbps=2.0)
        cell.udp_flow(fast, direction="up", rate_mbps=8.0)
        cell.run(seconds=12, warmup_seconds=3)
        occ = cell.occupancy_fractions()
        thr = cell.station_throughputs_mbps()
        label = "with client agent" if cooperate else "no client agent "
        print(
            f"   {label}: slow occupies {occ['slow'] * 100:4.1f}% "
            f"(thr {thr['slow']:.2f}), fast occupies {occ['fast'] * 100:4.1f}% "
            f"(thr {thr['fast']:.2f})"
        )
    print(
        "\n   Without cooperation the 1 Mbps UDP source hogs the air "
        "(the AP has nothing to withhold);\n   the notification bit "
        "restores time shares, as Section 4.1 describes."
    )


def main() -> None:
    weighted_demo()
    cooperation_demo()


if __name__ == "__main__":
    main()
