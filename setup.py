"""Packaging for the TanG04 reproduction.

Pure standard-library package (no runtime dependencies), src/ layout.
``pip install -e .`` puts a ``repro`` executable on the path, so the
CLI works without ``PYTHONPATH=src``::

    repro fig9
    repro scenario run churn
    repro campaign --jobs 8
"""

import pathlib
import re

from setuptools import find_packages, setup

HERE = pathlib.Path(__file__).parent
README = HERE / "README.md"
VERSION = re.search(
    r'^__version__ = "([^"]+)"',
    (HERE / "src" / "repro" / "__init__.py").read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-tang04",
    version=VERSION,
    description=(
        "Reproduction of Tan & Guttag, 'Time-based Fairness Improves "
        "Performance in Multi-rate WLANs' (USENIX ATC 2004): "
        "deterministic 802.11 simulator, TBR scheduler, experiment/"
        "campaign/scenario/perf subsystems"
    ),
    long_description=README.read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: System :: Networking",
        "Topic :: Scientific/Engineering",
    ],
)
