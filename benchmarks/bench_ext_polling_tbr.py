"""Extension: TBR dictating the poll order of a PCF-style MAC."""

import pytest

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_ext_polling_tbr(benchmark, report):
    result = run_once(
        benchmark, lambda: ablations.run_polling_tbr(seed=1, seconds=5.0)
    )
    report("ext_polling_tbr", ablations.render_polling_tbr(result))
    rr = result.throughput["rr-poll"]
    tbr = result.throughput["tbr-poll"]
    # Round-robin polling reproduces the anomaly (equal throughputs);
    # token-driven polling restores time fairness with unmodified
    # clients — the paper's Section 4.1 observation.
    assert rr["n1"] == pytest.approx(rr["n2"], rel=0.1)
    assert tbr["n2"] > 4.0 * tbr["n1"]
    assert sum(tbr.values()) > 1.5 * sum(rr.values())
    assert result.charged_time_ratio["tbr-poll"] == pytest.approx(1.0, rel=0.3)
