"""Figure 8: TBR adds no overhead in same-rate cells (up and down)."""

from repro.experiments import fig8

from benchmarks.conftest import run_once


def bench_fig08_same_rate_tbr(benchmark, report):
    result = run_once(benchmark, lambda: fig8.run(seed=1, seconds=12.0))
    report("fig08_same_rate_tbr", fig8.render(result))
    # Paper: "Exp-TBR and Exp-Normal yield almost identical results".
    for (direction, rate) in result.runs:
        overhead = result.overhead_fraction(direction, rate)
        assert abs(overhead) < 0.1, (direction, rate, overhead)
