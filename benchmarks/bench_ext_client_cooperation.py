"""Extension: the client agent for uplink UDP (Section 4.1)."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_ext_client_cooperation(benchmark, report):
    result = run_once(
        benchmark,
        lambda: ablations.run_client_cooperation(seed=1, seconds=15.0),
    )
    report(
        "ext_client_cooperation",
        ablations.render_client_cooperation(result),
    )
    # Without cooperation the slow UDP source keeps DCF's outsized
    # share; the notification bit pulls it down and the fast station's
    # throughput up.
    assert result.slow_occupancy("client-agent") < (
        result.slow_occupancy("no-agent") - 0.2
    )
    assert (
        result.throughput["client-agent"]["n2"]
        > 2.0 * result.throughput["no-agent"]["n2"]
    )
