"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures,
prints the paper-vs-measured rendering, and stores it under
``benchmarks/results/`` so EXPERIMENTS.md can reference the artifacts.
Simulations are deterministic and expensive, so each benchmark runs
exactly once (``benchmark.pedantic(rounds=1, iterations=1)``); the
timing numbers measure the simulator itself.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a rendered experiment and persist it to results/."""

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _report


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
