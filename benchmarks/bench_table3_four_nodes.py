"""Table 3: four nodes (1, 2, 11, 11) under both fairness notions."""

import pytest

from repro.experiments import table3

from benchmarks.conftest import run_once


def bench_table3_four_nodes(benchmark, report):
    result = run_once(benchmark, lambda: table3.run(seed=1, seconds=20.0))
    report("table3_four_nodes", table3.render(result))

    # The analytic table reproduces the paper exactly.
    pred = result.prediction
    assert pred.rf_total == pytest.approx(table3.PAPER_RF_TOTAL, abs=0.01)
    assert pred.tf_total == pytest.approx(table3.PAPER_TF_TOTAL, abs=0.01)
    assert pred.improvement == pytest.approx(0.82, abs=0.01)

    # The simulation reproduces the shape: RF equalizes, TF restores
    # the fast nodes, slow node keeps its all-slow-cell baseline.
    rf = result.simulated_rf.throughput_mbps
    tf = result.simulated_tf.throughput_mbps
    assert max(rf.values()) - min(rf.values()) < 0.25
    assert tf["n3"] > 2.5 * rf["n3"]
    assert tf["n1"] == pytest.approx(table3.PAPER_TF["n1"], rel=0.4)
    gain = result.simulated_tf.total_mbps / result.simulated_rf.total_mbps - 1
    assert gain > 0.5
