"""Ablation: uplink retry information (the Exp-TBR vs Eq12 gap).

Paper Section 5: "Without the retransmission information, TBR in this
case slightly biased the node sending at a lower data rate, thus
decreasing the total throughput by a small amount compared to Eq12."
"""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_abl_retry_accounting(benchmark, report):
    result = run_once(
        benchmark,
        lambda: ablations.run_retry_accounting(seed=1, seconds=15.0),
    )
    report("abl_retry_accounting", ablations.render_retry_accounting(result))
    # Blind accounting favours the lossy slow node; oracle accounting
    # (true attempt counts) restores the fast node and the total.
    assert result.slow_node_bias() > 0.0
    blind_total = sum(result.throughput["blind"].values())
    oracle_total = sum(result.throughput["oracle"].values())
    assert oracle_total > blind_total
