"""Figure 4: three same-rate nodes share equally in all four configs."""

from repro.experiments import fig4

from benchmarks.conftest import run_once


def bench_fig04_single_rate_sharing(benchmark, report):
    result = run_once(benchmark, lambda: fig4.run(seed=1, seconds=15.0))
    report("fig04_single_rate_sharing", fig4.render(result))
    for config, res in result.runs.items():
        thr = list(res.throughput_mbps.values())
        spread = (max(thr) - min(thr)) / (sum(thr) / 3)
        assert spread < 0.35, f"{config}: unequal shares {thr}"
    # Paper's orderings: UDP > TCP (ack overhead), up > down (the AP's
    # mandatory post-tx backoff caps a single sender).
    assert result.runs["udp_up"].total_mbps > result.runs["tcp_up"].total_mbps
    assert result.runs["udp_down"].total_mbps > result.runs["tcp_down"].total_mbps
    assert result.runs["udp_up"].total_mbps > result.runs["udp_down"].total_mbps
    assert result.runs["tcp_up"].total_mbps > result.runs["tcp_down"].total_mbps
