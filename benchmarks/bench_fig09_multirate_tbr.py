"""Figure 9: the headline result — TBR vs Normal vs Eq6/Eq12."""

import pytest

from repro.analysis.baseline import PAPER_TABLE2_TCP_MBPS
from repro.experiments import fig9

from benchmarks.conftest import run_once


def bench_fig09_multirate_tbr(benchmark, report):
    result = run_once(benchmark, lambda: fig9.run(seed=1, seconds=15.0))
    report("fig09_multirate_tbr", fig9.render(result))

    for direction in fig9.DIRECTIONS:
        # Gains ordered and sized as in the paper (+103/+35/+6 %).
        gains = {
            pair: result.improvement(direction, pair) for pair in fig9.PAIRS
        }
        assert gains[(1.0, 11.0)] > 0.6
        assert gains[(1.0, 11.0)] > gains[(2.0, 11.0)] > gains[(5.5, 11.0)] - 0.05
        assert gains[(5.5, 11.0)] < 0.2

        # Exp-Normal tracks Eq6; Exp-TBR tracks Eq12.
        for pair in fig9.PAIRS:
            models = fig9.model_predictions(pair)
            entry = result.runs[(direction, pair)]
            assert entry["normal"].total_mbps == pytest.approx(
                sum(models["eq6"].values()), rel=0.2
            )
            assert entry["tbr"].total_mbps == pytest.approx(
                sum(models["eq12"].values()), rel=0.2
            )

    # Baseline property: the slow node's TF throughput equals half the
    # 1 Mbps baseline regardless of the fast peer.
    tf_1v11 = result.runs[("up", (1.0, 11.0))]["tbr"]
    assert tf_1v11.throughput_mbps["n1"] == pytest.approx(
        PAPER_TABLE2_TCP_MBPS[1.0] / 2, rel=0.3
    )
