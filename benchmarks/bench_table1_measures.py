"""Table 1: fairness/efficiency criteria under RF vs TF (task model)."""

import pytest

from repro.experiments import table1

from benchmarks.conftest import run_once


def bench_table1_measures(benchmark, report):
    result = run_once(benchmark, lambda: table1.run(seed=1, max_seconds=120.0))
    report("table1_measures", table1.render(result))
    # The paper's qualitative table, row by row.
    assert result.rf.throughput_gap < result.tf.throughput_gap  # RF better
    assert result.tf.time_gap < result.rf.time_gap  # TF better
    assert result.tf.final_task_time_s == pytest.approx(
        result.rf.final_task_time_s, rel=0.1
    )  # same
    assert result.tf.avg_task_time_s < 0.8 * result.rf.avg_task_time_s  # TF better
    # Analytic fluid model agrees with the simulation within 15%.
    analytic_tf = result.analytic["tf"].avg_task_time_us / 1e6
    assert result.tf.avg_task_time_s == pytest.approx(analytic_tf, rel=0.15)
