"""Table 2: measured baseline throughputs beta(d, 1500, 2)."""

import pytest

from repro.experiments import table2

from benchmarks.conftest import run_once


def bench_table2_baselines(benchmark, report):
    result = run_once(benchmark, lambda: table2.run(seed=1, seconds=15.0))
    report("table2_baselines", table2.render(result))
    # Simulated baselines within 10% of the paper's measurements, and
    # strictly ordered by rate.
    for rate, paper in result.paper_mbps.items():
        assert result.measured_mbps[rate] == pytest.approx(paper, rel=0.10)
    ordered = [result.measured_mbps[r] for r in sorted(result.measured_mbps)]
    assert ordered == sorted(ordered)
