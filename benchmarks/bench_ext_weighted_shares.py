"""Extension: weighted channel-time shares (Section 4.5 QoS)."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_ext_weighted_shares(benchmark, report):
    result = run_once(
        benchmark, lambda: ablations.run_weighted_shares(seed=1, seconds=15.0)
    )
    report("ext_weighted_shares", ablations.render_weighted_shares(result))
    # A 3:1 weight shows up as a clear occupancy and throughput bias
    # (the ratio undershoots 3.0 slightly because contention overhead
    # is unweighted).
    assert result.occupancy_ratio() > 2.0
    assert result.throughput["n1"] > 2.0 * result.throughput["n2"]
