"""Figure 3: throughput and channel-time under RF vs TF."""

import pytest

from repro.experiments import fig3

from benchmarks.conftest import run_once


def bench_fig03_fairness_notions(benchmark, report):
    result = run_once(benchmark, lambda: fig3.run(seed=1, seconds=15.0))
    report("fig03_fairness_notions", fig3.render(result))

    same_fast = result.cases[(11.0, 11.0)]
    mixed = result.cases[(1.0, 11.0)]
    same_slow = result.cases[(1.0, 1.0)]

    # Same-rate combos identical under both notions.
    for combo in (same_fast, same_slow):
        assert combo["tf"].total_mbps == pytest.approx(
            combo["rf"].total_mbps, rel=0.1
        )
    # Mixed: RF equalizes throughput, TF equalizes channel time.  The
    # occupancy contrast is the claim: ~7x under RF, near parity under
    # TF (the slow node's true airtime keeps a margin of uncharged
    # contention overhead, so parity is approximate).
    rf_thr = mixed["rf"].throughput_mbps
    assert rf_thr["n1"] == pytest.approx(rf_thr["n2"], rel=0.2)
    rf_occ = mixed["rf"].occupancy
    tf_occ = mixed["tf"].occupancy
    assert rf_occ["n1"] / rf_occ["n2"] > 4.0
    assert tf_occ["n1"] / tf_occ["n2"] < 1.6
    # TF's mixed-rate aggregate roughly doubles RF's (paper: 2.9 vs 1.4).
    assert mixed["tf"].total_mbps > 1.7 * mixed["rf"].total_mbps
    # Paper bar values for the TF mixed case: ~(0.40, 2.52).
    tf_thr = mixed["tf"].throughput_mbps
    paper_n1, paper_n2 = fig3.PAPER_THROUGHPUT[(1.0, 11.0)]["tf"]
    assert tf_thr["n1"] == pytest.approx(paper_n1, rel=0.25)
    assert tf_thr["n2"] == pytest.approx(paper_n2, rel=0.15)
