"""Ablation: strict Figure 6 dequeue vs immediate borrowing."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_abl_work_conservation(benchmark, report):
    result = run_once(
        benchmark,
        lambda: ablations.run_work_conservation(seed=1, seconds=15.0),
    )
    report("abl_work_conservation", ablations.render_work_conservation(result))
    strict = result.throughput["strict"]
    borrowing = result.throughput["borrowing"]
    # Borrowing re-releases withheld TCP acks and collapses back to
    # throughput fairness; strict mode keeps the TF gain.
    assert sum(strict.values()) > 1.5 * sum(borrowing.values())
    assert abs(borrowing["n1"] - borrowing["n2"]) < 0.3
