"""Figure 2: the multi-rate anomaly (11vs11 vs 1vs11, TCP uplink)."""

import pytest

from repro.experiments import fig2

from benchmarks.conftest import run_once


def bench_fig02_motivation(benchmark, report):
    result = run_once(benchmark, lambda: fig2.run(seed=1, seconds=15.0))
    report("fig02_motivation", fig2.render(result))
    # Paper shape: 11vs11 ~5.08 total; 1vs11 ~1.34 total; slow node
    # occupies ~6.4x the fast node's channel time.
    assert result.same_rate.total_mbps == pytest.approx(
        fig2.PAPER_TOTAL_11V11, rel=0.15
    )
    assert result.mixed.total_mbps == pytest.approx(
        fig2.PAPER_TOTAL_11V1, rel=0.15
    )
    assert result.channel_time_ratio == pytest.approx(
        fig2.PAPER_CHANNEL_TIME_RATIO_11V1, rel=0.3
    )
