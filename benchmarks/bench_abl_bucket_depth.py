"""Ablation: bucket depth vs short-term fairness (Section 4.5)."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_abl_bucket_depth(benchmark, report):
    result = run_once(
        benchmark, lambda: ablations.run_bucket_depth(seed=1, seconds=12.0)
    )
    report("abl_bucket_depth", ablations.render_bucket_depth(result))
    depths = sorted(result.fairness)
    shallow = result.fairness[depths[0]]
    deepest = result.fairness[depths[-1]]
    # Long-term fairness holds for sane depths; very deep buckets allow
    # long bursts and degrade the short-window Jain index.
    assert shallow[0] > 0.95
    assert deepest[1] <= shallow[1] + 0.02
