"""Figure 1: rate diversity in workshop traces and the EXP-1 office."""

from repro.experiments import fig1

from benchmarks.conftest import run_once


def bench_fig01_rate_diversity(benchmark, report):
    result = run_once(benchmark, lambda: fig1.run(seed=1, seconds=20.0))
    report("fig01_rate_diversity", fig1.render(result))
    # Paper: WS-2 carries >30% of bytes below 11 Mbps; EXP-1 carries
    # >50% at 1 Mbps.
    assert result.below_11_fraction("WS-2") > 0.30
    assert result.at_1_fraction("EXP-1") > 0.50
