"""Extension: the OAR related-work baseline vs TBR (uplink UDP)."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_ext_oar_baseline(benchmark, report):
    result = run_once(
        benchmark, lambda: ablations.run_oar_comparison(seed=1, seconds=15.0)
    )
    report("ext_oar_baseline", ablations.render_oar_comparison(result))
    dcf = result.throughput["dcf"]
    oar = result.throughput["oar"]
    tbr = result.throughput["tbr"]
    # DCF: throughput-fair; OAR and TBR: time-fair (fast node restored).
    assert abs(dcf["n1"] - dcf["n2"]) < 0.3
    assert oar["n2"] > 3.0 * oar["n1"]
    assert tbr["n2"] > 2.0 * tbr["n1"]
    # OAR's bursting amortizes contention: highest aggregate of the three.
    assert sum(oar.values()) > sum(tbr.values()) > sum(dcf.values())
    # OAR holds near-equal time shares.
    occ = result.occupancy["oar"]
    assert occ["n1"] / occ["n2"] < 1.6
