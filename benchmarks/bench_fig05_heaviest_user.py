"""Figure 5: heaviest-user share of busy 1-second intervals."""

from repro.experiments import fig5

from benchmarks.conftest import run_once


def bench_fig05_heaviest_user(benchmark, report):
    result = run_once(benchmark, lambda: fig5.run(seed=1))
    report("fig05_heaviest_user", fig5.render(result))
    # Paper's reading of the Whittemore data: the heaviest user moves
    # the majority of bytes on average, yet rarely saturates a busy
    # second alone — other users are active in most busy intervals.
    assert len(result.intervals) > 200
    assert result.mean_heaviest_fraction > 0.5
    assert result.solo_fraction < 0.2
    assert result.multi_user_fraction > 0.8
