"""Extension: 802.11b/g mixed cells (the paper's motivation)."""

from repro.experiments import ablations

from benchmarks.conftest import run_once


def bench_ext_bg_coexistence(benchmark, report):
    result = run_once(
        benchmark, lambda: ablations.run_bg_coexistence(seed=1, seconds=15.0)
    )
    report("ext_bg_coexistence", ablations.render_bg_coexistence(result))
    # Stock AP: the g client is dragged to b-class throughput (or
    # worse); TBR restores several-fold more.
    assert result.throughput["normal"]["g1"] < 1.0
    assert result.g_recovery() > 3.0
    assert result.throughput["tbr"]["g1"] > 3.0
