"""Table 4: TBR's token-rate adjustment under unequal demand."""

import pytest

from repro.experiments import table4

from benchmarks.conftest import run_once


def bench_table4_rate_adjustment(benchmark, report):
    result = run_once(benchmark, lambda: table4.run(seed=1, seconds=15.0))
    report("table4_rate_adjustment", table4.render(result))
    # Paper: "There is no significant difference between the two sets of
    # results" — TBR must not cap the unconstrained flow at 50%.
    for which in ("normal", "tbr"):
        thr = result.throughput[which]
        paper = table4.PAPER[which]
        assert thr["n2"] == pytest.approx(paper["n2"], rel=0.1)
        assert thr["n1"] == pytest.approx(paper["n1"], rel=0.1)
    assert result.throughput["tbr"]["n1"] == pytest.approx(
        result.throughput["normal"]["n1"], rel=0.05
    )
