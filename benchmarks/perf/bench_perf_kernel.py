"""Raw kernel microbenchmark: schedule/execute/cancel throughput.

Exercises the kernel fast paths in isolation — batched scheduling
(``schedule_many``), timer reuse (``reschedule``), and the
lazy-cancellation/compaction machinery — so kernel-level regressions
show up without any MAC/PHY noise on top.
"""

from repro.sim import Simulator

from benchmarks.conftest import run_once

N_BATCHES = 200
BATCH = 100
CHURN_ROUNDS = 20_000


def _drive_kernel() -> dict:
    sim = Simulator(seed=1)

    # Batched one-shot events.
    executed = []
    for batch in range(N_BATCHES):
        sim.schedule_many(
            (float(i % 7), executed.append, batch * BATCH + i)
            for i in range(BATCH)
        )
        sim.run()

    # Timer reuse: one recycled event per round instead of an allocation.
    count = [0, None]

    def tick():
        count[0] += 1
        if count[0] < CHURN_ROUNDS:
            count[1] = sim.reschedule(count[1], 1.0, tick)

    count[1] = sim.schedule(1.0, tick)
    sim.run()

    # Cancellation churn: mass-cancel keeps pending_count O(1) honest
    # and forces heap compactions.
    for _ in range(50):
        events = [sim.schedule(1000.0, lambda: None) for _ in range(200)]
        for event in events[1:]:
            event.cancel()
    sim.run()

    return {
        "events_executed": sim.events_executed,
        "compactions": sim.heap_compactions,
        "batched": len(executed),
        "reused_ticks": count[0],
    }


def bench_perf_kernel(benchmark, report):
    stats = _drive_kernel()
    result = run_once(benchmark, _drive_kernel)
    report(
        "perf_kernel",
        "\n".join(f"{key}: {value}" for key, value in result.items()),
    )
    assert result == stats  # deterministic
    assert result["batched"] == N_BATCHES * BATCH
    assert result["reused_ticks"] == CHURN_ROUNDS
    assert result["compactions"] > 0  # mass-cancel actually compacted
