"""Simulator scaling benchmark: events/sec on saturated cells.

Unlike the figure/table benchmarks this one measures the simulator
itself.  It runs a reduced matrix (the full one is ``python -m repro
perf``), persists the rendered table under ``benchmarks/results/`` and
writes the machine-readable trajectory to ``BENCH_perf.json`` at the
repository root so the next PR has a number to beat.
"""

import pathlib

from repro.perf import (
    HEADLINE_KEY,
    PerfScenario,
    render_table,
    run_matrix,
    write_report,
)

from benchmarks.conftest import run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

SCENARIOS = [
    PerfScenario(stations=n, scheduler=sched, profile="multi", seconds=0.5)
    for sched in ("fifo", "drr", "tbr")
    for n in (4, 16, 64)
]


def bench_perf_scaling(benchmark, report):
    samples = run_once(benchmark, lambda: run_matrix(SCENARIOS))
    report("perf_scaling", render_table(samples))
    write_report(
        samples,
        REPO_ROOT / "BENCH_perf.json",
        note="reduced matrix from benchmarks/perf/bench_perf_scaling.py",
    )
    by_key = {s.scenario.key: s for s in samples}
    # Every scenario must have made real progress and carried traffic.
    for sample in samples:
        assert sample.events > 0, sample.scenario.key
        assert sample.total_mbps > 0, sample.scenario.key
    # The headline scenario (saturated multi-rate TBR at N=64) is the
    # number tracked across PRs; guard against catastrophic regression.
    headline = by_key[HEADLINE_KEY]
    assert headline.events_per_sec > 50_000, headline.events_per_sec
