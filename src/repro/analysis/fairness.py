"""Fairness measures.

The paper's fairness measure between equal-priority nodes i and j over
an interval is |φ_i - φ_j| where φ is the achieved share of the chosen
resource (throughput for RF, channel time for TF).  Jain's index
(the paper's reference [14]) summarizes n-node allocations in [1/n, 1].
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Values = Union[Sequence[float], Dict[str, float]]


def _as_list(values: Values) -> List[float]:
    if isinstance(values, dict):
        return list(values.values())
    return list(values)


def jain_index(values: Values) -> float:
    """Jain, Chiu & Hawe's fairness index: (Σx)² / (n·Σx²)."""
    xs = _as_list(values)
    if not xs:
        raise ValueError("need at least one value")
    if any(x < 0 for x in xs):
        raise ValueError("values must be non-negative")
    # Normalize by the largest value before squaring: tiny inputs would
    # otherwise square into subnormals, whose rounding error can push
    # the index outside its mathematical [1/n, 1] range.
    peak = max(xs)
    if peak == 0:
        return 1.0
    total = sum(x / peak for x in xs)
    # The element equal to peak contributes 1.0, so squares >= 1 here.
    squares = sum((x / peak) ** 2 for x in xs)
    return total * total / (len(xs) * squares)


def max_min_gap(values: Values) -> float:
    """The paper's pairwise measure, maximized: max_i,j |φ_i - φ_j|."""
    xs = _as_list(values)
    if not xs:
        raise ValueError("need at least one value")
    return max(xs) - min(xs)


def normalized_gap(values: Values) -> float:
    """max-min gap normalized by the mean (0 = perfectly fair)."""
    xs = _as_list(values)
    mean = sum(xs) / len(xs)
    if mean == 0:
        return 0.0
    return max_min_gap(xs) / mean
