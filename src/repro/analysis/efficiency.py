"""Fluid- and task-model efficiency analysis (paper Section 2.1, Table 1).

The *fluid model* has infinite flows; efficiency is the aggregate
sustained throughput (Eq 7 vs Eq 13, see :mod:`repro.analysis.model`).

The *task model* has one finite transfer per node; efficiency is the
average and final task completion times.  Both fairness notions are
work-conserving, so as tasks finish the remaining nodes speed up: we
integrate the piecewise-constant fluid rates between completions.

Key analytic facts the paper states (and our tests verify):

* FinalTaskTime is identical under RF and TF for equal task mixes
  (work conservation);
* AvgTaskTime under TF is <= AvgTaskTime under RF (fast nodes finish
  early, slow nodes finish no later than they would anyway);
* under RF with equal task sizes every node finishes at the same time,
  so AvgTaskTime == FinalTaskTime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.model import NodeSpec


@dataclass(frozen=True)
class Task:
    """A finite transfer bound to a node."""

    node: NodeSpec
    size_bits: float

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError("task size must be positive")


@dataclass
class TaskModelResult:
    """Completion times (in the same unit as bits/Mbps -> microseconds)."""

    completion_us: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_task_time_us(self) -> float:
        times = list(self.completion_us.values())
        return sum(times) / len(times) if times else 0.0

    @property
    def final_task_time_us(self) -> float:
        return max(self.completion_us.values()) if self.completion_us else 0.0


def _instant_rates(
    active: Sequence[NodeSpec], notion: str, transport: str
) -> Dict[str, float]:
    from repro.analysis.model import rf_throughputs, tf_throughputs

    if notion == "rf":
        return rf_throughputs(active, transport)
    if notion == "tf":
        return tf_throughputs(active, transport)
    raise ValueError(f"unknown fairness notion {notion!r} (rf/tf)")


def fluid_completion_times(
    tasks: Sequence[Task], notion: str, transport: str = "tcp"
) -> TaskModelResult:
    """Integrate the fluid model until every task completes.

    Rates are re-evaluated whenever the active set shrinks; β values are
    held at their |I|-node values for simplicity (the dependence of β on
    n is second-order: the contention gap term).  Time unit:
    microseconds (bits / Mbps = µs).
    """
    names = [t.node.name for t in tasks]
    if len(set(names)) != len(names):
        raise ValueError("duplicate node names in task list")
    remaining: Dict[str, float] = {t.node.name: t.size_bits for t in tasks}
    node_of: Dict[str, NodeSpec] = {t.node.name: t.node for t in tasks}
    result = TaskModelResult()
    now = 0.0

    while remaining:
        active = [node_of[name] for name in remaining]
        rates = _instant_rates(active, notion, transport)
        # Time until the next completion at current rates.
        horizons = {
            name: remaining[name] / rates[name]
            for name in remaining
            if rates[name] > 0
        }
        if not horizons:
            raise RuntimeError("no progress possible: zero rates")
        step = min(horizons.values())
        now += step
        finished = []
        for name in list(remaining):
            remaining[name] -= rates[name] * step
            if remaining[name] <= 1e-6:
                finished.append(name)
        for name in finished:
            del remaining[name]
            result.completion_us[name] = now
    return result


def task_model_metrics(
    tasks: Sequence[Task], transport: str = "tcp"
) -> Dict[str, TaskModelResult]:
    """Evaluate the task model under both notions (Table 1's rows)."""
    return {
        "rf": fluid_completion_times(tasks, "rf", transport),
        "tf": fluid_completion_times(tasks, "tf", transport),
    }
