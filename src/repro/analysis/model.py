"""Equations 4-13: the paper's analytic model of multi-rate sharing.

Given competing nodes i with data rate d_i, packet size s_i and
baseline throughput β_i = β(d_i, s_i, I):

Under DCF (equal transmission opportunities, throughput-based fairness
when sizes match):

    T(i)  = (s_i/β_i) / Σ_j (s_j/β_j)                 (Eq 4)
    R(i)  = T(i) · β_i                                (Eq 2)
    R(I)  = Σ_i R(i)                                  (Eq 3)

and with equal sizes these reduce to Eqs 5-7 (equal per-node
throughputs).  Under time-based fairness:

    T'(i) = 1/n                                       (Eq 11)
    R'(i) = β_i / n                                   (Eq 12)
    R'(I) = (1/n) Σ_i β_i                             (Eq 13)

Weighted variants generalize 1/n to w_i/Σw (the paper's Section 4.5
QoS extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import analytic_baseline_mbps


@dataclass(frozen=True)
class NodeSpec:
    """One competing node in the analytic model.

    ``beta_mbps`` may be given directly (e.g. from the paper's Table 2
    or from a calibration simulation); otherwise it is derived from the
    timing model for ``rate_mbps``/``packet_bytes``.
    """

    name: str
    rate_mbps: float
    packet_bytes: int = 1500
    beta_mbps: Optional[float] = None
    weight: float = 1.0

    def beta(self, n_nodes: int, transport: str = "tcp") -> float:
        if self.beta_mbps is not None:
            return self.beta_mbps
        return analytic_baseline_mbps(
            self.rate_mbps, self.packet_bytes, n_nodes, transport=transport
        )


def _betas(nodes: Sequence[NodeSpec], transport: str) -> List[float]:
    if not nodes:
        raise ValueError("need at least one node")
    n = len(nodes)
    return [node.beta(n, transport) for node in nodes]


def dcf_time_shares(
    nodes: Sequence[NodeSpec], transport: str = "tcp"
) -> Dict[str, float]:
    """Eq 4: channel-occupancy share of each node under DCF."""
    betas = _betas(nodes, transport)
    costs = [node.packet_bytes / beta for node, beta in zip(nodes, betas)]
    total = sum(costs)
    return {node.name: cost / total for node, cost in zip(nodes, costs)}


def rf_throughputs(
    nodes: Sequence[NodeSpec], transport: str = "tcp"
) -> Dict[str, float]:
    """Eqs 2+4 (Eq 6 for equal sizes): per-node throughput under DCF."""
    betas = _betas(nodes, transport)
    shares = dcf_time_shares(nodes, transport)
    return {
        node.name: shares[node.name] * beta for node, beta in zip(nodes, betas)
    }


def rf_total(nodes: Sequence[NodeSpec], transport: str = "tcp") -> float:
    """Eq 7 / Eq 10: aggregate throughput under DCF."""
    return sum(rf_throughputs(nodes, transport).values())


def tf_time_shares(nodes: Sequence[NodeSpec]) -> Dict[str, float]:
    """Eq 11 (weighted): equal/weighted channel-time shares."""
    total_weight = sum(node.weight for node in nodes)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    return {node.name: node.weight / total_weight for node in nodes}


def tf_throughputs(
    nodes: Sequence[NodeSpec], transport: str = "tcp"
) -> Dict[str, float]:
    """Eq 12 (weighted): per-node throughput under time-based fairness."""
    betas = _betas(nodes, transport)
    shares = tf_time_shares(nodes)
    return {
        node.name: shares[node.name] * beta for node, beta in zip(nodes, betas)
    }


def tf_total(nodes: Sequence[NodeSpec], transport: str = "tcp") -> float:
    """Eq 13: aggregate throughput under time-based fairness."""
    return sum(tf_throughputs(nodes, transport).values())


@dataclass
class FairnessPrediction:
    """Side-by-side RF/TF prediction for a node set."""

    nodes: List[NodeSpec]
    transport: str
    rf_per_node: Dict[str, float] = field(default_factory=dict)
    tf_per_node: Dict[str, float] = field(default_factory=dict)
    rf_shares: Dict[str, float] = field(default_factory=dict)
    tf_shares: Dict[str, float] = field(default_factory=dict)

    @property
    def rf_total(self) -> float:
        return sum(self.rf_per_node.values())

    @property
    def tf_total(self) -> float:
        return sum(self.tf_per_node.values())

    @property
    def improvement(self) -> float:
        """TF aggregate gain over RF (e.g. 0.82 = +82%, Table 3)."""
        if self.rf_total <= 0:
            return 0.0
        return self.tf_total / self.rf_total - 1.0


def predict(
    nodes: Sequence[NodeSpec], transport: str = "tcp"
) -> FairnessPrediction:
    """Evaluate both fairness notions over ``nodes``."""
    return FairnessPrediction(
        nodes=list(nodes),
        transport=transport,
        rf_per_node=rf_throughputs(nodes, transport),
        tf_per_node=tf_throughputs(nodes, transport),
        rf_shares=dcf_time_shares(nodes, transport),
        tf_shares=tf_time_shares(nodes),
    )
