"""Baseline throughput β(d, s, I).

The paper defines β(d, s, I) as the maximum total throughput achieved
when every node in I uses data rate ``d`` and packet size ``s`` under
similar (low) loss.  It is measured experimentally in Table 2 for TCP
with 1500-byte packets and two competing nodes, and can also be derived
from MAC timing; both sources are provided here and the experiments
compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.phy.phy import (
    DOT11B_LONG_PREAMBLE,
    PhyParams,
    ack_airtime_us,
    ack_rate_for,
    frame_airtime_us,
)

#: Paper Table 2: measured two-node TCP baseline throughputs (Mbps) for
#: 1500-byte packets at each 802.11b rate.
PAPER_TABLE2_TCP_MBPS: Dict[float, float] = {
    11.0: 5.189,
    5.5: 3.327,
    2.0: 1.493,
    1.0: 0.806,
}


@dataclass(frozen=True)
class BaselineModel:
    """Analytic β from MAC/PHY timing.

    The per-exchange channel time of one data packet is::

        DIFS + T_data(s, d) + SIFS + T_ack + gap(n)

    where ``gap(n)`` is the average contention idle time per
    transmission with ``n`` saturated contenders (the expected minimum
    of n uniform backoff draws, ``slot * cw_min / 2 / (n + 1)`` to first
    order).  TCP adds one ~40-byte ack exchange per ``delack`` data
    packets and subtracts TCP/IP header bytes from goodput.
    """

    phy: PhyParams = DOT11B_LONG_PREAMBLE
    tcp_header_bytes: int = 40
    tcp_ack_bytes: int = 40
    delack_segments: int = 2

    def contention_gap_us(self, n_nodes: int) -> float:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        return self.phy.slot_us * self.phy.cw_min / 2.0 / (n_nodes + 1)

    def exchange_time_us(
        self, payload_bytes: int, rate_mbps: float, n_nodes: int
    ) -> float:
        """Channel time for one data packet exchange at saturation."""
        data = frame_airtime_us(self.phy, payload_bytes, rate_mbps)
        ack = ack_airtime_us(self.phy, ack_rate_for(self.phy, rate_mbps))
        return (
            self.phy.difs_us
            + data
            + self.phy.sifs_us
            + ack
            + self.contention_gap_us(n_nodes)
        )

    def udp_baseline_mbps(
        self, rate_mbps: float, packet_bytes: int = 1500, n_nodes: int = 2
    ) -> float:
        """Aggregate UDP throughput with n same-rate saturated nodes."""
        per_packet = self.exchange_time_us(packet_bytes, rate_mbps, n_nodes)
        return packet_bytes * 8.0 / per_packet

    def tcp_baseline_mbps(
        self, rate_mbps: float, packet_bytes: int = 1500, n_nodes: int = 2
    ) -> float:
        """Aggregate TCP goodput with n same-rate saturated nodes.

        Per ``delack_segments`` data packets the channel also carries
        one TCP-ack packet exchange; goodput counts MSS payload only.
        """
        mss = packet_bytes - self.tcp_header_bytes
        data_time = self.exchange_time_us(packet_bytes, rate_mbps, n_nodes)
        ack_time = self.exchange_time_us(self.tcp_ack_bytes, rate_mbps, n_nodes)
        k = self.delack_segments
        total = k * data_time + ack_time
        return k * mss * 8.0 / total


def analytic_baseline_mbps(
    rate_mbps: float,
    packet_bytes: int = 1500,
    n_nodes: int = 2,
    *,
    transport: str = "tcp",
    model: Optional[BaselineModel] = None,
) -> float:
    """β(d, s, I) from timing; ``transport`` is ``"tcp"`` or ``"udp"``."""
    model = model if model is not None else BaselineModel()
    if transport == "tcp":
        return model.tcp_baseline_mbps(rate_mbps, packet_bytes, n_nodes)
    if transport == "udp":
        return model.udp_baseline_mbps(rate_mbps, packet_bytes, n_nodes)
    raise ValueError(f"unknown transport {transport!r}")
