"""The paper's analytic framework (Section 2).

* :mod:`repro.analysis.baseline` — baseline throughput β(d, s, I):
  the paper's measured Table 2 values plus an analytic computation from
  MAC/PHY timing;
* :mod:`repro.analysis.model` — Equations 4-13: channel-time shares and
  throughputs under DCF/throughput-based fairness (RF) and under
  time-based fairness (TF);
* :mod:`repro.analysis.fairness` — fairness measures (Jain index, the
  paper's |phi_i - phi_j| gaps);
* :mod:`repro.analysis.efficiency` — fluid- and task-model efficiency:
  AggrThruput, AvgTaskTime, FinalTaskTime (Table 1).
"""

from repro.analysis.baseline import (
    PAPER_TABLE2_TCP_MBPS,
    analytic_baseline_mbps,
    BaselineModel,
)
from repro.analysis.model import (
    NodeSpec,
    dcf_time_shares,
    rf_throughputs,
    rf_total,
    tf_time_shares,
    tf_throughputs,
    tf_total,
    predict,
    FairnessPrediction,
)
from repro.analysis.fairness import (
    jain_index,
    max_min_gap,
    normalized_gap,
)
from repro.analysis.efficiency import (
    Task,
    fluid_completion_times,
    task_model_metrics,
    TaskModelResult,
)

__all__ = [
    "PAPER_TABLE2_TCP_MBPS",
    "analytic_baseline_mbps",
    "BaselineModel",
    "NodeSpec",
    "dcf_time_shares",
    "rf_throughputs",
    "rf_total",
    "tf_time_shares",
    "tf_throughputs",
    "tf_total",
    "predict",
    "FairnessPrediction",
    "jain_index",
    "max_min_gap",
    "normalized_gap",
    "Task",
    "fluid_completion_times",
    "task_model_metrics",
    "TaskModelResult",
]
