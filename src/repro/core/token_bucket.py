"""Per-station leaky/token bucket in channel-occupancy microseconds.

The paper (Section 4): "TBR is based on the leaky bucket scheme.  The
fundamental unit or token used in the implementation is the channel
occupancy time in terms of micro-seconds."

Tokens may go negative: COMPLETEEVENT charges the *actual* cost of an
exchange after the fact, which can exceed the balance that made the
packet eligible.  The deficit is repaid by subsequent fills before the
station becomes eligible again — this is what bounds long-term usage.
"""

from __future__ import annotations


class TokenBucket:
    """Token state for one station."""

    __slots__ = (
        "station",
        "tokens_us",
        "depth_us",
        "rate",
        "spent_us",
        "filled_us",
        "spent_since_adjust_us",
        "window_start_us",
    )

    def __init__(
        self,
        station: str,
        *,
        rate: float,
        depth_us: float,
        initial_us: float = 0.0,
        now_us: float = 0.0,
    ) -> None:
        if depth_us <= 0:
            raise ValueError("bucket depth must be positive")
        if rate < 0:
            raise ValueError("token rate must be non-negative")
        self.station = station
        self.tokens_us = min(initial_us, depth_us)
        self.depth_us = depth_us
        self.rate = rate
        self.spent_us = 0.0
        self.filled_us = 0.0
        self.spent_since_adjust_us = 0.0
        self.window_start_us = now_us

    @property
    def eligible(self) -> bool:
        """A station may transmit while its balance is positive."""
        return self.tokens_us > 0.0

    def fill(self, elapsed_us: float) -> None:
        """FILLEVENT: accrue ``elapsed * rate`` tokens, capped at depth.

        NOTE: ``TbrScheduler._fill_event`` inlines this arithmetic (and
        the :attr:`eligible` test) for speed — keep them in lockstep.
        """
        if elapsed_us < 0:
            raise ValueError("elapsed must be non-negative")
        grant = elapsed_us * self.rate
        self.filled_us += grant
        self.tokens_us = min(self.tokens_us + grant, self.depth_us)

    def charge(self, airtime_us: float) -> None:
        """COMPLETEEVENT: pay for a finished exchange (may go negative)."""
        if airtime_us < 0:
            raise ValueError("airtime must be non-negative")
        self.tokens_us -= airtime_us
        self.spent_us += airtime_us
        self.spent_since_adjust_us += airtime_us

    def actual_rate(self, now_us: float) -> float:
        """Average spend rate (fraction of channel time) since the last
        adjustment window reset — the paper's ``actual_i``."""
        elapsed = now_us - self.window_start_us
        if elapsed <= 0:
            return 0.0
        return self.spent_since_adjust_us / elapsed

    def reset_window(self, now_us: float) -> None:
        """ADJUSTRATEEVENT epilogue: zero the per-window usage."""
        self.spent_since_adjust_us = 0.0
        self.window_start_us = now_us

    def fast_forward(self, delta_us: float) -> None:
        """Shift the adjustment-window origin after a clock jump.

        ``tokens_us`` is left alone: in steady state the balance orbits a
        bounded range below ``depth_us``, so carrying the pre-jump value
        across is both depth-safe and phase-correct.  The cumulative
        ``spent_us``/``filled_us`` totals are credited by the planner;
        ``spent_since_adjust_us`` stays as-is because the window origin
        moves with the jump (crediting it *and* shifting the origin would
        double-correct ``actual_rate``).
        """
        self.window_start_us += delta_us
