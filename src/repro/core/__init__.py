"""The paper's contribution: TBR, the Time-based Regulator.

TBR runs at the AP above any MAC and provides each competing station an
equal (or weighted) long-term share of channel occupancy time by
regulating packet release with per-station leaky buckets denominated in
microseconds of channel time (paper Section 4).
"""

from repro.core.token_bucket import TokenBucket
from repro.core.tbr import TbrConfig, TbrScheduler
from repro.core.rate_adjust import RateAdjuster, RateAdjustConfig

__all__ = [
    "TokenBucket",
    "TbrConfig",
    "TbrScheduler",
    "RateAdjuster",
    "RateAdjustConfig",
]
