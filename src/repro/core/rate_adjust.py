"""ADJUSTRATEEVENT: max-min token-rate re-distribution.

Paper Section 4.3 / Figure 7: periodically, TBR finds stations that are
*under-utilizing* their assigned token rate, takes half of the smallest
such excess from the most-under-utilizing station, and spreads it
equally over the stations that consumed (close to) their full
assignment.  Repeating this converges to a max-min fair allocation of
channel time without ever needing to know true demands — the
incremental scheme of Bertsekas & Gallager the paper cites.

One engineering detail the paper leaves unspecified matters a lot: a
station's *charged* spend rate structurally undershoots its assigned
rate even when it is saturating, because contention overhead (backoff
slots, collisions it loses) is not charged to anyone.  Classifying
"actual < rate - Rth" alone therefore misfires on a station that is
merely being crowded by a slower peer, and taking rate from it spirals
the allocation back to throughput fairness.  The adjuster consequently
only treats a station as under-utilized when it is also *inactive*:
its spend is a small fraction of its assignment (``activity_floor``),
or it is visibly idle (tokens pegged at the bucket cap, empty downlink
queue, and no meaningful uplink traffic).  The TBR scheduler supplies
that activity signal; see ``TbrScheduler._station_active``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.token_bucket import TokenBucket


@dataclass
class RateAdjustConfig:
    """Tunables of the ADJUSTRATEEVENT policy."""

    #: Rth: minimum (rate - actual) for a station to count as having
    #: excess capacity at all.
    threshold: float = 0.05
    #: a station spending less than this fraction of its assigned rate
    #: is considered inactive (demand-limited) even if other activity
    #: signals are ambiguous.
    activity_floor: float = 0.6
    #: floor on any station's token rate (lets idle stations ramp back).
    min_rate: float = 0.02
    #: cap on the excess moved per event (keeps instantaneous flow
    #: throughputs from swinging, the paper's "Emin not too big").
    max_transfer: float = 0.25
    #: each event first relaxes every rate this fraction of the way back
    #: toward its configured (weighted) share.  Transfers are re-earned
    #: every round by genuinely idle donors, so steady states are
    #: unchanged, but a rate granted during a transient stall (e.g. a
    #: TCP timeout burst) is returned within a few rounds instead of
    #: ratcheting permanently.  This is also the *give-back* path the
    #: paper's Figure 7 lacks: its transfers only ever flow away from
    #: idle stations, so a late joiner facing a fully-utilizing peer
    #: would otherwise wait forever for its share.
    restore_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        if not 0.0 < self.activity_floor <= 1.0:
            raise ValueError("activity_floor must be in (0, 1]")
        if not 0.0 <= self.min_rate < 1.0:
            raise ValueError("min_rate must be in [0, 1)")
        if not 0.0 < self.max_transfer <= 1.0:
            raise ValueError("max_transfer must be in (0, 1]")
        if not 0.0 <= self.restore_fraction <= 1.0:
            raise ValueError("restore_fraction must be in [0, 1]")


class RateAdjuster:
    """Implements the paper's Figure 7 event."""

    def __init__(self, config: Optional[RateAdjustConfig] = None) -> None:
        self.config = config if config is not None else RateAdjustConfig()
        self.adjustments = 0
        self.last_transfer = 0.0

    def adjust(
        self,
        buckets: List[TokenBucket],
        now_us: float,
        *,
        is_active: Optional[Callable[[TokenBucket], bool]] = None,
    ) -> Dict[str, float]:
        """Run one ADJUSTRATEEVENT over ``buckets``; returns new rates.

        ``is_active(bucket)`` reports whether the station showed real
        demand during the window (see module docstring); stations both
        having excess and being inactive are the donors.  Window usage
        counters are reset as a side effect (the paper's
        ``actual_j <- 0`` loop).
        """
        cfg = self.config
        under: List[TokenBucket] = []
        full: List[TokenBucket] = []
        for bucket in buckets:
            actual = bucket.actual_rate(now_us)
            excess = bucket.rate - actual
            if is_active is not None:
                # The scheduler's demand signal is authoritative: a
                # crowded-but-saturated station may show a low spend
                # ratio (bursty peers, uncharged contention) yet must
                # never donate its share.
                inactive = not is_active(bucket)
            else:
                ratio = actual / bucket.rate if bucket.rate > 0 else 1.0
                inactive = ratio < cfg.activity_floor
            if excess >= cfg.threshold and inactive:
                under.append(bucket)
            else:
                full.append(bucket)

        self.last_transfer = 0.0
        if under and full:
            excesses = {b.station: b.rate - b.actual_rate(now_us) for b in under}
            e_min = min(excesses.values())
            donor = max(under, key=lambda b: excesses[b.station])
            transfer = min(e_min / 2.0, cfg.max_transfer)
            # Never push the donor below the floor.
            transfer = min(transfer, max(0.0, donor.rate - cfg.min_rate))
            if transfer > 0.0:
                donor.rate -= transfer
                share = transfer / len(full)
                for bucket in full:
                    bucket.rate += share
                self.last_transfer = transfer
                self.adjustments += 1

        for bucket in buckets:
            bucket.reset_window(now_us)
        return {b.station: b.rate for b in buckets}

    @staticmethod
    def normalize(buckets: List[TokenBucket], total: float = 1.0) -> None:
        """Rescale rates so they sum to ``total`` (guards drift)."""
        current = sum(b.rate for b in buckets)
        if current <= 0:
            if buckets:
                for b in buckets:
                    b.rate = total / len(buckets)
            return
        factor = total / current
        for b in buckets:
            b.rate *= factor
