"""TBR — the Time-based Regulator (paper Section 4, Figure 6).

TBR is an AP downlink scheduler (it plugs into the same slot as the
FIFO/RR/DRR disciplines) that additionally accounts *uplink* channel
usage, so each competing station's total occupancy time — both
directions — converges to its fair share:

* **ASSOCIATEEVENT** -> :meth:`TbrScheduler.associate`
* **FILLEVENT**      -> periodic timer :meth:`_fill_event`
* **APPTXEVENT**     -> :meth:`TbrScheduler.enqueue`
* **MACTXEVENT**     -> :meth:`TbrScheduler.dequeue` (the MAC pulls a
  packet whenever it is ready to transmit)
* **COMPLETEEVENT**  -> :meth:`TbrScheduler.on_complete` (downlink, true
  airtime known to the AP) and :meth:`TbrScheduler.on_uplink_complete`
  (uplink, estimated airtime — without retransmission information by
  default, exactly like the paper's prototype)
* **ADJUSTRATEEVENT**-> periodic :class:`repro.core.RateAdjuster`

Uplink TCP needs no client cooperation: its ACKs traverse the
per-station downlink queue, so withholding them throttles the sender
(ack clocking).  Uplink UDP can be regulated by the optional client
notification bit piggybacked on downlink frames/ACKs (Section 4.1),
implemented by :attr:`TbrConfig.notify_clients` together with the
station-side agent in :class:`repro.node.Station`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.rate_adjust import RateAdjustConfig, RateAdjuster
from repro.core.token_bucket import TokenBucket
from repro.queueing.base import ApScheduler, StationQueue
from repro.sim import PeriodicTimer, Simulator


@dataclass
class TbrConfig:
    """TBR tunables (paper defaults where stated, sane ones elsewhere)."""

    #: FILLEVENT period.
    fill_interval_us: float = 10_000.0
    #: ADJUSTRATEEVENT period (0 disables rate adjustment).
    adjust_interval_us: float = 1_000_000.0
    #: bucket_i: deepest token balance a station can accumulate; bounds
    #: its burst length (Section 4.5 discusses the short-term-fairness
    #: trade-off this knob controls).
    bucket_depth_us: float = 100_000.0
    #: T_init: initial token grant on association.
    initial_tokens_us: float = 20_000.0
    #: Strict mode (the default, and the paper's Figure 6 MACTXEVENT)
    #: releases packets only for positive-token stations; long-term
    #: utilization is kept high by ADJUSTRATEEVENT re-assigning token
    #: rates.  Setting ``work_conserving=True`` adds an immediate
    #: borrow-from-the-least-indebted fallback instead — the ablation
    #: benchmark shows this defeats uplink regulation (withheld TCP acks
    #: get released the moment no eligible queue is backlogged), which
    #: is why the paper's design charges utilization management to the
    #: rate adjuster rather than the dequeue path.
    work_conserving: bool = False
    #: Piggyback defer hints for token-starved stations on downlink
    #: frames and ACKs (client cooperation, needed only for uplink UDP).
    notify_clients: bool = False
    #: Defer duration carried by a notification hint.
    defer_hint_us: float = 5_000.0
    #: Optional per-station weights (QoS extension, Section 4.5); equal
    #: shares when empty.
    weights: Dict[str, float] = field(default_factory=dict)
    #: ADJUSTRATEEVENT policy.
    adjust: RateAdjustConfig = field(default_factory=RateAdjustConfig)

    def __post_init__(self) -> None:
        if self.fill_interval_us <= 0:
            raise ValueError("fill interval must be positive")
        if self.bucket_depth_us <= 0:
            raise ValueError("bucket depth must be positive")
        for station, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {station!r} must be positive")


class TbrScheduler(ApScheduler):
    """The Time-based Regulator as an AP scheduler."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[TbrConfig] = None,
        *,
        total_capacity: int = 100,
        per_station_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(total_capacity, per_station_capacity)
        self.sim = sim
        self.config = config if config is not None else TbrConfig()
        self.buckets: Dict[str, TokenBucket] = {}
        self.adjuster = RateAdjuster(self.config.adjust)

        self._fill_timer = PeriodicTimer(
            sim, self.config.fill_interval_us, self._fill_event
        )
        self._fill_timer.start()
        self._adjust_timer: Optional[PeriodicTimer] = None
        if self.config.adjust_interval_us > 0:
            self._adjust_timer = PeriodicTimer(
                sim, self.config.adjust_interval_us, self._adjust_event
            )
            self._adjust_timer.start()

        # Diagnostics.
        self.borrowed_releases = 0
        self.regular_releases = 0
        self.rate_history: List[Dict[str, float]] = []
        # Per-adjust-window uplink payload bytes (activity signal).
        self._uplink_bytes_window: Dict[str, int] = {}
        self._window_start_us = sim.now

    # ------------------------------------------------------------------
    # ASSOCIATEEVENT
    # ------------------------------------------------------------------
    def associate(self, station: str) -> None:
        if station in self.buckets:
            # Re-associating an already-present station must not grant a
            # second T_init (ASSOCIATEEVENT is idempotent); still clear
            # a stale departed flag so arrivals are admitted again.
            super().associate(station)
            return
        super().associate(station)
        self.buckets[station] = TokenBucket(
            station,
            rate=0.0,  # set by _reassign_rates below
            depth_us=self.config.bucket_depth_us,
            initial_us=self.config.initial_tokens_us,
            now_us=self.sim.now,
        )
        self._reassign_rates()

    def disassociate(self, station: str) -> int:
        """DISASSOCIATEEVENT: retire the station's bucket and queue.

        The station's queued downlink packets are flushed back to the
        :class:`PacketPool`, its :class:`TokenBucket` (and uplink
        activity window) is discarded, and its token rate is returned
        to the remaining stations by rescaling their rates to sum to
        1.0 — preserving whatever ratios ADJUSTRATEEVENT has learned
        instead of parking the freed share at ``min_rate`` forever.
        """
        flushed = super().disassociate(station)
        bucket = self.buckets.pop(station, None)
        self._uplink_bytes_window.pop(station, None)
        if bucket is not None and self.buckets:
            self.adjuster.normalize(list(self.buckets.values()), total=1.0)
        return flushed

    def _weight(self, station: str) -> float:
        return self.config.weights.get(station, 1.0)

    def _reassign_rates(self) -> None:
        """(Re)split the channel by weight across associated stations."""
        total_weight = sum(self._weight(s) for s in self.buckets)
        for station, bucket in self.buckets.items():
            bucket.rate = self._weight(station) / total_weight
            bucket.reset_window(self.sim.now)

    # ------------------------------------------------------------------
    # FILLEVENT
    # ------------------------------------------------------------------
    def _fill_event(self, elapsed_us: float) -> None:
        # Inlined TokenBucket.fill/eligible: this loop runs for every
        # associated station once per fill interval (100 Hz by default),
        # so at large N the attribute/property traffic dominates it.
        woke = False
        for bucket in self.buckets.values():
            grant = elapsed_us * bucket.rate
            bucket.filled_us += grant
            tokens = bucket.tokens_us
            was_eligible = tokens > 0.0
            tokens += grant
            depth = bucket.depth_us
            if tokens > depth:
                tokens = depth
            bucket.tokens_us = tokens
            if not was_eligible and tokens > 0.0:
                woke = True
        if woke and self.mac is not None:
            self.mac.notify_pending()

    # ------------------------------------------------------------------
    # MACTXEVENT
    # ------------------------------------------------------------------
    def has_pending(self) -> bool:
        return any(self.queues[s] for s in self._order)

    def dequeue(self) -> Any:
        queue = self._select_eligible()
        if queue is not None:
            self.regular_releases += 1
            return queue.pop()
        if self.config.work_conserving:
            queue = self._select_any_backlogged()
            if queue is not None:
                self.borrowed_releases += 1
                return queue.pop()
        return None

    def _select_eligible(self) -> Optional[StationQueue]:
        """Round-robin over stations with backlog *and* positive tokens."""
        n = len(self._order)
        for offset in range(n):
            idx = (self._rr_index + offset) % n
            station = self._order[idx]
            queue = self.queues[station]
            if queue and self.buckets[station].eligible:
                self._rr_index = (idx + 1) % n
                return queue
        return None

    def _select_any_backlogged(self) -> Optional[StationQueue]:
        """Work-conservation fallback: among backlogged stations pick the
        least-indebted one (largest token balance)."""
        best: Optional[StationQueue] = None
        best_tokens = float("-inf")
        for station in self._order:
            queue = self.queues[station]
            if queue and self.buckets[station].tokens_us > best_tokens:
                best = queue
                best_tokens = self.buckets[station].tokens_us
        return best

    # ------------------------------------------------------------------
    # COMPLETEEVENT
    # ------------------------------------------------------------------
    def on_complete(
        self, packet: Any, airtime_us: float, success: bool, attempts: int,
        rate_mbps: float,
    ) -> None:
        bucket = self.buckets.get(packet.station)
        if bucket is not None:
            bucket.charge(airtime_us)
        super().on_complete(packet, airtime_us, success, attempts, rate_mbps)

    def on_uplink_complete(
        self, station: str, airtime_us: float, *, attempts: int = 1,
        success: bool = True, payload_bytes: int = 0,
    ) -> None:
        bucket = self.buckets.get(station)
        if bucket is None:
            if station in self._departed:
                # A frame that was already in the air when its station
                # disassociated: nobody's tokens to charge.
                return
            # Uplink from an unassociated station: associate on first use.
            self.associate(station)
            bucket = self.buckets[station]
        bucket.charge(airtime_us)
        self._uplink_bytes_window[station] = (
            self._uplink_bytes_window.get(station, 0) + payload_bytes
        )

    # ------------------------------------------------------------------
    # ADJUSTRATEEVENT
    # ------------------------------------------------------------------
    def _adjust_event(self, _elapsed_us: float) -> None:
        buckets = list(self.buckets.values())
        if not buckets:
            return
        # Relax toward base shares first (see RateAdjustConfig.restore_
        # fraction): transfers below are re-earned each round.
        restore = self.config.adjust.restore_fraction
        if restore > 0.0:
            total_weight = sum(self._weight(s) for s in self.buckets)
            for bucket in buckets:
                base = self._weight(bucket.station) / total_weight
                bucket.rate += restore * (base - bucket.rate)
        rates = self.adjuster.adjust(
            buckets, self.sim.now, is_active=self._station_active
        )
        self.adjuster.normalize(buckets, total=1.0)
        self.rate_history.append(dict(rates))
        self._uplink_bytes_window.clear()
        self._window_start_us = self.sim.now

    #: a station with less uplink traffic than this over the window is
    #: considered to have no uplink demand (TCP-ack trickles qualify).
    UPLINK_IDLE_MBPS = 0.05

    def _station_active(self, bucket: TokenBucket) -> bool:
        """Did this station show real demand over the adjust window?

        A station is *inactive* (safe to take rate from) only when it is
        visibly idle: tokens pegged near the bucket cap, an empty
        downlink queue, and at most an ack-trickle of uplink traffic.
        Everything else — including a station whose charged spend
        undershoots its assignment because it is crowded by slower
        peers — counts as active (see ``repro.core.rate_adjust``).
        """
        station = bucket.station
        if self.backlog(station) > 0:
            return True
        window = max(1.0, self.sim.now - self._window_start_us)
        uplink_mbps = self._uplink_bytes_window.get(station, 0) * 8.0 / window
        if uplink_mbps >= self.UPLINK_IDLE_MBPS:
            return True
        return bucket.tokens_us < 0.95 * bucket.depth_us

    # ------------------------------------------------------------------
    # introspection / client notification support
    # ------------------------------------------------------------------
    def tokens_us(self, station: str) -> float:
        bucket = self.buckets.get(station)
        return bucket.tokens_us if bucket is not None else 0.0

    def token_rate(self, station: str) -> float:
        bucket = self.buckets.get(station)
        return bucket.rate if bucket is not None else 0.0

    def station_starved(self, station: str) -> bool:
        bucket = self.buckets.get(station)
        return bucket is not None and not bucket.eligible

    def defer_hint_for(self, station: str) -> Optional[float]:
        """Hint to piggyback toward ``station`` (None when not needed)."""
        if not self.config.notify_clients:
            return None
        if self.station_starved(station):
            return self.config.defer_hint_us
        return None

    def stop(self) -> None:
        """Cancel timers (lets a finished simulation drain its queue)."""
        self._fill_timer.stop()
        if self._adjust_timer is not None:
            self._adjust_timer.stop()

    def fast_forward(self, delta_us: float) -> None:
        """Shift all clock-bearing TBR state after a kernel jump.

        Timer phases and window origins move with the clock; token
        balances stay (bounded steady-state values), and the planner is
        responsible for crediting cumulative spend/fill totals plus the
        skipped window's ``rate_history`` entries.
        """
        self._window_start_us += delta_us
        self._fill_timer.fast_forward(delta_us)
        if self._adjust_timer is not None:
            self._adjust_timer.fast_forward(delta_us)
        for bucket in self.buckets.values():
            bucket.fast_forward(delta_us)
