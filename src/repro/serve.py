"""``python -m repro serve`` — scenario reproduction over HTTP.

A stdlib-only front-end to the campaign result store: POST a
ScenarioSpec (by family + overrides, or as full codec JSON) and get
back exactly the bytes ``python -m repro scenario run`` would print.
Requests are keyed on the spec's content digest, so a warm store
answers without simulating and two clients asking for the same spec
coalesce into one execution.

API::

    GET  /healthz            -> "ok"
    GET  /stats              -> JSON serve/store counters
    GET  /query?family=...&experiment=...&seed=...&digest=...
                             -> JSON rows from the store index
    POST /run                -> rendered scenario (text/plain)

``POST /run`` bodies are JSON, either shape::

    {"family": "churn", "overrides": {"seed": 2, "seconds": 1.0}}
    {"spec": {...}}      # repro.scenario.codec.spec_to_json output

Response headers carry the cache verdict: ``X-Repro-Digest`` (the job's
store address), ``X-Repro-Cache`` (``hit``/``miss``) and
``X-Repro-Executed`` (simulations this request ran).  Append
``?progress=1`` to stream ``# [i/n] ...`` progress lines ahead of the
render (the render itself stays byte-identical; strip lines starting
with ``#`` and the payload matches the CLI).

Misses execute through :func:`repro.campaign.executor.run_jobs` under a
server-wide lock — one simulation at a time, every policy (retry,
quarantine, fault plans via ``REPRO_CAMPAIGN_FAULTS``) identical to the
CLI path — and land in the shared store, where ``repro campaign
query``/``verify-cache`` and warm CLI sweeps see them immediately.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

#: Refuse request bodies larger than this (a spec is a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServeError(Exception):
    """Maps a request problem to an HTTP status + message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeState:
    """Shared server state: the store, counters, and the run lock."""

    def __init__(self, store) -> None:
        self.store = store
        self.lock = threading.Lock()  # one simulation at a time
        self.counters = {"requests": 0, "hits": 0, "misses": 0,
                         "executed": 0, "errors": 0}
        self.counters_lock = threading.Lock()

    def bump(self, **deltas: int) -> None:
        with self.counters_lock:
            for name, delta in deltas.items():
                self.counters[name] += delta

    # ------------------------------------------------------------------
    def spec_for(self, body: Dict[str, Any]):
        """Resolve a request body into a validated ScenarioSpec."""
        from repro.scenario.codec import CodecError, spec_from_json
        from repro.scenario.registry import FAMILIES, build_spec

        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        if "spec" in body:
            try:
                return spec_from_json(body["spec"])
            except CodecError as exc:
                raise ServeError(400, str(exc)) from exc
            except ValueError as exc:
                raise ServeError(400, f"invalid spec: {exc}") from exc
        family = body.get("family")
        if not family:
            raise ServeError(
                400, "body needs either 'spec' or 'family' (+'overrides')"
            )
        if family not in FAMILIES:
            raise ServeError(
                404,
                f"unknown scenario family {family!r}; "
                f"valid: {', '.join(FAMILIES)}",
            )
        overrides = body.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ServeError(400, "'overrides' must be an object")
        try:
            spec = build_spec(family, **overrides)
            spec.validate()
        except (TypeError, ValueError) as exc:
            raise ServeError(400, str(exc)) from exc
        return spec

    def run(self, spec, progress=None):
        """Serve one spec: store hit, or execute-and-store.

        Returns ``(rendered_bytes, digest, hit, executed)``.
        """
        from repro.campaign.executor import run_jobs
        from repro.scenario.runner import render_result, scenario_job

        job = scenario_job(spec, key=spec.name)
        digest = job.digest
        hit, result = self.store.get(digest)
        if hit:
            self.bump(hits=1)
            rendered = (render_result(result) + "\n").encode("utf-8")
            return rendered, digest, True, 0
        self.bump(misses=1)
        with self.lock:
            outcome = run_jobs(
                [job], workers=1, cache=self.store, progress=progress
            )
        executed = outcome.stats.executed
        self.bump(executed=executed)
        if job not in outcome.results:
            failure = next(
                (f for f in outcome.failures if f.digest == digest), None
            )
            detail = (
                f"{failure.attempts[-1].kind}: {failure.attempts[-1].detail}"
                if failure and failure.attempts
                else "job quarantined"
            )
            raise ServeError(500, f"scenario failed to execute ({detail})")
        rendered = (render_result(outcome.results[job]) + "\n").encode(
            "utf-8"
        )
        return rendered, digest, False, executed


class _Handler(BaseHTTPRequestHandler):
    state: ServeState  # injected by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
        if not self.quiet:
            sys.stderr.write(
                "serve: %s - %s\n" % (self.address_string(), fmt % args)
            )

    def _send_text(
        self,
        status: int,
        payload: bytes,
        headers: Optional[Dict[str, str]] = None,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, obj: Any) -> None:
        self._send_text(
            status,
            (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
            content_type="application/json",
        )

    def _send_error_text(self, status: int, message: str) -> None:
        self.state.bump(errors=1)
        self._send_text(status, (f"error: {message}\n").encode("utf-8"))

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib name)
        self.state.bump(requests=1)
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._send_text(200, b"ok\n")
            return
        if url.path == "/stats":
            with self.state.counters_lock:
                counters = dict(self.state.counters)
            counters["store_entries"] = len(
                self.state.store.entry_digests()
            )
            counters["store_root"] = str(self.state.store.root)
            self._send_json(200, counters)
            return
        if url.path == "/query":
            params = parse_qs(url.query)

            def one(name: str) -> Optional[str]:
                values = params.get(name)
                return values[-1] if values else None

            seed_text = one("seed")
            try:
                seed = None if seed_text is None else int(seed_text)
            except ValueError:
                self._send_error_text(400, "seed must be an integer")
                return
            rows = self.state.store.query(
                experiment=one("experiment"),
                family=one("family"),
                seed=seed,
                digest_prefix=one("digest"),
            )
            self._send_json(200, rows)
            return
        self._send_error_text(404, f"no such endpoint {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 (stdlib name)
        self.state.bump(requests=1)
        url = urlsplit(self.path)
        if url.path != "/run":
            self._send_error_text(404, f"no such endpoint {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_error_text(400, "bad Content-Length")
            return
        if length <= 0:
            self._send_error_text(400, "POST /run needs a JSON body")
            return
        if length > MAX_BODY_BYTES:
            self._send_error_text(413, "request body too large")
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_text(400, f"body is not valid JSON: {exc}")
            return
        stream = parse_qs(url.query).get("progress", ["0"])[-1] in (
            "1", "true", "yes",
        )
        try:
            spec = self.state.spec_for(body)
            if stream:
                self._run_streaming(spec)
            else:
                rendered, digest, hit, executed = self.state.run(spec)
                self._send_text(
                    200,
                    rendered,
                    headers={
                        "X-Repro-Digest": digest,
                        "X-Repro-Cache": "hit" if hit else "miss",
                        "X-Repro-Executed": str(executed),
                    },
                )
        except ServeError as exc:
            self._send_error_text(exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 — keep the server up
            self._send_error_text(
                500, f"{type(exc).__name__}: {exc}"
            )

    def _run_streaming(self, spec) -> None:
        """Chunked variant: ``# ...`` progress lines, then the render."""
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(data: bytes) -> None:
            self.wfile.write(b"%x\r\n%s\r\n" % (len(data), data))
            self.wfile.flush()

        def progress(event: str, job, done: int, total: int) -> None:
            chunk(
                f"# [{done}/{total}] {job.label} ({event})\n".encode(
                    "utf-8"
                )
            )

        # Headers and progress chunks are already on the wire, so no
        # failure past this point may fall through to do_POST's
        # catch-all (a second send_response would corrupt the framing):
        # report errors as a final chunk and always terminate the body.
        try:
            rendered, digest, hit, executed = self.state.run(
                spec, progress=progress
            )
            chunk(
                f"# digest={digest} cache={'hit' if hit else 'miss'} "
                f"executed={executed}\n".encode("utf-8")
            )
            chunk(rendered)
        except Exception as exc:  # noqa: BLE001 — keep the framing valid
            self.state.bump(errors=1)
            message = (
                str(exc)
                if isinstance(exc, ServeError)
                else f"{type(exc).__name__}: {exc}"
            )
            try:
                chunk(f"# error: {message}\n".encode("utf-8"))
            except OSError:
                pass  # client hung up mid-stream
        finally:
            try:
                self.wfile.write(b"0\r\n\r\n")
            except OSError:
                pass


def make_server(
    store, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> ThreadingHTTPServer:
    """Build (but do not start) the serve front-end.

    Binds immediately — read ``server.server_address`` for the resolved
    port when asking for port 0 — and runs via ``serve_forever()``.
    """
    state = ServeState(store)
    handler = type(
        "_BoundHandler", (_Handler,), {"state": state, "quiet": quiet}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.repro_state = state  # for tests and introspection
    return server


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve scenario reproductions over HTTP, backed by the "
            "campaign result store."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8037,
        help="TCP port (0 picks a free one; printed at startup)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store root (default: $REPRO_CACHE_DIR, else "
        "<repo root>/.repro-cache/campaign)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="log one line per request to stderr",
    )
    args = parser.parse_args(argv)

    from repro.campaign.store import ResultStore, default_store_root

    store = ResultStore(
        default_store_root() if args.cache_dir is None else args.cache_dir
    )
    server = make_server(
        store, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (store: {store.root})")
    print('try: curl -s -X POST -d \'{"family": "churn", "overrides": '
          f'{{"seconds": 1.0}}}}\' http://{host}:{port}/run')
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
