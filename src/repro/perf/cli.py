"""``python -m repro perf`` — run the simulator scaling benchmark.

Examples::

    python -m repro perf                         # full matrix -> BENCH_perf.json
    python -m repro perf --stations 4,16         # subset of the matrix
    python -m repro perf --schedulers tbr --profiles multi --seconds 2
    python -m repro perf --no-write              # print the table only
    python -m repro perf --events                # + per-category breakdown
    python -m repro perf --output /tmp/b.json    # don't clobber BENCH_perf.json
    python -m repro perf --campaign              # + serial-vs-parallel campaign
    python -m repro perf --long-horizon          # + fast-forward wall-vs-horizon
    python -m repro perf --campus                # + campus cells-vs-wall scaling
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.perf.report import (
    DEFAULT_PATH,
    HEADLINE_KEY,
    render_events_table,
    render_table,
    write_report,
)
from repro.perf.scaling import (
    DEFAULT_PROFILES,
    DEFAULT_SCHEDULERS,
    DEFAULT_STATION_COUNTS,
    matrix,
    run_matrix,
)


def _csv(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf",
        description=(
            "Measure simulator kernel throughput (events/sec) on "
            "saturated cells and persist the trajectory to "
            f"{DEFAULT_PATH}."
        ),
    )
    parser.add_argument(
        "--stations",
        default=",".join(str(n) for n in DEFAULT_STATION_COUNTS),
        help="comma-separated station counts (default: %(default)s)",
    )
    parser.add_argument(
        "--schedulers",
        default=",".join(DEFAULT_SCHEDULERS),
        help="comma-separated AP schedulers (default: %(default)s)",
    )
    parser.add_argument(
        "--profiles",
        default=",".join(DEFAULT_PROFILES),
        help="comma-separated rate profiles: same,multi (default: %(default)s)",
    )
    parser.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="simulated seconds per scenario (default: per-N schedule)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "where to write the JSON report instead of silently "
            f"clobbering {DEFAULT_PATH}"
        ),
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="legacy alias for --output",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the table without writing the JSON report",
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="legacy alias for --no-write",
    )
    parser.add_argument(
        "--note",
        default="",
        help="free-form note recorded in the JSON report",
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help=(
            "also print the per-category kernel event breakdown "
            "(traffic / mac / phy / timer / other) for each scenario"
        ),
    )
    parser.add_argument(
        "--campaign",
        action="store_true",
        help=(
            "also run the campaign benchmark (full figure/table suite, "
            "serial vs parallel vs warm cache) and record it in the report"
        ),
    )
    parser.add_argument(
        "--campaign-jobs",
        type=int,
        default=None,
        metavar="N",
        help="workers for the campaign benchmark's parallel leg "
        "(default: one per CPU; on a single-core host the parallel "
        "leg is skipped and annotated in the JSON)",
    )
    parser.add_argument(
        "--campus",
        action="store_true",
        help=(
            "also run the campus scaling benchmark (campus family swept "
            "over cell counts, 1/6/11 reuse plan) and record the "
            "cells-vs-wall curve in the report"
        ),
    )
    parser.add_argument(
        "--long-horizon",
        action="store_true",
        help=(
            "also run the long-horizon fast-forward benchmark "
            "(steady-long swept over sim seconds, engine on vs off) "
            "and record the wall-vs-horizon curve in the report"
        ),
    )
    parser.add_argument(
        "--horizons",
        default=None,
        metavar="S1,S2,...",
        help="simulated-seconds sweep for --long-horizon "
        "(default: 1,10,100)",
    )
    args = parser.parse_args(argv)

    if args.output is not None and args.json is not None:
        parser.error("--output and --json name the same path; pass one")
    output = args.output if args.output is not None else args.json
    if output is None:
        output = DEFAULT_PATH
    no_write = args.no_write or args.no_json
    if not no_write:
        parent = Path(output).resolve().parent
        if not parent.is_dir():
            parser.error(
                f"--output parent directory does not exist: {parent}"
            )
    if args.campaign_jobs is not None and args.campaign_jobs < 1:
        parser.error("--campaign-jobs must be >= 1")
    if args.horizons is not None and not args.long_horizon:
        parser.error("--horizons only makes sense with --long-horizon")
    horizons = None
    if args.long_horizon:
        from repro.perf.longhorizon import DEFAULT_HORIZONS

        horizons = list(DEFAULT_HORIZONS)
        if args.horizons is not None:
            try:
                horizons = [float(h) for h in _csv(args.horizons)]
            except ValueError:
                parser.error(f"invalid --horizons {args.horizons!r}")
            if not horizons or any(h <= 0 for h in horizons):
                parser.error("--horizons values must be positive")

    try:
        station_counts = [int(n) for n in _csv(args.stations)]
    except ValueError:
        parser.error(f"invalid --stations {args.stations!r}")
    if not station_counts:
        parser.error("--stations must name at least one station count")
    if any(n < 1 for n in station_counts):
        parser.error("--stations values must be >= 1")
    schedulers = _csv(args.schedulers)
    profiles = _csv(args.profiles)
    if not schedulers:
        parser.error("--schedulers must name at least one scheduler")
    if not profiles:
        parser.error("--profiles must name at least one profile")
    known_schedulers = ("fifo", "rr", "drr", "tbr")
    for scheduler in schedulers:
        if scheduler not in known_schedulers:
            parser.error(
                f"unknown scheduler {scheduler!r} "
                f"(choose from {', '.join(known_schedulers)})"
            )
    for profile in profiles:
        if profile not in ("same", "multi"):
            parser.error(f"unknown profile {profile!r} (same, multi)")
    seconds = None
    if args.seconds is not None:
        if args.seconds <= 0:
            parser.error("--seconds must be positive")
        seconds = {n: args.seconds for n in station_counts}

    scenarios = matrix(
        station_counts,
        schedulers,
        profiles,
        seconds=seconds,
        seed=args.seed,
    )

    def progress(sample) -> None:
        sc = sample.scenario
        print(
            f"  {sc.key:<18} {sample.events:>8} events in "
            f"{sample.wall_s:6.3f}s -> {sample.events_per_sec:>10,.0f} ev/s"
        )

    print(f"Running {len(scenarios)} scenarios (seed {args.seed}) ...")
    samples = run_matrix(scenarios, progress=progress)
    print()
    print(render_table(samples))
    if args.events:
        print()
        print(render_events_table(samples))

    headline = next(
        (s for s in samples if s.scenario.key == HEADLINE_KEY), None
    )
    if headline is not None:
        print(
            f"\nheadline {HEADLINE_KEY}: "
            f"{headline.events_per_sec:,.0f} events/sec"
        )

    campaign = None
    if args.campaign:
        from repro.perf.campaign_bench import (
            campaign_row,
            render_campaign,
            run_campaign_bench,
        )

        print("\nRunning campaign benchmark (serial / parallel / warm) ...")
        bench = run_campaign_bench(
            workers=args.campaign_jobs,
            seed=args.seed,
            progress=lambda leg, wall: print(f"  {leg:<8} {wall:8.2f}s"),
        )
        print(render_campaign(bench))
        campaign = campaign_row(bench)

    fastforward = None
    if args.long_horizon:
        from repro.perf.longhorizon import (
            longhorizon_row,
            render_long_horizon,
            run_long_horizon,
        )

        print("\nRunning long-horizon fast-forward benchmark ...")
        lh_samples = run_long_horizon(
            horizons,
            seed=args.seed,
            progress=lambda leg, sim_s, wall: print(
                f"  {leg:<8} {sim_s:6g} sim s  {wall:8.3f}s wall"
            ),
        )
        print(render_long_horizon(lh_samples))
        fastforward = longhorizon_row(lh_samples, seed=args.seed)

    campus = None
    if args.campus:
        from repro.perf.campus_scaling import (
            campus_row,
            render_campus_scaling,
            run_campus_scaling,
        )

        from repro.campaign.store import ResultStore, default_store_root

        print("\nRunning campus scaling benchmark ...")
        campus_stats: dict = {}
        campus_samples = run_campus_scaling(
            seed=args.seed,
            progress=lambda n, wall: print(
                f"  {n:>3} cells  {wall:8.3f}s wall"
            ),
            store=ResultStore(default_store_root()),
            stats_out=campus_stats,
        )
        print(
            f"  store: {campus_stats.get('executed', 0)} point(s) "
            f"executed, {campus_stats.get('cached', 0)} replayed"
        )
        print(render_campus_scaling(campus_samples))
        campus = campus_row(campus_samples, seed=args.seed)

    if not no_write:
        path = write_report(
            samples,
            output,
            note=args.note,
            campaign=campaign,
            fastforward=fastforward,
            campus=campus,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
