"""Performance benchmark subsystem.

``repro.perf`` measures the simulator itself: saturated cells at
growing station counts, reported as kernel events per wall-clock second
and persisted to ``BENCH_perf.json`` so every PR leaves a trajectory
the next one has to beat.  Run it via ``python -m repro perf``.
"""

from repro.perf.scaling import (
    DEFAULT_PROFILES,
    DEFAULT_SCHEDULERS,
    DEFAULT_SECONDS,
    DEFAULT_STATION_COUNTS,
    EVENT_CATEGORIES,
    MULTI_RATES,
    PerfSample,
    PerfScenario,
    build_cell,
    matrix,
    run_matrix,
    run_scenario,
)
from repro.perf.report import (
    DEFAULT_PATH,
    HEADLINE_KEY,
    build_report,
    load_report,
    render_events_table,
    render_table,
    sample_row,
    write_report,
)
from repro.perf.campaign_bench import (
    BENCH_SECONDS,
    CampaignBenchSample,
    build_suite_jobs,
    campaign_row,
    render_campaign,
    run_campaign_bench,
)
from repro.perf.longhorizon import (
    DEFAULT_HORIZONS,
    LongHorizonSample,
    longhorizon_row,
    render_long_horizon,
    run_long_horizon,
)

__all__ = [
    "DEFAULT_HORIZONS",
    "LongHorizonSample",
    "longhorizon_row",
    "render_long_horizon",
    "run_long_horizon",
    "BENCH_SECONDS",
    "CampaignBenchSample",
    "build_suite_jobs",
    "campaign_row",
    "render_campaign",
    "run_campaign_bench",
    "DEFAULT_PATH",
    "DEFAULT_PROFILES",
    "DEFAULT_SCHEDULERS",
    "DEFAULT_SECONDS",
    "DEFAULT_STATION_COUNTS",
    "EVENT_CATEGORIES",
    "HEADLINE_KEY",
    "MULTI_RATES",
    "PerfSample",
    "PerfScenario",
    "build_cell",
    "build_report",
    "load_report",
    "matrix",
    "render_events_table",
    "render_table",
    "run_matrix",
    "run_scenario",
    "sample_row",
    "write_report",
]
