"""Long-horizon benchmark: fast-forward vs event-by-event wall clock.

The scaling matrix measures kernel throughput on short saturated cells;
this module measures what the steady-state fast-forward engine
(:mod:`repro.sim.steady`) buys on the workload it exists for — long
quiet horizons.  The ``steady-long`` scenario family is swept over
``sim_seconds`` with the engine on and off, and the tracked quantity is
wall-clock *per simulated second*: event-by-event it is flat in the
horizon (O(packets)), fast-forwarded it collapses toward
O(transitions).

Event-by-event legs whose projected wall exceeds the budget are
*skipped and annotated* rather than silently endured (or silently
dropped) — the same honesty rule the campaign benchmark applies to its
parallel leg on single-core hosts.  The projection comes from the
longest baseline leg actually measured, scaled linearly in the horizon
(event-by-event cost is linear in simulated time on a saturated cell).

Results land in ``BENCH_perf.json`` under the ``fastforward`` key via
``python -m repro perf --long-horizon``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

#: Simulated-seconds sweep (the wall-vs-horizon curve's x axis).
DEFAULT_HORIZONS = (1.0, 10.0, 100.0)

#: Scenario family the benchmark sweeps (must stay fast-forwardable).
FAMILY = "steady-long"

#: Wall-clock budget for any single event-by-event leg; longer legs are
#: projected from the last measured one and annotated as skipped.
DEFAULT_BASELINE_BUDGET_S = 120.0


@dataclass
class LongHorizonSample:
    """One point on the wall-vs-horizon curve.

    ``baseline_wall_s`` is ``None`` when the event-by-event leg was
    skipped (``skipped_reason`` says why and
    ``projected_baseline_wall_s`` carries the linear projection used in
    its place).  The fast-forward leg always runs — skipping it would
    leave nothing to benchmark.
    """

    sim_seconds: float
    fast_wall_s: float
    fast_jumps: int
    fast_skipped_s: float
    fast_events: int
    fast_total_mbps: float
    baseline_wall_s: Optional[float]
    baseline_events: Optional[int]
    baseline_total_mbps: Optional[float]
    skipped_reason: Optional[str] = None
    projected_baseline_wall_s: Optional[float] = None

    @property
    def fast_wall_per_sim_s(self) -> float:
        return self.fast_wall_s / self.sim_seconds

    @property
    def baseline_wall_per_sim_s(self) -> Optional[float]:
        wall = (
            self.baseline_wall_s
            if self.baseline_wall_s is not None
            else self.projected_baseline_wall_s
        )
        if wall is None:
            return None
        return wall / self.sim_seconds

    @property
    def speedup(self) -> Optional[float]:
        """Event-by-event wall over fast-forward wall (same horizon).

        Uses the projection when the baseline leg was skipped —
        ``skipped_reason`` flags those rows so a dashboard can tell a
        measured speedup from a projected one.
        """
        baseline = (
            self.baseline_wall_s
            if self.baseline_wall_s is not None
            else self.projected_baseline_wall_s
        )
        if baseline is None or self.fast_wall_s <= 0:
            return None
        return baseline / self.fast_wall_s


def run_long_horizon(
    horizons: Sequence[float] = DEFAULT_HORIZONS,
    *,
    seed: int = 1,
    baseline_budget_s: float = DEFAULT_BASELINE_BUDGET_S,
    progress: Optional[Callable[[str, float, float], None]] = None,
) -> List[LongHorizonSample]:
    """Sweep ``steady-long`` over ``horizons`` with and without the
    fast-forward engine; ``progress(leg, sim_seconds, wall_s)`` after
    each timed leg.

    Horizons run shortest first so every baseline leg that *does* run
    refines the per-simulated-second cost used to project (and, past
    the budget, skip) the longer ones.
    """
    from repro.scenario.registry import build_spec
    from repro.scenario.runner import run_spec

    samples: List[LongHorizonSample] = []
    baseline_rate: Optional[float] = None  # wall seconds per sim second
    for sim_seconds in sorted(horizons):
        spec = build_spec(FAMILY, seconds=sim_seconds, seed=seed)

        t0 = time.perf_counter()
        fast = run_spec(spec, fast_forward=True)
        fast_wall = time.perf_counter() - t0
        if progress is not None:
            progress("fastfwd", sim_seconds, fast_wall)

        projected = (
            None if baseline_rate is None else baseline_rate * sim_seconds
        )
        if projected is not None and projected > baseline_budget_s:
            skipped_reason = (
                f"event-by-event leg skipped: projected wall "
                f"{projected:.1f}s exceeds the {baseline_budget_s:.0f}s "
                f"budget (linear projection from the last measured leg)"
            )
            samples.append(
                LongHorizonSample(
                    sim_seconds=sim_seconds,
                    fast_wall_s=fast_wall,
                    fast_jumps=fast.fast_forwards,
                    fast_skipped_s=fast.fast_forwarded_s,
                    fast_events=fast.events_executed,
                    fast_total_mbps=fast.total_mbps,
                    baseline_wall_s=None,
                    baseline_events=None,
                    baseline_total_mbps=None,
                    skipped_reason=skipped_reason,
                    projected_baseline_wall_s=projected,
                )
            )
            continue

        t0 = time.perf_counter()
        slow = run_spec(spec, fast_forward=False)
        slow_wall = time.perf_counter() - t0
        if progress is not None:
            progress("baseline", sim_seconds, slow_wall)
        baseline_rate = slow_wall / sim_seconds
        samples.append(
            LongHorizonSample(
                sim_seconds=sim_seconds,
                fast_wall_s=fast_wall,
                fast_jumps=fast.fast_forwards,
                fast_skipped_s=fast.fast_forwarded_s,
                fast_events=fast.events_executed,
                fast_total_mbps=fast.total_mbps,
                baseline_wall_s=slow_wall,
                baseline_events=slow.events_executed,
                baseline_total_mbps=slow.total_mbps,
            )
        )
    return samples


def longhorizon_row(
    samples: Sequence[LongHorizonSample], *, seed: int = 1
) -> Dict:
    """Flatten the sweep for ``BENCH_perf.json``'s ``fastforward`` key.

    ``headline_speedup`` is the longest horizon's wall-per-simulated-
    second ratio — the number a PR description quotes; per-horizon rows
    keep the whole curve (and any ``skipped_reason`` annotations) for
    dashboards.
    """
    rows = []
    for s in samples:
        rows.append(
            {
                "sim_seconds": s.sim_seconds,
                "fast_wall_s": round(s.fast_wall_s, 4),
                "fast_wall_s_per_sim_s": round(s.fast_wall_per_sim_s, 6),
                "fast_jumps": s.fast_jumps,
                "fast_skipped_sim_s": round(s.fast_skipped_s, 3),
                "fast_events": s.fast_events,
                "fast_total_mbps": round(s.fast_total_mbps, 4),
                "baseline_wall_s": (
                    None
                    if s.baseline_wall_s is None
                    else round(s.baseline_wall_s, 4)
                ),
                "baseline_wall_s_per_sim_s": (
                    None
                    if s.baseline_wall_per_sim_s is None
                    else round(s.baseline_wall_per_sim_s, 6)
                ),
                "baseline_events": s.baseline_events,
                "baseline_total_mbps": (
                    None
                    if s.baseline_total_mbps is None
                    else round(s.baseline_total_mbps, 4)
                ),
                "speedup": (
                    None if s.speedup is None else round(s.speedup, 2)
                ),
                "skipped_reason": s.skipped_reason,
                "projected_baseline_wall_s": (
                    None
                    if s.projected_baseline_wall_s is None
                    else round(s.projected_baseline_wall_s, 4)
                ),
            }
        )
    longest = max(samples, key=lambda s: s.sim_seconds) if samples else None
    headline = (
        None
        if longest is None or longest.speedup is None
        else round(longest.speedup, 2)
    )
    return {
        "family": FAMILY,
        "seed": seed,
        "horizons": rows,
        "headline_speedup": headline,
    }


def render_long_horizon(samples: Sequence[LongHorizonSample]) -> str:
    """Fixed-width wall-vs-horizon table for the CLI."""
    headers = (
        "sim s", "baseline wall", "fastfwd wall", "speedup",
        "jumps", "skipped sim s",
    )
    rows: List[List[str]] = []
    for s in samples:
        if s.baseline_wall_s is not None:
            baseline = f"{s.baseline_wall_s:.3f}s"
        elif s.projected_baseline_wall_s is not None:
            baseline = f"~{s.projected_baseline_wall_s:.1f}s (skipped)"
        else:
            baseline = "-"
        speedup = "-" if s.speedup is None else f"{s.speedup:.1f}x"
        if s.skipped_reason is not None and s.speedup is not None:
            speedup = f"~{s.speedup:.1f}x"
        rows.append(
            [
                f"{s.sim_seconds:g}",
                baseline,
                f"{s.fast_wall_s:.3f}s",
                speedup,
                str(s.fast_jumps),
                f"{s.fast_skipped_s:.1f}",
            ]
        )
    cells = [list(headers)] + rows
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = ["Long-horizon fast-forward (steady-long)"]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
