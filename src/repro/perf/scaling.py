"""Scaling harness: how fast does the simulator itself run?

Every paper artifact in this repository is a discrete-event simulation,
so kernel throughput (executed events per wall-clock second) is the
ceiling on how many scenarios, seeds and station counts we can afford.
This module builds *saturated* cells — every station's downlink queue is
kept backlogged by a UDP source offering more than its fair share — at
increasing station counts and measures:

* ``events_per_sec`` — kernel events executed per wall-clock second,
  the headline metric tracked across PRs in ``BENCH_perf.json``;
* ``wall_s_per_sim_s`` — wall-clock seconds needed per simulated
  second, the quantity an experiment author actually budgets for.

Scenarios come in two rate profiles mirroring the paper's cells:
``same`` (everyone at 11 Mbps, Figure 8's regime) and ``multi``
(stations cycling through 1/2/5.5/11 Mbps, Figure 9's regime — the one
where time-based fairness matters).  Schedulers are the AP disciplines
the experiments compare: FIFO, DRR and the paper's TBR.

The harness is deliberately deterministic (fixed seed, fixed offered
load) so events-per-second numbers are comparable across commits; only
the wall clock varies with the host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.node.cell import Cell

#: Category keys reported per scenario (repro.sim.EventCategory names).
EVENT_CATEGORIES = ("traffic", "mac", "phy", "timer", "other")

#: Rate ladder used by the ``multi`` profile (the paper's 802.11b set).
MULTI_RATES = (1.0, 2.0, 5.5, 11.0)

#: Station counts the standard matrix sweeps.
DEFAULT_STATION_COUNTS = (4, 16, 64, 128)

#: AP disciplines the standard matrix sweeps.
DEFAULT_SCHEDULERS = ("fifo", "drr", "tbr")

#: Rate profiles the standard matrix sweeps.
DEFAULT_PROFILES = ("same", "multi")

#: Simulated seconds per station count: larger cells get shorter runs so
#: the whole matrix stays affordable while each run still executes
#: enough events for a stable rate estimate.
DEFAULT_SECONDS: Dict[int, float] = {4: 2.0, 16: 1.0, 64: 0.5, 128: 0.25}

#: Total offered downlink load (Mbps) across all stations.  Well above
#: any 802.11b cell's capacity, so the AP queue stays backlogged and the
#: cell is saturated regardless of N or rate profile.
OFFERED_TOTAL_MBPS = 24.0

#: Per-station floor on the offered rate so large cells stay saturated
#: per-queue too (each station's share of a 100-packet AP buffer).
OFFERED_FLOOR_MBPS = 0.15


@dataclass(frozen=True)
class PerfScenario:
    """One cell configuration of the scaling matrix."""

    stations: int
    scheduler: str  # "fifo" | "drr" | "tbr"
    profile: str = "multi"  # "same" | "multi"
    seconds: float = 1.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.stations < 1:
            raise ValueError("stations must be >= 1")
        if self.profile not in ("same", "multi"):
            raise ValueError(f"unknown profile {self.profile!r}")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``tbr/multi/n64``."""
        return f"{self.scheduler}/{self.profile}/n{self.stations}"

    def station_rates(self) -> List[float]:
        if self.profile == "same":
            return [11.0] * self.stations
        return [MULTI_RATES[i % len(MULTI_RATES)] for i in range(self.stations)]

    def offered_mbps_per_station(self) -> float:
        return max(OFFERED_FLOOR_MBPS, OFFERED_TOTAL_MBPS / self.stations)


@dataclass
class PerfSample:
    """Measured outcome of one scenario run."""

    scenario: PerfScenario
    events: int
    wall_s: float
    sim_s: float
    total_mbps: float
    pending_at_end: int = 0
    #: executed events per category (traffic/mac/phy/timer/other) —
    #: where the events went, not just how many (see EventCategory).
    events_by_category: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def wall_s_per_sim_s(self) -> float:
        return self.wall_s / self.sim_s if self.sim_s > 0 else 0.0

    @property
    def events_per_sim_s(self) -> float:
        return self.events / self.sim_s if self.sim_s > 0 else 0.0


def build_cell(scenario: PerfScenario) -> Cell:
    """Assemble the saturated cell for ``scenario`` (not yet run)."""
    cell = Cell(seed=scenario.seed, scheduler=scenario.scheduler)
    offered = scenario.offered_mbps_per_station()
    for i, rate in enumerate(scenario.station_rates()):
        station = cell.add_station(f"n{i + 1:03d}", rate_mbps=rate)
        cell.udp_flow(station, direction="down", rate_mbps=offered)
    return cell


def run_scenario(scenario: PerfScenario) -> PerfSample:
    """Run one scenario under the wall clock and report kernel rates."""
    cell = build_cell(scenario)
    sim = cell.sim
    start_events = sim.events_executed
    start_cats = dict(sim.events_by_category())
    t0 = time.perf_counter()
    cell.run(seconds=scenario.seconds)
    wall = time.perf_counter() - t0
    end_cats = sim.events_by_category()
    return PerfSample(
        scenario=scenario,
        events=sim.events_executed - start_events,
        wall_s=wall,
        sim_s=scenario.seconds,
        total_mbps=cell.total_throughput_mbps(),
        pending_at_end=sim.pending_count(),
        events_by_category={
            key: end_cats[key] - start_cats.get(key, 0)
            for key in EVENT_CATEGORIES
        },
    )


def matrix(
    station_counts: Sequence[int] = DEFAULT_STATION_COUNTS,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    profiles: Sequence[str] = DEFAULT_PROFILES,
    *,
    seconds: Optional[Dict[int, float]] = None,
    seed: int = 1,
) -> List[PerfScenario]:
    """The cross product of the requested axes, in deterministic order."""
    for n in station_counts:
        if n < 1:
            raise ValueError(f"station counts must be >= 1, got {n}")
    table = dict(DEFAULT_SECONDS)
    if seconds:
        table.update(seconds)
    scenarios = []
    for profile in profiles:
        for scheduler in schedulers:
            for n in station_counts:
                scenarios.append(
                    PerfScenario(
                        stations=n,
                        scheduler=scheduler,
                        profile=profile,
                        seconds=table.get(n, max(0.25, 32.0 / n)),
                        seed=seed,
                    )
                )
    return scenarios


def run_matrix(
    scenarios: Iterable[PerfScenario],
    *,
    progress=None,
) -> List[PerfSample]:
    """Run every scenario; ``progress(sample)`` is called after each."""
    samples = []
    for scenario in scenarios:
        sample = run_scenario(scenario)
        samples.append(sample)
        if progress is not None:
            progress(sample)
    return samples
