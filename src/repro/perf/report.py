"""Machine-readable perf trajectory: ``BENCH_perf.json``.

The benchmark run writes one JSON document at the repository root so
future PRs have a trajectory to beat.  The schema is deliberately flat:

* ``spec`` — the matrix that was run (axes, seed, simulated seconds);
* ``results`` — one row per scenario with events/sec and wall-clock per
  simulated second;
* ``headline`` — the N=64 saturated-TBR multi-rate scenario, the number
  quoted in PR descriptions.

Wall-clock figures are host-dependent; events-per-simulated-second is
not, which is why both are recorded.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.perf.scaling import PerfSample

#: The scenario whose events/sec is the PR-over-PR headline number.
HEADLINE_KEY = "tbr/multi/n64"

#: Default artifact location (repo root when run from a checkout).
DEFAULT_PATH = "BENCH_perf.json"


def sample_row(sample: PerfSample) -> Dict:
    """Flatten one sample into a JSON-friendly row."""
    sc = sample.scenario
    return {
        "key": sc.key,
        "stations": sc.stations,
        "scheduler": sc.scheduler,
        "profile": sc.profile,
        "seed": sc.seed,
        "sim_seconds": sc.seconds,
        "events": sample.events,
        "wall_s": round(sample.wall_s, 6),
        "events_per_sec": round(sample.events_per_sec, 1),
        "events_per_sim_s": round(sample.events_per_sim_s, 1),
        "wall_s_per_sim_s": round(sample.wall_s_per_sim_s, 6),
        "total_mbps": round(sample.total_mbps, 4),
        #: where the events went (traffic/mac/phy/timer/other); lets a
        #: PR prove *which* layer its event-count delta came from.
        "events_by_category": dict(sample.events_by_category),
    }


def build_report(
    samples: Iterable[PerfSample],
    *,
    note: str = "",
    campaign: Optional[Dict] = None,
    fastforward: Optional[Dict] = None,
    campus: Optional[Dict] = None,
) -> Dict:
    rows = [sample_row(s) for s in samples]
    by_key = {row["key"]: row for row in rows}
    headline = by_key.get(HEADLINE_KEY)
    return {
        "benchmark": "perf_scaling",
        "paper": "conf_usenix_TanG04",
        "metric": "events_per_sec (kernel events per wall-clock second)",
        "python": platform.python_version(),
        "note": note,
        "headline": headline,
        #: serial-vs-parallel full-suite walls from the campaign
        #: benchmark (``repro.perf.campaign_bench``), when run.
        "campaign": campaign,
        #: wall-vs-horizon curve from the long-horizon fast-forward
        #: benchmark (``repro.perf.longhorizon``), when run.
        "fastforward": fastforward,
        #: cells-vs-wall curve from the campus scaling benchmark
        #: (``repro.perf.campus_scaling``), when run.
        "campus": campus,
        "results": rows,
    }


def write_report(
    samples: Iterable[PerfSample],
    path: Optional[str] = None,
    *,
    note: str = "",
    campaign: Optional[Dict] = None,
    fastforward: Optional[Dict] = None,
    campus: Optional[Dict] = None,
) -> Path:
    """Write ``BENCH_perf.json``; returns the path written."""
    target = Path(path if path is not None else DEFAULT_PATH)
    report = build_report(
        samples,
        note=note,
        campaign=campaign,
        fastforward=fastforward,
        campus=campus,
    )
    target.write_text(json.dumps(report, indent=2) + "\n")
    return target


def load_report(path: Optional[str] = None) -> Dict:
    target = Path(path if path is not None else DEFAULT_PATH)
    return json.loads(target.read_text())


def render_events_table(samples: Iterable[PerfSample]) -> str:
    """Per-category event breakdown table (``repro perf --events``)."""
    from repro.perf.scaling import EVENT_CATEGORIES

    headers = ("scenario", "events") + EVENT_CATEGORIES
    rows: List[List[str]] = []
    for s in samples:
        cats = s.events_by_category
        rows.append(
            [s.scenario.key, str(s.events)]
            + [str(cats.get(key, 0)) for key in EVENT_CATEGORIES]
        )
    cells = [list(headers)] + rows
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = ["Kernel events by category"]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table(samples: Iterable[PerfSample]) -> str:
    """Fixed-width events/sec table for the CLI."""
    headers = (
        "scenario", "N", "sim s", "events", "events/sec",
        "wall s / sim s", "Mbps",
    )
    rows: List[List[str]] = []
    for s in samples:
        sc = s.scenario
        rows.append(
            [
                f"{sc.scheduler}/{sc.profile}",
                str(sc.stations),
                f"{sc.seconds:g}",
                str(s.events),
                f"{s.events_per_sec:,.0f}",
                f"{s.wall_s_per_sim_s:.3f}",
                f"{s.total_mbps:.2f}",
            ]
        )
    cells = [list(headers)] + rows
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = ["Simulator scaling (saturated cells)"]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
