"""Campaign benchmark: serial vs parallel vs warm-cache wall clock.

The scaling matrix (``repro.perf.scaling``) measures the kernel; this
module measures the *campaign* layer on the quantity an experiment
author actually feels: wall-clock to reproduce the paper's full figure
and table suite.  Three legs, each against a fresh temporary cache so
the comparison is honest:

1. **serial** — every job in-process, one after another (the
   pre-campaign workflow);
2. **parallel** — the same jobs through the multiprocessing executor;
3. **warm** — the parallel campaign re-run against its own cache, which
   must execute zero jobs.

Simulated durations are scaled down per experiment (``BENCH_SECONDS``)
so the suite stays affordable; serial-vs-parallel *ratios*, not
absolute walls, are the tracked quantity.  Results land in
``BENCH_perf.json`` under the ``campaign`` key via
``python -m repro perf --campaign``.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CampaignOutcome, run_jobs
from repro.campaign.job import Job
from repro.campaign.registry import FIGURE_SUITE, campaign_registry

#: Per-experiment simulated durations for the benchmark suite (seconds
#: in each experiment's own duration unit — fig5 simulates hours of
#: trace, table1 runs to task completion under this cap).
BENCH_SECONDS: Dict[str, float] = {
    "fig1": 6.0,
    "fig2": 2.0,
    "fig3": 2.0,
    "fig4": 2.0,
    "fig5": 6.0 * 3600.0,
    "fig8": 1.0,
    "fig9": 1.0,
    "table1": 45.0,
    "table2": 2.0,
    "table3": 2.0,
    "table4": 2.0,
}


def default_workers() -> int:
    """Parallel-leg worker count: one per CPU.

    On a single-core host this is 1, and :func:`run_campaign_bench`
    *skips* the parallel leg rather than timing two workers fighting
    over one core — that used to produce a headline "speedup" below 1
    (e.g. 0.809) that said nothing about the campaign layer.
    """
    return os.cpu_count() or 1


@dataclass
class CampaignBenchSample:
    """Measured walls for the legs of the campaign benchmark.

    ``parallel_wall_s`` is ``None`` when the parallel leg was skipped
    (``degraded_reason`` says why — currently only single-core hosts,
    where serial-vs-parallel walls measure multiprocessing overhead,
    not campaign speedup).  The warm leg always runs: cache hits are
    meaningful regardless of core count.
    """

    experiments: List[str]
    jobs: int
    unique_jobs: int
    workers: int
    seed: int
    serial_wall_s: float
    parallel_wall_s: Optional[float]
    warm_wall_s: float
    warm_executed: int  #: must be 0 — every warm job is a cache hit
    degraded_reason: Optional[str] = None
    #: the *executor's* ``CampaignStats.degraded_reason`` from the
    #: parallel leg: non-None means the supervised pool fell back to
    #: serial mid-leg (repeated worker deaths), so the "parallel" wall
    #: is really a mostly-serial wall and its speedup is not comparable.
    executor_degraded_reason: Optional[str] = None
    #: attempts retried across the parallel leg (0 on a healthy host);
    #: a nonzero count flags walls inflated by retry backoff.
    parallel_retries: int = 0

    @property
    def parallel_speedup(self) -> Optional[float]:
        """Serial wall over parallel wall (>= 1 on multi-core hosts);
        ``None`` when the parallel leg was skipped."""
        if self.parallel_wall_s is None:
            return None
        if self.parallel_wall_s <= 0:
            return 0.0
        return self.serial_wall_s / self.parallel_wall_s

    @property
    def warm_fraction(self) -> float:
        """Warm-cache wall as a fraction of the cold run it re-hits
        (the parallel leg, or the serial leg when parallel was
        skipped)."""
        cold = (
            self.parallel_wall_s
            if self.parallel_wall_s is not None
            else self.serial_wall_s
        )
        if cold <= 0:
            return 0.0
        return self.warm_wall_s / cold


def build_suite_jobs(
    experiments: Optional[Sequence[str]] = None,
    *,
    seed: int = 1,
    seconds: Optional[Dict[str, float]] = None,
) -> List[Job]:
    """The benchmark's job list: every selected experiment at its
    scaled-down duration."""
    registry = campaign_registry()
    names = list(experiments) if experiments else list(FIGURE_SUITE)
    durations = dict(BENCH_SECONDS)
    if seconds:
        durations.update(seconds)
    jobs: List[Job] = []
    for name in names:
        jobs.extend(
            registry[name].build_jobs(seed=seed, seconds=durations.get(name))
        )
    return jobs


def run_campaign_bench(
    experiments: Optional[Sequence[str]] = None,
    *,
    workers: Optional[int] = None,
    seed: int = 1,
    seconds: Optional[Dict[str, float]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> CampaignBenchSample:
    """Time the legs; ``progress(leg, wall_s)`` after each.

    With one usable worker (``workers`` resolving to <= 1) the parallel
    leg is skipped and annotated instead of timed: on a single core the
    "parallel" wall is the serial wall plus process-pool overhead, and
    the resulting sub-1 "speedup" headline is noise.  The warm leg then
    re-runs against the serial cache (still a pure cache-hit check).
    """
    workers = default_workers() if workers is None else workers
    names = list(experiments) if experiments else list(FIGURE_SUITE)
    jobs = build_suite_jobs(names, seed=seed, seconds=seconds)
    degraded_reason = None
    if workers <= 1:
        degraded_reason = (
            f"parallel leg skipped: only {workers} worker available "
            f"(cpu_count={os.cpu_count()}); a parallel wall on this "
            "host would measure multiprocessing overhead, not speedup"
        )

    def timed(leg_workers: int, cache: ResultCache) -> Tuple[float, CampaignOutcome]:
        t0 = time.perf_counter()
        outcome = run_jobs(jobs, workers=leg_workers, cache=cache)
        return time.perf_counter() - t0, outcome

    with tempfile.TemporaryDirectory(prefix="repro-campaign-bench-") as tmp:
        serial_cache = ResultCache(f"{tmp}/serial")
        serial_wall, serial_outcome = timed(1, serial_cache)
        if progress is not None:
            progress("serial", serial_wall)
        executor_degraded = None
        parallel_retries = 0
        if degraded_reason is None:
            warm_cache = ResultCache(f"{tmp}/parallel")
            parallel_wall, parallel_outcome = timed(workers, warm_cache)
            executor_degraded = parallel_outcome.stats.degraded_reason
            parallel_retries = parallel_outcome.stats.retried
            if progress is not None:
                progress("parallel", parallel_wall)
        else:
            parallel_wall = None
            warm_cache = serial_cache
        warm_wall, warm_outcome = timed(max(1, workers), warm_cache)
        if progress is not None:
            progress("warm", warm_wall)

    return CampaignBenchSample(
        experiments=names,
        jobs=len(jobs),
        unique_jobs=serial_outcome.stats.unique,
        workers=workers,
        seed=seed,
        serial_wall_s=serial_wall,
        parallel_wall_s=parallel_wall,
        warm_wall_s=warm_wall,
        warm_executed=warm_outcome.stats.executed,
        degraded_reason=degraded_reason,
        executor_degraded_reason=executor_degraded,
        parallel_retries=parallel_retries,
    )


def campaign_row(sample: CampaignBenchSample) -> Dict:
    """Flatten the sample for ``BENCH_perf.json``'s ``campaign`` key.

    A skipped parallel leg serializes as ``parallel_wall_s: null`` /
    ``parallel_speedup: null`` with ``degraded_reason`` recording why,
    so a dashboard never mistakes a single-core artifact for a
    regression.
    """
    return {
        "experiments": list(sample.experiments),
        "jobs": sample.jobs,
        "unique_jobs": sample.unique_jobs,
        "workers": sample.workers,
        "seed": sample.seed,
        "serial_wall_s": round(sample.serial_wall_s, 3),
        "parallel_wall_s": (
            None
            if sample.parallel_wall_s is None
            else round(sample.parallel_wall_s, 3)
        ),
        "warm_wall_s": round(sample.warm_wall_s, 3),
        "parallel_speedup": (
            None
            if sample.parallel_speedup is None
            else round(sample.parallel_speedup, 3)
        ),
        "warm_fraction": round(sample.warm_fraction, 4),
        "warm_executed": sample.warm_executed,
        "degraded_reason": sample.degraded_reason,
        "executor_degraded_reason": sample.executor_degraded_reason,
        "parallel_retries": sample.parallel_retries,
        "cpu_count": os.cpu_count(),
    }


def render_campaign(sample: CampaignBenchSample) -> str:
    """Human-readable summary for the CLI."""
    if sample.parallel_wall_s is None:
        parallel_line = f"  parallel      skipped ({sample.degraded_reason})\n"
    else:
        caveat = ""
        if sample.executor_degraded_reason is not None:
            caveat = f"  [degraded: {sample.executor_degraded_reason}]"
        elif sample.parallel_retries:
            caveat = f"  [{sample.parallel_retries} retried]"
        parallel_line = (
            f"  parallel  {sample.parallel_wall_s:8.2f}s  "
            f"({sample.workers} workers, {sample.parallel_speedup:.2f}x)"
            f"{caveat}\n"
        )
    return (
        "Campaign benchmark "
        f"({len(sample.experiments)} experiments, {sample.jobs} jobs, "
        f"{sample.unique_jobs} unique):\n"
        f"  serial    {sample.serial_wall_s:8.2f}s  (1 worker)\n"
        + parallel_line
        + f"  warm      {sample.warm_wall_s:8.2f}s  "
        f"({sample.warm_fraction * 100:.1f}% of cold, "
        f"{sample.warm_executed} executed)"
    )
