"""Campaign benchmark: serial vs parallel vs warm-cache wall clock.

The scaling matrix (``repro.perf.scaling``) measures the kernel; this
module measures the *campaign* layer on the quantity an experiment
author actually feels: wall-clock to reproduce the paper's full figure
and table suite.  Three legs, each against a fresh temporary cache so
the comparison is honest:

1. **serial** — every job in-process, one after another (the
   pre-campaign workflow);
2. **parallel** — the same jobs through the multiprocessing executor;
3. **warm** — the parallel campaign re-run against its own cache, which
   must execute zero jobs.

Simulated durations are scaled down per experiment (``BENCH_SECONDS``)
so the suite stays affordable; serial-vs-parallel *ratios*, not
absolute walls, are the tracked quantity.  Results land in
``BENCH_perf.json`` under the ``campaign`` key via
``python -m repro perf --campaign``.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CampaignOutcome, run_jobs
from repro.campaign.job import Job
from repro.campaign.registry import FIGURE_SUITE, campaign_registry

#: Per-experiment simulated durations for the benchmark suite (seconds
#: in each experiment's own duration unit — fig5 simulates hours of
#: trace, table1 runs to task completion under this cap).
BENCH_SECONDS: Dict[str, float] = {
    "fig1": 6.0,
    "fig2": 2.0,
    "fig3": 2.0,
    "fig4": 2.0,
    "fig5": 6.0 * 3600.0,
    "fig8": 1.0,
    "fig9": 1.0,
    "table1": 45.0,
    "table2": 2.0,
    "table3": 2.0,
    "table4": 2.0,
}


def default_workers() -> int:
    """Parallel-leg worker count: one per CPU, but at least 2 so the
    multiprocessing path is exercised even on single-core hosts."""
    return max(2, os.cpu_count() or 1)


@dataclass
class CampaignBenchSample:
    """Measured walls for the three legs of the campaign benchmark."""

    experiments: List[str]
    jobs: int
    unique_jobs: int
    workers: int
    seed: int
    serial_wall_s: float
    parallel_wall_s: float
    warm_wall_s: float
    warm_executed: int  #: must be 0 — every warm job is a cache hit

    @property
    def parallel_speedup(self) -> float:
        """Serial wall over parallel wall (>= 1 on multi-core hosts)."""
        if self.parallel_wall_s <= 0:
            return 0.0
        return self.serial_wall_s / self.parallel_wall_s

    @property
    def warm_fraction(self) -> float:
        """Warm-cache wall as a fraction of the cold parallel wall."""
        if self.parallel_wall_s <= 0:
            return 0.0
        return self.warm_wall_s / self.parallel_wall_s


def build_suite_jobs(
    experiments: Optional[Sequence[str]] = None,
    *,
    seed: int = 1,
    seconds: Optional[Dict[str, float]] = None,
) -> List[Job]:
    """The benchmark's job list: every selected experiment at its
    scaled-down duration."""
    registry = campaign_registry()
    names = list(experiments) if experiments else list(FIGURE_SUITE)
    durations = dict(BENCH_SECONDS)
    if seconds:
        durations.update(seconds)
    jobs: List[Job] = []
    for name in names:
        jobs.extend(
            registry[name].build_jobs(seed=seed, seconds=durations.get(name))
        )
    return jobs


def run_campaign_bench(
    experiments: Optional[Sequence[str]] = None,
    *,
    workers: Optional[int] = None,
    seed: int = 1,
    seconds: Optional[Dict[str, float]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> CampaignBenchSample:
    """Time the three legs; ``progress(leg, wall_s)`` after each."""
    workers = default_workers() if workers is None else workers
    names = list(experiments) if experiments else list(FIGURE_SUITE)
    jobs = build_suite_jobs(names, seed=seed, seconds=seconds)

    def timed(leg_workers: int, cache: ResultCache) -> Tuple[float, CampaignOutcome]:
        t0 = time.perf_counter()
        outcome = run_jobs(jobs, workers=leg_workers, cache=cache)
        return time.perf_counter() - t0, outcome

    with tempfile.TemporaryDirectory(prefix="repro-campaign-bench-") as tmp:
        serial_wall, serial_outcome = timed(1, ResultCache(f"{tmp}/serial"))
        if progress is not None:
            progress("serial", serial_wall)
        parallel_cache = ResultCache(f"{tmp}/parallel")
        parallel_wall, _ = timed(workers, parallel_cache)
        if progress is not None:
            progress("parallel", parallel_wall)
        warm_wall, warm_outcome = timed(workers, parallel_cache)
        if progress is not None:
            progress("warm", warm_wall)

    return CampaignBenchSample(
        experiments=names,
        jobs=len(jobs),
        unique_jobs=serial_outcome.stats.unique,
        workers=workers,
        seed=seed,
        serial_wall_s=serial_wall,
        parallel_wall_s=parallel_wall,
        warm_wall_s=warm_wall,
        warm_executed=warm_outcome.stats.executed,
    )


def campaign_row(sample: CampaignBenchSample) -> Dict:
    """Flatten the sample for ``BENCH_perf.json``'s ``campaign`` key."""
    return {
        "experiments": list(sample.experiments),
        "jobs": sample.jobs,
        "unique_jobs": sample.unique_jobs,
        "workers": sample.workers,
        "seed": sample.seed,
        "serial_wall_s": round(sample.serial_wall_s, 3),
        "parallel_wall_s": round(sample.parallel_wall_s, 3),
        "warm_wall_s": round(sample.warm_wall_s, 3),
        "parallel_speedup": round(sample.parallel_speedup, 3),
        "warm_fraction": round(sample.warm_fraction, 4),
        "warm_executed": sample.warm_executed,
        "cpu_count": os.cpu_count(),
    }


def render_campaign(sample: CampaignBenchSample) -> str:
    """Human-readable summary for the CLI."""
    return (
        "Campaign benchmark "
        f"({len(sample.experiments)} experiments, {sample.jobs} jobs, "
        f"{sample.unique_jobs} unique):\n"
        f"  serial    {sample.serial_wall_s:8.2f}s  (1 worker)\n"
        f"  parallel  {sample.parallel_wall_s:8.2f}s  "
        f"({sample.workers} workers, {sample.parallel_speedup:.2f}x)\n"
        f"  warm      {sample.warm_wall_s:8.2f}s  "
        f"({sample.warm_fraction * 100:.1f}% of cold, "
        f"{sample.warm_executed} executed)"
    )
