"""Campus scaling benchmark: cells-vs-wall-clock on one kernel.

The scaling matrix measures one saturated cell; this leg measures the
ESS layer (:mod:`repro.campus`) — the ``campus`` scenario family swept
over the cell count with the classic 1/6/11 reuse plan, one local
uploader per cell and a roamer population scaling with the campus, so
every point carries both co-channel coupling (the ``i±3`` neighbours
share a channel) and mid-run handoffs.  The tracked quantity is
wall-clock per simulated second as the campus grows: events are linear
in cells (coupling adds a constant per-frame neighbour cost), so the
curve exposes any super-linear kernel overhead — heap depth, membership
bookkeeping — that a single-cell benchmark can never see.

Points whose projected wall exceeds the budget are *skipped and
annotated* rather than silently endured, the same honesty rule the
long-horizon and campaign benchmarks apply.  The projection is
geometric from the last two measured points (falling back to linear
from one), because the very overheads the benchmark hunts for are the
super-linear ones.

Results land in ``BENCH_perf.json`` under the ``campus`` key via
``python -m repro campus-scaling`` (read-modify-write: the rest of the
report survives) or ``python -m repro perf --campus`` (full rewrite).
"""

from __future__ import annotations

import argparse
import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

#: Cell-count sweep (the cells-vs-wall curve's x axis).
DEFAULT_CELL_COUNTS = (2, 4, 8, 16, 32, 64)

#: Scenario family the benchmark sweeps.
FAMILY = "campus"

#: Simulated seconds per point — short enough that the whole default
#: curve lands, long enough that every point fires real roams.
DEFAULT_SECONDS = 2.0
DEFAULT_WARMUP_S = 0.5

#: Wall-clock budget for any single point; larger campuses past it are
#: projected from the measured curve and annotated as skipped.
DEFAULT_BUDGET_S = 120.0

#: Executor address for :func:`execute_point` (campaign job form).
POINT_EXECUTOR = "repro.perf.campus_scaling:execute_point"


def execute_point(params: Dict) -> Dict:
    """Campaign executor for one campus point.

    Runs the spec and measures its wall-clock *inside* the result, so a
    store hit replays the originally measured timing — a warm
    ``repro perf --campus`` rerun reports the real curve without
    executing a single simulation.
    """
    from repro.scenario.runner import run_spec

    spec = params["spec"]
    t0 = time.perf_counter()
    result = run_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "events": result.events_executed,
        "total_mbps": result.total_mbps,
        "roams": result.roams_fired,
    }


def campus_point_job(spec):
    """Wrap one campus point as a campaign :class:`Job`."""
    from repro.campaign.job import make_job

    return make_job(
        "campus-scaling", spec.name, POINT_EXECUTOR, {"spec": spec}
    )


@dataclass
class CampusScaleSample:
    """One point on the cells-vs-wall curve.

    ``wall_s`` is ``None`` when the point was skipped
    (``skipped_reason`` says why and ``projected_wall_s`` carries the
    projection used in its place).
    """

    n_cells: int
    stations: int
    sim_seconds: float
    wall_s: Optional[float]
    events: Optional[int]
    total_mbps: Optional[float]
    roams: Optional[int]
    skipped_reason: Optional[str] = None
    projected_wall_s: Optional[float] = None

    @property
    def events_per_sec(self) -> Optional[float]:
        if self.wall_s is None or self.events is None or self.wall_s <= 0:
            return None
        return self.events / self.wall_s

    @property
    def wall_s_per_sim_s(self) -> Optional[float]:
        wall = self.wall_s if self.wall_s is not None else self.projected_wall_s
        if wall is None:
            return None
        return wall / self.sim_seconds


def _project_wall(
    measured: Sequence[CampusScaleSample], n_cells: int
) -> Optional[float]:
    """Projected wall for ``n_cells`` from the measured prefix.

    Geometric in the cell count when two points exist (captures
    super-linear growth), linear from the last point otherwise.
    """
    walls = [s for s in measured if s.wall_s is not None]
    if not walls:
        return None
    last = walls[-1]
    if len(walls) >= 2:
        prev = walls[-2]
        if (
            prev.wall_s > 0
            and last.wall_s > 0
            and last.n_cells > prev.n_cells
        ):
            growth = math.log(last.wall_s / prev.wall_s) / math.log(
                last.n_cells / prev.n_cells
            )
            growth = max(1.0, growth)  # never project sub-linear
            return last.wall_s * (n_cells / last.n_cells) ** growth
    return last.wall_s * (n_cells / last.n_cells)


def run_campus_scaling(
    cell_counts: Sequence[int] = DEFAULT_CELL_COUNTS,
    *,
    seed: int = 1,
    seconds: float = DEFAULT_SECONDS,
    warmup_s: float = DEFAULT_WARMUP_S,
    budget_s: float = DEFAULT_BUDGET_S,
    progress: Optional[Callable[[int, float], None]] = None,
    store=None,
    stats_out: Optional[Dict] = None,
) -> List[CampusScaleSample]:
    """Sweep the ``campus`` family over ``cell_counts``.

    Every point uses the 1/6/11 reuse plan (``n_channels=3``), one
    local per cell and ``max(1, n_cells // 2)`` roamers, so coupling
    and handoff cost both scale with the campus.  Points run smallest
    first; each measured point refines the projection that decides
    whether the next fits the budget.  ``progress(n_cells, wall_s)``
    fires after each measured point.

    With a ``store`` (a :class:`~repro.campaign.store.ResultStore`),
    each point runs as a campaign job keyed on its spec content: warm
    reruns replay the stored measurements — including the originally
    measured ``wall_s`` — without simulating.  ``stats_out`` (a dict)
    then receives ``executed``/``cached`` point counts.
    """
    from repro.scenario.registry import build_spec

    if stats_out is not None:
        stats_out.setdefault("executed", 0)
        stats_out.setdefault("cached", 0)

    def measure(spec) -> Dict:
        if store is None:
            return execute_point({"spec": spec})
        from repro.campaign.executor import run_jobs

        job = campus_point_job(spec)
        outcome = run_jobs([job], workers=1, cache=store)
        if stats_out is not None:
            stats_out["executed"] += outcome.stats.executed
            stats_out["cached"] += outcome.stats.cached
        return outcome.results[job]

    samples: List[CampusScaleSample] = []
    for n_cells in sorted(cell_counts):
        n_roamers = max(1, n_cells // 2)
        stations = n_cells + n_roamers
        projected = _project_wall(samples, n_cells)
        if projected is not None and projected > budget_s:
            samples.append(
                CampusScaleSample(
                    n_cells=n_cells,
                    stations=stations,
                    sim_seconds=seconds,
                    wall_s=None,
                    events=None,
                    total_mbps=None,
                    roams=None,
                    skipped_reason=(
                        f"skipped: projected wall {projected:.1f}s "
                        f"exceeds the {budget_s:.0f}s budget "
                        f"(projected from the measured curve)"
                    ),
                    projected_wall_s=projected,
                )
            )
            continue
        spec = build_spec(
            FAMILY,
            seed=seed,
            seconds=seconds,
            warmup_s=warmup_s,
            n_cells=n_cells,
            n_channels=3,
            n_roamers=n_roamers,
        )
        point = measure(spec)
        if progress is not None:
            progress(n_cells, point["wall_s"])
        samples.append(
            CampusScaleSample(
                n_cells=n_cells,
                stations=stations,
                sim_seconds=seconds,
                wall_s=point["wall_s"],
                events=point["events"],
                total_mbps=point["total_mbps"],
                roams=point["roams"],
            )
        )
    return samples


def campus_row(
    samples: Sequence[CampusScaleSample], *, seed: int = 1
) -> Dict:
    """Flatten the sweep for ``BENCH_perf.json``'s ``campus`` key.

    ``headline_wall_s_per_sim_s`` is the largest *measured* campus's
    wall per simulated second — the scaling number a PR quotes;
    per-point rows keep the whole curve (and any ``skipped_reason``
    annotations) for dashboards.
    """
    rows = []
    for s in samples:
        rows.append(
            {
                "n_cells": s.n_cells,
                "stations": s.stations,
                "sim_seconds": s.sim_seconds,
                "wall_s": None if s.wall_s is None else round(s.wall_s, 4),
                "wall_s_per_sim_s": (
                    None
                    if s.wall_s_per_sim_s is None
                    else round(s.wall_s_per_sim_s, 6)
                ),
                "events": s.events,
                "events_per_sec": (
                    None
                    if s.events_per_sec is None
                    else round(s.events_per_sec, 1)
                ),
                "total_mbps": (
                    None
                    if s.total_mbps is None
                    else round(s.total_mbps, 4)
                ),
                "roams": s.roams,
                "skipped_reason": s.skipped_reason,
                "projected_wall_s": (
                    None
                    if s.projected_wall_s is None
                    else round(s.projected_wall_s, 4)
                ),
            }
        )
    measured = [s for s in samples if s.wall_s is not None]
    largest = max(measured, key=lambda s: s.n_cells) if measured else None
    return {
        "family": FAMILY,
        "seed": seed,
        "channel_plan": "1/6/11",
        "cells": rows,
        "headline_n_cells": None if largest is None else largest.n_cells,
        "headline_wall_s_per_sim_s": (
            None
            if largest is None
            else round(largest.wall_s_per_sim_s, 6)
        ),
    }


def render_campus_scaling(samples: Sequence[CampusScaleSample]) -> str:
    """Fixed-width cells-vs-wall table for the CLI."""
    headers = (
        "cells", "stations", "roams", "events", "events/sec",
        "wall s / sim s", "Mbps",
    )
    rows: List[List[str]] = []
    for s in samples:
        if s.wall_s is None:
            wall = (
                "-"
                if s.wall_s_per_sim_s is None
                else f"~{s.wall_s_per_sim_s:.3f} (skipped)"
            )
            rows.append(
                [str(s.n_cells), str(s.stations), "-", "-", "-", wall, "-"]
            )
            continue
        rows.append(
            [
                str(s.n_cells),
                str(s.stations),
                str(s.roams),
                str(s.events),
                f"{s.events_per_sec:,.0f}",
                f"{s.wall_s_per_sim_s:.3f}",
                f"{s.total_mbps:.2f}",
            ]
        )
    cells = [list(headers)] + rows
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = ["Campus scaling (1/6/11 plan, roamers = cells/2)"]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def merge_into_report(row: Dict, path: Optional[str] = None) -> Path:
    """Read-modify-write the ``campus`` key of ``BENCH_perf.json``.

    The rest of the report — the scaling matrix, campaign and
    fast-forward sections — survives untouched; a missing report gets a
    minimal stub so the standalone leg still lands somewhere.
    """
    from repro.perf.report import DEFAULT_PATH

    target = Path(path if path is not None else DEFAULT_PATH)
    if target.exists():
        report = json.loads(target.read_text())
    else:
        report = {
            "benchmark": "perf_scaling",
            "paper": "conf_usenix_TanG04",
            "note": (
                "campus-scaling only (run `python -m repro perf` for "
                "the full matrix)"
            ),
        }
    report["campus"] = row
    target.write_text(json.dumps(report, indent=2) + "\n")
    return target


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro campus-scaling`` — run and record the curve."""
    parser = argparse.ArgumentParser(
        prog="python -m repro campus-scaling",
        description=(
            "Measure ESS wall-clock scaling (campus family, 1/6/11 "
            "reuse plan, roamers scaling with the campus) and merge the "
            "curve into BENCH_perf.json's 'campus' key."
        ),
    )
    parser.add_argument(
        "--cells",
        default=",".join(str(n) for n in DEFAULT_CELL_COUNTS),
        help="comma-separated cell counts (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seconds",
        type=float,
        default=DEFAULT_SECONDS,
        help="simulated seconds per point (default: %(default)s)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_S,
        help="wall-clock budget per point in seconds (default: %(default)s)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="report to merge into (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the table without touching the JSON report",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result store root (default: $REPRO_CACHE_DIR, else "
        "<repo root>/.repro-cache/campaign)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="measure every point in-process, bypassing the result store",
    )
    args = parser.parse_args(argv)
    try:
        cell_counts = [
            int(n) for n in args.cells.split(",") if n.strip()
        ]
    except ValueError:
        parser.error(f"invalid --cells {args.cells!r}")
    if not cell_counts or any(n < 2 for n in cell_counts):
        parser.error("--cells values must be >= 2 (roamers need a pair)")
    if args.seconds <= 0:
        parser.error("--seconds must be positive")
    if args.budget <= 0:
        parser.error("--budget must be positive")

    store = None
    if not args.no_cache:
        from repro.campaign.store import ResultStore, default_store_root

        store = ResultStore(
            default_store_root()
            if args.cache_dir is None
            else args.cache_dir
        )
    print(
        f"Running campus scaling over {len(cell_counts)} cell counts "
        f"(seed {args.seed}) ..."
    )
    stats: Dict = {}
    samples = run_campus_scaling(
        cell_counts,
        seed=args.seed,
        seconds=args.seconds,
        budget_s=args.budget,
        progress=lambda n, wall: print(
            f"  {n:>3} cells  {wall:8.3f}s wall"
        ),
        store=store,
        stats_out=stats,
    )
    if store is not None:
        print(
            f"  store: {stats.get('executed', 0)} point(s) executed, "
            f"{stats.get('cached', 0)} replayed from {store.root}"
        )
    print()
    print(render_campus_scaling(samples))
    if not args.no_write:
        path = merge_into_report(
            campus_row(samples, seed=args.seed), args.output
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
