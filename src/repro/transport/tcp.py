"""A compact TCP Reno/NewReno implementation.

Fidelity targets (what the paper's experiments actually exercise):

* **ack clocking** — data segments are paced by returning ACKs, and for
  uplink flows those ACKs traverse the AP's downlink queue, which is how
  TBR regulates uplink TCP without client cooperation (Section 4.1);
* **congestion control** — slow start, congestion avoidance, fast
  retransmit/recovery with NewReno partial-ack handling, and RTO with
  exponential backoff, so AP queue drops shape the sending rate as on a
  real network;
* **delayed ACKs** — ack-every-2 with a timeout, which sets the data:ack
  airtime ratio that the measured baseline throughputs (Table 2) embed.

Sequence space is bytes; data is synthetic (only offsets travel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim import EventCategory, EventPriority, Simulator
from repro.transport.stats import FlowStats


@dataclass
class TcpParams:
    """TCP tunables (defaults model a 2004-era bulk-transfer stack)."""

    mss: int = 1460
    header_bytes: int = 40
    ack_bytes: int = 40
    init_cwnd_segments: float = 2.0
    init_ssthresh_segments: float = 64.0
    rwnd_segments: int = 44
    delack_segments: int = 2
    delack_timeout_us: float = 50_000.0
    #: RFC 6298's 1-second floor.  Queueing delay at a saturated AP
    #: reaches hundreds of ms; a lower floor sits inside the RTT and
    #: causes spurious-timeout collapse spirals.
    min_rto_us: float = 1_000_000.0
    max_rto_us: float = 5_000_000.0
    initial_rto_us: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ValueError("mss must be positive")
        if self.rwnd_segments < 1:
            raise ValueError("rwnd must be at least one segment")
        if self.delack_segments < 1:
            raise ValueError("delack_segments must be >= 1")


@dataclass
class TcpSegment:
    """Data segment payload (rides inside a Packet)."""

    seq: int
    length: int
    ts_us: float
    retransmitted: bool = False


@dataclass
class TcpAck:
    """Cumulative acknowledgement payload."""

    ackno: int
    ts_echo_us: float = 0.0


class TcpSender:
    """The sending half of a TCP connection.

    ``tx(size_bytes, payload)`` is supplied by the node layer and routes
    a packet of ``size_bytes`` toward the receiver.  The application
    feeds bytes with :meth:`supply` (or marks the stream unbounded).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tx: Callable[[int, object], None],
        params: Optional[TcpParams] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tx = tx
        self.params = params if params is not None else TcpParams()
        p = self.params

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = p.init_cwnd_segments * p.mss
        self.ssthresh = p.init_ssthresh_segments * p.mss
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0

        #: None = unbounded (bulk); else byte limit supplied by the app.
        self.app_limit: Optional[int] = 0
        self.app_finished = False
        self.on_complete: Optional[Callable[[], None]] = None
        self._complete_fired = False

        # RTT estimation (RFC 6298 style).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = p.initial_rto_us
        self._rto_event = None
        self._send_times: Dict[int, TcpSegment] = {}

        # Counters for tests/diagnostics.
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def set_unbounded(self) -> None:
        """Bulk mode: infinite data."""
        self.app_limit = None
        self._maybe_send()

    def supply(self, nbytes: int) -> None:
        """Make ``nbytes`` more application bytes available to send."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.app_limit is None:
            return
        self.app_limit += nbytes
        self._maybe_send()

    def finish(self) -> None:
        """The app will supply no more data; completion fires when all
        supplied bytes are acked."""
        self.app_finished = True
        self._check_complete()

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _window(self) -> float:
        p = self.params
        return min(self.cwnd, p.rwnd_segments * p.mss)

    def _maybe_send(self) -> None:
        p = self.params
        while True:
            if self.flight_size + p.mss > self._window() + 1e-9:
                return
            if self.app_limit is not None:
                remaining = self.app_limit - self.snd_nxt
                if remaining <= 0:
                    return
                length = min(p.mss, remaining)
            else:
                length = p.mss
            self._send_segment(self.snd_nxt, length, retransmission=False)
            self.snd_nxt += length

    def _send_segment(self, seq: int, length: int, *, retransmission: bool) -> None:
        seg = TcpSegment(seq, length, self.sim.now, retransmitted=retransmission)
        if not retransmission:
            self._send_times[seq] = seg
        else:
            old = self._send_times.get(seq)
            if old is not None:
                old.retransmitted = True
            self.retransmits += 1
        self.segments_sent += 1
        self.tx(length + self.params.header_bytes, seg)
        if self._rto_event is None:
            self._arm_rto()

    # ------------------------------------------------------------------
    # acknowledgements
    # ------------------------------------------------------------------
    def on_ack(self, ack: TcpAck) -> None:
        p = self.params
        if ack.ackno > self.snd_una:
            acked = ack.ackno - self.snd_una
            self._sample_rtt(ack)
            self._drop_send_times(ack.ackno)
            self.snd_una = ack.ackno
            if self.in_recovery:
                if ack.ackno >= self.recover:
                    # Full ack: leave recovery.
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                    self.dupacks = 0
                else:
                    # NewReno partial ack: retransmit next hole, deflate.
                    self._send_segment(
                        self.snd_una,
                        min(p.mss, self.snd_nxt - self.snd_una),
                        retransmission=True,
                    )
                    self.cwnd = max(p.mss, self.cwnd - acked + p.mss)
            else:
                self.dupacks = 0
                if self.cwnd < self.ssthresh:
                    self.cwnd += min(acked, p.mss)  # slow start
                else:
                    self.cwnd += p.mss * p.mss / self.cwnd  # AIMD
            self._restart_rto()
            self._check_complete()
            self._maybe_send()
            return

        # Duplicate ack.
        if self.flight_size == 0:
            return
        self.dupacks += 1
        if self.in_recovery:
            self.cwnd += p.mss  # inflate per extra dupack
            self._maybe_send()
        elif self.dupacks == 3:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        p = self.params
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * p.mss)
        self.recover = self.snd_nxt
        self.in_recovery = True
        self.fast_retransmits += 1
        self.cwnd = self.ssthresh + 3 * p.mss
        self._send_segment(
            self.snd_una,
            min(p.mss, self.snd_nxt - self.snd_una),
            retransmission=True,
        )
        self._restart_rto()

    # ------------------------------------------------------------------
    # RTT / RTO
    # ------------------------------------------------------------------
    def _sample_rtt(self, ack: TcpAck) -> None:
        if ack.ts_echo_us <= 0:
            return
        # Karn's rule: the echoed timestamp comes from a segment the
        # receiver saw; discard samples spanning a retransmitted range.
        seg = None
        for seq, candidate in self._send_times.items():
            if seq < ack.ackno and candidate.ts_us == ack.ts_echo_us:
                seg = candidate
                break
        if seg is not None and seg.retransmitted:
            return
        rtt = self.sim.now - ack.ts_echo_us
        if rtt <= 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        p = self.params
        self.rto = min(
            max(self.srtt + 4.0 * self.rttvar, p.min_rto_us), p.max_rto_us
        )

    def _drop_send_times(self, ackno: int) -> None:
        for seq in [s for s in self._send_times if s < ackno]:
            del self._send_times[seq]

    def _arm_rto(self) -> None:
        self._rto_event = self.sim.schedule(
            self.rto, self._on_rto,
            priority=EventPriority.LOW, category=EventCategory.TRAFFIC,
        )

    def _restart_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self.flight_size > 0:
            self._arm_rto()

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.flight_size == 0:
            return
        p = self.params
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0 * p.mss)
        self.cwnd = float(p.mss)
        self.dupacks = 0
        self.in_recovery = False
        self.rto = min(self.rto * 2.0, p.max_rto_us)
        self._send_segment(
            self.snd_una,
            min(p.mss, self.snd_nxt - self.snd_una),
            retransmission=True,
        )
        self._arm_rto()

    # ------------------------------------------------------------------
    def _check_complete(self) -> None:
        if (
            not self._complete_fired
            and self.app_finished
            and self.app_limit is not None
            and self.snd_una >= self.app_limit
            and self.on_complete is not None
        ):
            self._complete_fired = True
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            self.on_complete()


class TcpReceiver:
    """The receiving half: cumulative + delayed ACKs, reorder buffer."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tx_ack: Callable[[int, object], None],
        params: Optional[TcpParams] = None,
        stats: Optional[FlowStats] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.tx_ack = tx_ack
        self.params = params if params is not None else TcpParams()
        self.stats = stats

        self.rcv_nxt = 0
        self._ooo: Dict[int, int] = {}  # seq -> length
        self._pending_acks = 0
        self._delack_event = None
        self._last_ts = 0.0

        self.acks_sent = 0
        self.duplicates = 0

    def on_segment(self, seg: TcpSegment) -> None:
        if seg.seq == self.rcv_nxt:
            self.rcv_nxt += seg.length
            delivered = seg.length
            self._last_ts = seg.ts_us
            if self.stats is not None and not seg.retransmitted:
                self.stats.on_delay(max(0.0, self.sim.now - seg.ts_us))
            # Absorb any buffered continuation.
            while self.rcv_nxt in self._ooo:
                length = self._ooo.pop(self.rcv_nxt)
                self.rcv_nxt += length
                delivered += length
            if self.stats is not None:
                self.stats.on_deliver(delivered)
            self._pending_acks += 1
            if self._pending_acks >= self.params.delack_segments or self._ooo:
                self._send_ack()
            else:
                self._arm_delack()
        elif seg.seq > self.rcv_nxt:
            self._ooo.setdefault(seg.seq, seg.length)
            self._send_ack()  # duplicate ack advertising the hole
        else:
            self.duplicates += 1
            self._send_ack()

    def _arm_delack(self) -> None:
        if self._delack_event is None:
            self._delack_event = self.sim.schedule(
                self.params.delack_timeout_us,
                self._delack_fire,
                priority=EventPriority.LOW,
                category=EventCategory.TRAFFIC,
            )

    def _delack_fire(self) -> None:
        self._delack_event = None
        if self._pending_acks > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self._pending_acks = 0
        self.acks_sent += 1
        ack = TcpAck(self.rcv_nxt, self._last_ts)
        self.tx_ack(self.params.ack_bytes, ack)
