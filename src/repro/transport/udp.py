"""UDP: constant-bit-rate and saturating senders, and a counting sink.

The paper uses saturating unicast UDP for Figure 4 (three nodes at
11 Mbps) and for the EXP-1 rate-adaptation experiment (a wired sender
blasting four receivers).  A CBR source with a rate above channel
capacity saturates the AP queue the same way the paper's generator did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim import EventPriority, Simulator
from repro.transport.stats import FlowStats


@dataclass
class UdpDatagram:
    """Payload rider for UDP packets."""

    seq: int
    ts_us: float


class UdpSender:
    """Paced constant-bit-rate UDP source.

    ``rate_mbps`` is the *network-layer* rate (packet size includes the
    28-byte UDP/IP header by convention of ``payload_bytes``).  Set the
    rate above the channel capacity to model a saturating source.
    """

    HEADER_BYTES = 28

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tx: Callable[[int, object], None],
        rate_mbps: float,
        payload_bytes: int = 1472,
        *,
        start_us: float = 0.0,
        stop_us: Optional[float] = None,
        jitter_fraction: float = 0.05,
    ) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.tx = tx
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.packet_bytes = payload_bytes + self.HEADER_BYTES
        self.stop_us = stop_us
        self.sent = 0
        self._seq = 0
        self.interval_us = self.packet_bytes * 8.0 / rate_mbps
        # Real CBR sources are not phase-locked to each other; a little
        # inter-packet jitter prevents artificial drop synchronization
        # at shared queues (the long-term rate is unchanged).
        self.jitter_fraction = jitter_fraction
        self._rng = sim.rng(f"udp/{name}")
        self._timer = sim.schedule(
            start_us + self._rng.uniform(0.0, self.interval_us),
            self._fire,
            priority=EventPriority.NORMAL,
        )

    def _next_interval(self) -> float:
        if self.jitter_fraction <= 0.0:
            return self.interval_us
        spread = self.interval_us * self.jitter_fraction
        return self.interval_us + self._rng.uniform(-spread, spread)

    def _fire(self) -> None:
        sim = self.sim
        now = sim.now
        if self.stop_us is not None and now >= self.stop_us:
            self._timer = None
            return
        seq = self._seq + 1
        self._seq = seq
        self.sent += 1
        self.tx(self.packet_bytes, UdpDatagram(seq, now))
        # Recycle the just-fired timer event instead of allocating anew.
        self._timer = sim.reschedule(
            self._timer, self._next_interval(), self._fire,
            priority=EventPriority.NORMAL,
        )

    def stop(self) -> None:
        self.stop_us = self.sim.now
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class UdpSink:
    """Counts delivered datagrams into a :class:`FlowStats`."""

    def __init__(self, stats: Optional[FlowStats] = None) -> None:
        self.stats = stats
        self.received = 0
        self.last_seq = 0
        self.reordered = 0

    def on_datagram(self, datagram: UdpDatagram, size_bytes: int) -> None:
        self.received += 1
        if datagram.seq < self.last_seq:
            self.reordered += 1
        self.last_seq = max(self.last_seq, datagram.seq)
        if self.stats is not None:
            self.stats.on_deliver(size_bytes)
            self.stats.on_delay(self.stats.sim.now - datagram.ts_us)
