"""UDP: constant-bit-rate and saturating senders, and a counting sink.

The paper uses saturating unicast UDP for Figure 4 (three nodes at
11 Mbps) and for the EXP-1 rate-adaptation experiment (a wired sender
blasting four receivers).  A CBR source with a rate above channel
capacity saturates the AP queue the same way the paper's generator did.

Two source flavours share the same pacing model (fixed interval plus a
small uniform jitter, same RNG stream layout):

* :class:`UdpSender` — the classic timer-driven source: one kernel
  event per packet *plus* whatever the transmit path costs.  Used for
  uplink flows, where the packet goes straight into the station's MAC
  queue.
* :class:`UdpDownlinkSource` — the demand-driven source for wired
  downlink flows.  It never schedules its own timer: it registers its
  arrival schedule with the :class:`~repro.transport.wired.WiredLink`
  pump, which charges exactly one kernel event per offered packet (the
  delivery) and asks the source to materialize a packet only when the
  AP queue has room (drop-before-alloc, pooled packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.sim import EventCategory, EventPriority, Simulator
from repro.transport.packet import Packet
from repro.transport.stats import FlowStats


@dataclass
class UdpDatagram:
    """Payload rider for UDP packets."""

    seq: int
    ts_us: float


class UdpSender:
    """Paced constant-bit-rate UDP source (timer-driven).

    ``rate_mbps`` is the *network-layer* rate (packet size includes the
    28-byte UDP/IP header by convention of ``payload_bytes``).  Set the
    rate above the channel capacity to model a saturating source.
    """

    HEADER_BYTES = 28

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tx: Callable[[int, object], None],
        rate_mbps: float,
        payload_bytes: int = 1472,
        *,
        start_us: float = 0.0,
        stop_us: Optional[float] = None,
        jitter_fraction: float = 0.05,
    ) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.tx = tx
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.packet_bytes = payload_bytes + self.HEADER_BYTES
        self.stop_us = stop_us
        self.sent = 0
        self._seq = 0
        self.interval_us = self.packet_bytes * 8.0 / rate_mbps
        # Real CBR sources are not phase-locked to each other; a little
        # inter-packet jitter prevents artificial drop synchronization
        # at shared queues (the long-term rate is unchanged).
        self.jitter_fraction = jitter_fraction
        self._rng = sim.rng(f"udp/{name}")
        self._timer = sim.schedule(
            start_us + self._rng.uniform(0.0, self.interval_us),
            self._fire,
            priority=EventPriority.NORMAL,
            category=EventCategory.TRAFFIC,
        )

    def _next_interval(self) -> float:
        if self.jitter_fraction <= 0.0:
            return self.interval_us
        spread = self.interval_us * self.jitter_fraction
        return self.interval_us + self._rng.uniform(-spread, spread)

    def _fire(self) -> None:
        sim = self.sim
        now = sim.now
        if self.stop_us is not None and now >= self.stop_us:
            self._timer = None
            return
        seq = self._seq + 1
        self._seq = seq
        self.sent += 1
        self.tx(self.packet_bytes, UdpDatagram(seq, now))
        # The tx callback may have called stop() on us (a sink reacting
        # to this very datagram).  Re-check before re-arming: stop()
        # already cleared self._timer, and blindly rescheduling here
        # would leave a live ghost timer nobody can cancel.
        if self.stop_us is not None and now >= self.stop_us:
            self._timer = None
            return
        # Recycle the just-fired timer event instead of allocating anew.
        self._timer = sim.reschedule(
            self._timer, self._next_interval(), self._fire,
            priority=EventPriority.NORMAL,
            category=EventCategory.TRAFFIC,
        )

    def stop(self) -> None:
        self.stop_us = self.sim.now
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def fast_forward(self, delta_us: float) -> None:
        """Shift the stop deadline after a kernel jump (the pacing timer
        itself lives in the heap and moves with it)."""
        if self.stop_us is not None:
            self.stop_us += delta_us


class UdpDownlinkSource:
    """Demand-driven CBR source feeding an AP's downlink wire.

    The pacing model (interval, jitter, RNG stream ``udp/{name}``,
    initial phase draw) is identical to :class:`UdpSender`, so the two
    produce bit-identical fire schedules for the same seed and name.
    The difference is mechanical: instead of waking per packet, the
    source hands its schedule to the wire's demand pump
    (:meth:`WiredLink.attach_source`) and is called back

    * :meth:`advance`/:meth:`rewind` — when the pump folds (or unwinds
      a speculatively-folded) arrival into the pipe's serialization;
    * :meth:`deliver` — when the arrival exits the pipe, where the AP's
      queue decides *before any allocation* whether the packet exists
      at all (tail drops cost nothing), and accepted packets come from
      the AP's :class:`~repro.transport.packet.PacketPool`.
    """

    HEADER_BYTES = UdpSender.HEADER_BYTES

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ap,
        station: str,
        rate_mbps: float,
        payload_bytes: int = 1472,
        *,
        on_receive: Optional[Callable[[Packet], None]] = None,
        start_us: float = 0.0,
        stop_us: Optional[float] = None,
        jitter_fraction: float = 0.05,
    ) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload must be positive")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.name = name
        self.ap = ap
        self.station = station
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.packet_bytes = payload_bytes + self.HEADER_BYTES
        self.stop_us = stop_us
        self.on_receive = on_receive
        #: arrivals committed to the pipe.  Tracks UdpSender.sent, but
        #: may run one packet ahead of the clock: the pump folds the
        #: next arrival speculatively (and rolls `sent` back if that
        #: fold is unwound).
        self.sent = 0
        self._seq = 0
        self.interval_us = self.packet_bytes * 8.0 / rate_mbps
        self.jitter_fraction = jitter_fraction
        self._rng = sim.rng(f"udp/{name}")
        #: current (earliest unfolded) fire time.  Same float expression
        #: as UdpSender's initial schedule(start + draw): now + (s + d).
        self._fire_us: float = sim.now + (
            start_us + self._rng.uniform(0.0, self.interval_us)
        )
        #: fire times given back by rewind(), to be re-consumed before
        #: drawing fresh jitter (keeps the RNG stream deterministic).
        self._rewound: List[float] = []
        #: staged delivery context for :meth:`_materialize`.
        self._staged_seq = 0
        self._staged_ts = 0.0
        self.link = ap.downlink_wire
        self.link.attach_source(self)

    def _next_interval(self) -> float:
        if self.jitter_fraction <= 0.0:
            return self.interval_us
        spread = self.interval_us * self.jitter_fraction
        return self.interval_us + self._rng.uniform(-spread, spread)

    # ------------------------------------------------------------------
    # DemandSource protocol (called by the wire's pump)
    # ------------------------------------------------------------------
    def peek_fire_us(self) -> Optional[float]:
        fire = self._fire_us
        if self.stop_us is not None and fire >= self.stop_us:
            return None
        return fire

    def advance(self) -> int:
        seq = self._seq + 1
        self._seq = seq
        self.sent += 1
        if self._rewound:
            self._fire_us = self._rewound.pop()
        else:
            self._fire_us = self._fire_us + self._next_interval()
        return seq

    def rewind(self, seq: int, fire_us: float) -> None:
        self._rewound.append(self._fire_us)
        self._fire_us = fire_us
        self._seq -= 1
        self.sent -= 1

    def deliver(self, seq: int, fire_us: float) -> None:
        self._staged_seq = seq
        self._staged_ts = fire_us
        self.ap.downlink_arrival(self.station, self._materialize)

    # ------------------------------------------------------------------
    def _materialize(self) -> Packet:
        """Build (or recycle) the admitted packet.  Every field is
        overwritten, so pooled reuse cannot leak state across flows."""
        seq = self._staged_seq
        ts = self._staged_ts
        pool = self.ap.packet_pool
        packet = pool.get()
        if packet is None:
            packet = Packet(
                self.packet_bytes,
                self.station,
                to_station=True,
                payload=UdpDatagram(seq, ts),
                on_receive=self.on_receive,
                created_us=ts,
            )
        else:
            packet.size_bytes = self.packet_bytes
            packet.station = self.station
            packet.to_station = True
            packet.on_receive = self.on_receive
            packet.created_us = ts
            payload = packet.payload
            if type(payload) is UdpDatagram:
                payload.seq = seq
                payload.ts_us = ts
            else:
                packet.payload = UdpDatagram(seq, ts)
        packet._pool = pool
        return packet

    def stop(self) -> None:
        """Cancel all arrivals from the current time on (deterministic:
        an arrival whose fire time equals the stop time never fires,
        regardless of event ordering)."""
        now = self.sim.now
        if self.stop_us is None or self.stop_us > now:
            self.stop_us = now
        self.link.source_stopped(self)

    def fast_forward(self, delta_us: float) -> None:
        """Shift the arrival schedule after a kernel jump.

        Called by the owning wire's ``fast_forward`` (the wire shifts
        its ``_arrivals`` heap by the same amount, so ``peek_fire_us``
        stays consistent with the heap entries).
        """
        self._fire_us += delta_us
        if self._rewound:
            self._rewound = [fire + delta_us for fire in self._rewound]
        self._staged_ts += delta_us
        if self.stop_us is not None:
            self.stop_us += delta_us


class UdpSink:
    """Counts delivered datagrams into a :class:`FlowStats`."""

    def __init__(self, stats: Optional[FlowStats] = None) -> None:
        self.stats = stats
        self.received = 0
        self.last_seq = 0
        self.reordered = 0

    def on_datagram(self, datagram: UdpDatagram, size_bytes: int) -> None:
        self.received += 1
        if datagram.seq < self.last_seq:
            self.reordered += 1
        self.last_seq = max(self.last_seq, datagram.seq)
        if self.stats is not None:
            self.stats.on_deliver(size_bytes)
            self.stats.on_delay(self.stats.sim.now - datagram.ts_us)
