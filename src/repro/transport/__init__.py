"""Transport substrate: packets, wired links, TCP Reno, UDP and apps.

The paper's experiments are TCP file transfers between wireless
stations and wired hosts behind the AP (plus saturating UDP for Figure
4 and EXP-1).  The essential dynamics — TCP ack clocking through the
shared AP queue, congestion control reacting to AP queue drops, paced
application-limited senders — are reproduced by a compact TCP Reno
implementation and simple link/app models.
"""

from repro.transport.packet import Packet, PacketPool
from repro.transport.wired import WiredLink
from repro.transport.stats import FlowStats
from repro.transport.tcp import TcpParams, TcpSender, TcpReceiver
from repro.transport.udp import UdpDatagram, UdpDownlinkSource, UdpSender, UdpSink
from repro.transport.apps import BulkApp, TaskApp, PacedApp

__all__ = [
    "Packet",
    "PacketPool",
    "WiredLink",
    "FlowStats",
    "TcpParams",
    "TcpSender",
    "TcpReceiver",
    "UdpDatagram",
    "UdpDownlinkSource",
    "UdpSender",
    "UdpSink",
    "BulkApp",
    "TaskApp",
    "PacedApp",
]
