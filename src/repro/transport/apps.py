"""Application models driving TCP senders.

* :class:`BulkApp` — an unbounded file transfer (the paper's fluid
  model: an infinite stream of bits);
* :class:`TaskApp` — a fixed-size transfer (the paper's task model;
  completion times feed AvgTaskTime / FinalTaskTime);
* :class:`PacedApp` — an application-limited source (Table 4's node
  whose sending rate is capped at 2.1 Mbps upstream of TCP).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import PeriodicTimer, Simulator
from repro.transport.tcp import TcpSender


class BulkApp:
    """Infinite backlog: the sender transmits whenever TCP allows."""

    def __init__(self, sender: TcpSender) -> None:
        self.sender = sender
        sender.set_unbounded()


class TaskApp:
    """Transfer exactly ``task_bytes`` and record the completion time."""

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        task_bytes: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        if task_bytes <= 0:
            raise ValueError("task_bytes must be positive")
        self.sim = sim
        self.sender = sender
        self.task_bytes = task_bytes
        self.completed_us: Optional[float] = None
        self._user_callback = on_complete
        sender.on_complete = self._on_complete
        sender.supply(task_bytes)
        sender.finish()

    def _on_complete(self) -> None:
        self.completed_us = self.sim.now
        if self._user_callback is not None:
            self._user_callback()

    @property
    def completed(self) -> bool:
        return self.completed_us is not None


class PacedApp:
    """Feeds the sender ``rate_mbps`` of data in periodic chunks.

    TCP may momentarily send faster (draining accumulated credit) but
    the long-term rate is capped — modelling an application or upstream
    bottleneck slower than the wireless link.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: TcpSender,
        rate_mbps: float,
        *,
        chunk_interval_us: float = 10_000.0,
    ) -> None:
        if rate_mbps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.sender = sender
        self.rate_mbps = rate_mbps
        self._carry = 0.0
        self._timer = PeriodicTimer(sim, chunk_interval_us, self._tick)
        self._timer.start()

    def _tick(self, elapsed_us: float) -> None:
        exact = self.rate_mbps * elapsed_us / 8.0 + self._carry
        nbytes = int(exact)
        self._carry = exact - nbytes
        if nbytes > 0:
            self.sender.supply(nbytes)

    def stop(self) -> None:
        self._timer.stop()
