"""Per-flow delivery statistics."""

from __future__ import annotations

import math
from typing import List, Optional

from repro.sim import Simulator, throughput_mbps


class FlowStats:
    """Receiver-side goodput, latency and task-completion bookkeeping."""

    def __init__(self, sim: Simulator, name: str = "flow") -> None:
        self.sim = sim
        self.name = name
        self.bytes_delivered = 0
        self.segments_delivered = 0
        self.first_delivery_us: Optional[float] = None
        self.last_delivery_us: Optional[float] = None
        self.completed_us: Optional[float] = None
        self.delays_us: List[float] = []
        self._origin = sim.now
        self._mark_bytes = 0
        self._mark_time = sim.now

    def on_deliver(self, nbytes: int) -> None:
        now = self.sim.now
        if self.first_delivery_us is None:
            self.first_delivery_us = now
        self.last_delivery_us = now
        self.bytes_delivered += nbytes
        self.segments_delivered += 1

    def on_delay(self, delay_us: float) -> None:
        """Record one end-to-end packet delay sample."""
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        self.delays_us.append(delay_us)

    def mean_delay_us(self) -> float:
        if not self.delays_us:
            return 0.0
        return sum(self.delays_us) / len(self.delays_us)

    def delay_percentile_us(self, percentile: float) -> float:
        """Empirical delay percentile (e.g. 50, 95, 99)."""
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.delays_us:
            return 0.0
        ordered = sorted(self.delays_us)
        rank = percentile / 100.0 * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def mark_complete(self) -> None:
        """Record task completion (TaskApp done and fully acked)."""
        if self.completed_us is None:
            self.completed_us = self.sim.now

    @property
    def completed(self) -> bool:
        return self.completed_us is not None

    def completion_time_us(self) -> Optional[float]:
        if self.completed_us is None:
            return None
        return self.completed_us - self._origin

    def throughput_mbps(self, elapsed_us: Optional[float] = None) -> float:
        """Average goodput since construction (or over ``elapsed_us``)."""
        if elapsed_us is None:
            elapsed_us = self.sim.now - self._origin
        return throughput_mbps(self.bytes_delivered, elapsed_us)

    def reset(self) -> None:
        """Zero all accumulators (end of warm-up)."""
        self.bytes_delivered = 0
        self.segments_delivered = 0
        self.first_delivery_us = None
        self.last_delivery_us = None
        self.delays_us.clear()
        self._origin = self.sim.now
        self._mark_bytes = 0
        self._mark_time = self.sim.now

    def mark(self) -> None:
        """Start an interval measurement window."""
        self._mark_bytes = self.bytes_delivered
        self._mark_time = self.sim.now

    def interval_throughput_mbps(self) -> float:
        """Goodput since the last :meth:`mark`."""
        return throughput_mbps(
            self.bytes_delivered - self._mark_bytes, self.sim.now - self._mark_time
        )
