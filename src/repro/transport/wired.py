"""Wired links between the AP and backbone hosts.

A :class:`WiredLink` is a unidirectional pipe with a fixed propagation
delay and an optional serialization rate (for modelling a bottleneck
slower than the WLAN, e.g. Table 4's 2.1 Mbps constrained path).
Delivery order is FIFO.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim import Simulator


class WiredLink:
    """One-way wired pipe: serialize (optional) then propagate."""

    def __init__(
        self,
        sim: Simulator,
        delay_us: float = 1000.0,
        rate_mbps: float = 0.0,
    ) -> None:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        if rate_mbps < 0:
            raise ValueError("rate must be non-negative (0 = infinite)")
        self.sim = sim
        self.delay_us = delay_us
        self.rate_mbps = rate_mbps
        self._busy_until = 0.0
        self.delivered = 0

    def send(self, packet: Any, deliver: Callable[[Any], None]) -> None:
        """Queue ``packet``; ``deliver(packet)`` fires after the pipe."""
        sim = self.sim
        now = sim.now
        rate = self.rate_mbps
        if rate > 0:
            start = self._busy_until
            if now > start:
                start = now
            ready = start + packet.size_bytes * 8.0 / rate
            self._busy_until = ready
        else:
            ready = now
        # Fire-and-forget: nobody keeps (or cancels) delivery events, so
        # let the kernel recycle the event objects.
        sim.schedule_transient(
            ready - now + self.delay_us, self._deliver, packet, deliver
        )

    def _deliver(self, packet: Any, deliver: Callable[[Any], None]) -> None:
        self.delivered += 1
        deliver(packet)
