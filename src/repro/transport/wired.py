"""Wired links between the AP and backbone hosts.

A :class:`WiredLink` is a unidirectional pipe with a fixed propagation
delay and an optional serialization rate (for modelling a bottleneck
slower than the WLAN, e.g. Table 4's 2.1 Mbps constrained path).
Delivery order is FIFO.

Demand-driven mode
------------------

Constant-bit-rate sources used to cost *two* kernel events per offered
packet: the source timer that created the packet, and the transient
event that delivered it out of the pipe.  A :class:`DemandSource`
(e.g. ``repro.transport.udp.UdpDownlinkSource``) instead registers its
*future arrival schedule* with the link, and the link *folds* each
arrival into the serialization state when a delivery (or a competing
plain ``send``) proves it is next in fire-time order — so each offered
packet costs exactly one kernel event: its delivery.

Exactness: the serialization fold ``busy = max(busy, t_fire) + bits/rate``
is order-sensitive, so folds must happen in fire-time order across all
senders sharing the pipe.  Each demand source exposes exactly its
earliest unfolded fire time; the link keeps a FIFO of folded-but-
undelivered arrivals in which at most the *tail* is speculative (folded
ahead of simulation time).  An interleaving plain :meth:`send`, a
source stopping, or a new source attaching with an earlier first fire
*unwinds* that speculative tail — restoring ``_busy_until`` and the
source's counters — then refolds in the correct order.  Delivery
timestamps are computed with the same float expression the two-event
path used, so they match bit for bit.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, List, Optional, Protocol, Tuple

from repro.sim import EventCategory, Simulator


class DemandSource(Protocol):
    """What the link's demand path needs from a packet source."""

    #: fixed on-the-wire packet size.
    packet_bytes: int

    def peek_fire_us(self) -> Optional[float]:
        """Earliest unfolded fire time, or ``None`` when exhausted."""

    def advance(self) -> int:
        """Consume the current arrival; returns its sequence number.

        Advancing moves the source to its next fire time (drawing any
        jitter), increments its sent counters, and must be undoable by
        exactly one :meth:`rewind`.
        """

    def rewind(self, seq: int, fire_us: float) -> None:
        """Undo the latest :meth:`advance` (speculative fold unwound)."""

    def deliver(self, seq: int, fire_us: float) -> None:
        """The arrival transited the pipe; hand it to the consumer."""


class _Folded:
    """One folded-but-undelivered demand arrival."""

    __slots__ = ("source", "index", "fire_us", "seq", "busy_before", "event")

    def __init__(
        self,
        source: DemandSource,
        index: int,
        fire_us: float,
        seq: int,
        busy_before: float,
        event,
    ) -> None:
        self.source = source
        self.index = index
        self.fire_us = fire_us
        self.seq = seq
        self.busy_before = busy_before
        self.event = event


class WiredLink:
    """One-way wired pipe: serialize (optional) then propagate."""

    def __init__(
        self,
        sim: Simulator,
        delay_us: float = 1000.0,
        rate_mbps: float = 0.0,
    ) -> None:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        if rate_mbps < 0:
            raise ValueError("rate must be non-negative (0 = infinite)")
        self.sim = sim
        self.delay_us = delay_us
        self.rate_mbps = rate_mbps
        self._busy_until = 0.0
        self.delivered = 0
        # Demand-driven state: registered sources, a heap of
        # (fire_us, registration_index) holding at most one live entry
        # per source, and the FIFO of folded-but-undelivered arrivals
        # (at most the tail folded ahead of simulation time).
        self._sources: List[DemandSource] = []
        self._arrivals: List[Tuple[float, int]] = []
        self._folded: Deque[_Folded] = deque()

    # ------------------------------------------------------------------
    # plain (event-per-hop) path
    # ------------------------------------------------------------------
    def send(self, packet: Any, deliver: Callable[[Any], None]) -> None:
        """Queue ``packet``; ``deliver(packet)`` fires after the pipe."""
        sim = self.sim
        now = sim.now
        folded = self._folded
        if folded:
            # This send serializes at `now`; every demand arrival firing
            # up to now must fold first, and a speculative fold firing
            # *after* now must fold later — unwind it, fold the overdue
            # arrivals, serialize us, then refold below.
            if folded[-1].fire_us > now:
                self._unwind_tail()
            self._fold_due(now)
        rate = self.rate_mbps
        if rate > 0:
            start = self._busy_until
            if now > start:
                start = now
            ready = start + packet.size_bytes * 8.0 / rate
            self._busy_until = ready
        else:
            ready = now
        # Fire-and-forget: nobody keeps (or cancels) delivery events, so
        # let the kernel recycle the event objects.
        sim.schedule_transient(
            ready - now + self.delay_us, self._deliver, packet, deliver,
            category=EventCategory.TRAFFIC,
        )
        if not self._folded and self._arrivals:
            self._fold_next()

    def _deliver(self, packet: Any, deliver: Callable[[Any], None]) -> None:
        self.delivered += 1
        deliver(packet)

    def reset(self) -> None:
        """Forget serialization backlog and counters (pipe reuse).

        A link's ``_busy_until`` is monotone: reusing a link object for
        a new logical epoch (a fresh measurement phase, a rebuilt
        topology) without resetting it delays the first packets of the
        new epoch behind ghost traffic from the previous one.  Pending
        demand-driven folds are rolled back too (newest first, so the
        serialization state rewinds consistently), then refolded against
        the cleared pipe.
        """
        while self._folded:
            self._unwind_tail()
        # "Fresh" means idle-from-now, not idle-since-t0: an attached
        # demand source may have an overdue fire time (backlog built in
        # the old epoch), and refolding it against a pipe idle in the
        # past would place its delivery before the clock.  For plain
        # sends the two are indistinguishable (send starts at
        # max(busy, now) anyway).
        self._busy_until = self.sim.now
        self.delivered = 0
        if self._arrivals:
            self._fold_next()

    # ------------------------------------------------------------------
    # demand-driven (event-per-packet) path
    # ------------------------------------------------------------------
    def attach_source(self, source: DemandSource) -> None:
        """Register a demand-driven source; delivery starts immediately."""
        index = len(self._sources)
        self._sources.append(source)
        fire = source.peek_fire_us()
        if fire is None:
            return
        folded = self._folded
        if folded and folded[-1].fire_us > fire:
            # The newcomer fires before the speculative fold: redo it in
            # the right order (non-tail folds all fire at or before now,
            # hence before the newcomer, and stay put).
            self._unwind_tail()
        heappush(self._arrivals, (fire, index))
        if not self._folded:
            self._fold_next()

    def source_stopped(self, source: DemandSource) -> None:
        """A source's future arrivals were cancelled (``stop()``).

        Its stale heap entry is discarded lazily (``peek_fire_us`` now
        disowns it); only a speculative fold that the two-event path
        would never have sent — fire time at or after the stop — needs
        active rollback.  Already-fired folds still deliver, exactly
        like packets already in the pipe.
        """
        folded = self._folded
        if (
            folded
            and folded[-1].source is source
            and folded[-1].fire_us >= self.sim.now
        ):
            self._unwind_tail()
            if not self._folded:
                self._fold_next()

    def pump_pending(self) -> int:
        """Folded-but-undelivered demand arrivals (introspection)."""
        return len(self._folded)

    def _fold_due(self, now: float) -> None:
        """Fold every arrival with fire time at or before ``now``.

        Under serialization backlog the fold frontier can lag the clock
        (folds are paced by deliveries); a plain send must not overtake
        those overdue arrivals.
        """
        arrivals = self._arrivals
        sources = self._sources
        while arrivals and arrivals[0][0] <= now:
            fire, index = arrivals[0]
            if sources[index].peek_fire_us() != fire:
                heappop(arrivals)  # orphaned by stop()/rewind
                continue
            self._fold_next()

    def _fold_next(self) -> None:
        """Fold the earliest live arrival; schedule its delivery event."""
        arrivals = self._arrivals
        sources = self._sources
        while arrivals:
            fire, index = arrivals[0]
            source = sources[index]
            if source.peek_fire_us() != fire:
                heappop(arrivals)  # orphaned by stop()/rewind
                continue
            heappop(arrivals)
            busy_before = self._busy_until
            rate = self.rate_mbps
            if rate > 0:
                start = busy_before
                if fire > start:
                    start = fire
                ready = start + source.packet_bytes * 8.0 / rate
                self._busy_until = ready
            else:
                ready = fire
            seq = source.advance()
            next_fire = source.peek_fire_us()
            if next_fire is not None:
                heappush(arrivals, (next_fire, index))
            record = _Folded(source, index, fire, seq, busy_before, None)
            # Same float expression the two-event path evaluates at the
            # source-timer event (where now == fire), so the delivery
            # timestamp is bit-identical: now' + (ready - now' + delay).
            deliver_at = fire + (ready - fire + self.delay_us)
            now = self.sim.now
            if deliver_at < now:
                # Unreachable in normal operation (folds are paced so
                # deliveries stay ahead of the clock); reset() can
                # rebase an overdue arrival onto the fresh pipe, whose
                # delivery then lands immediately rather than in the
                # past.
                deliver_at = now
            record.event = self.sim.schedule_transient_at(
                deliver_at,
                self._pump_deliver,
                category=EventCategory.TRAFFIC,
            )
            self._folded.append(record)
            return

    def _pump_deliver(self) -> None:
        record = self._folded.popleft()
        self.delivered += 1
        record.source.deliver(record.seq, record.fire_us)
        # Keep at most one speculative fold: folding here while the new
        # tail still fires in the future would stack a second arrival
        # ahead of time, which a plain send could no longer unwind.
        folded = self._folded
        if not folded or folded[-1].fire_us <= self.sim.now:
            self._fold_next()

    def fast_forward(self, delta_us: float) -> None:
        """Shift the pipe's serialization clock after a kernel jump.

        ``_busy_until``, the unfolded arrival schedule, the folded-but-
        undelivered records and every attached demand source move by the
        same ``delta_us`` the heap moved, so the fold/unwind invariants
        (fire-time order, ``busy_before`` restoration, ``peek_fire_us``
        consistency with ``_arrivals``) are preserved verbatim.  The
        uniform shift keeps the arrivals heap ordered — no re-heapify.
        """
        self._busy_until += delta_us
        self._arrivals[:] = [
            (fire + delta_us, index) for fire, index in self._arrivals
        ]
        for record in self._folded:
            record.fire_us += delta_us
            record.busy_before += delta_us
        for source in self._sources:
            ff = getattr(source, "fast_forward", None)
            if ff is not None:
                ff(delta_us)

    def _unwind_tail(self) -> None:
        """Roll back the speculative fold (see module docstring)."""
        record = self._folded.pop()
        record.event.cancel()
        self._busy_until = record.busy_before
        record.source.rewind(record.seq, record.fire_us)
        if record.source.peek_fire_us() == record.fire_us:
            heappush(self._arrivals, (record.fire_us, record.index))
