"""The network-layer packet that rides inside MAC data frames."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


class Packet:
    """An IP-datagram-sized unit handed to MACs, queues and links.

    Attributes:
        size_bytes: total network-layer size (payload + IP/TCP headers).
        station: address of the wireless station this packet belongs to
            (uplink source or downlink destination) — AP queues key on
            it and TBR charges its tokens.
        mac_dst: MAC destination, set by the node layer before handing
            the packet to a MAC ("ap" for uplink, the station address
            for downlink).
        on_receive: delivery callback installed by the destination
            transport endpoint; node layers simply call it.
        to_station: True when the packet flows toward the wireless
            station (downlink over the air).
        payload: opaque transport payload (TCP segment / UDP datagram).
        created_us: creation timestamp (for delay metrics).
    """

    __slots__ = (
        "size_bytes",
        "station",
        "mac_dst",
        "on_receive",
        "to_station",
        "payload",
        "created_us",
        "uid",
        "_pool",
    )

    _uid_counter = itertools.count(1)

    def __init__(
        self,
        size_bytes: int,
        station: str,
        *,
        to_station: bool,
        payload: Any = None,
        on_receive: Optional[Callable[["Packet"], None]] = None,
        created_us: float = 0.0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes!r}")
        self.size_bytes = size_bytes
        self.station = station
        self.mac_dst: Optional[str] = None
        self.on_receive = on_receive
        self.to_station = to_station
        self.payload = payload
        self.created_us = created_us
        self.uid = next(Packet._uid_counter)
        #: owning PacketPool for recycled packets (None = plain packet).
        self._pool: Optional["PacketPool"] = None

    def deliver(self) -> None:
        """Invoke the destination endpoint's callback."""
        if self.on_receive is not None:
            self.on_receive(self)

    def release(self) -> None:
        """Return a pooled packet to its freelist; no-op otherwise.

        Called by the MAC after the exchange's completion listeners have
        run — the last point in a packet's life where anything in the
        simulator may still read it.  Callers that retain completion
        reports must copy the fields they need.
        """
        pool = self._pool
        if pool is not None:
            # Disown first so a double release (or a stale reference)
            # cannot insert the same packet into the freelist twice.
            self._pool = None
            pool.put(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        direction = "down" if self.to_station else "up"
        return f"<Packet #{self.uid} {self.size_bytes}B sta={self.station} {direction}>"


def try_release(packet: Any) -> None:
    """Return ``packet`` to its pool when it supports ``release()``.

    Queues, schedulers and MACs are duck-typed: tests feed them minimal
    packet stand-ins without a freelist, so teardown paths release
    through this helper instead of assuming the attribute exists.
    """
    release = getattr(packet, "release", None)
    if release is not None:
        release()


class PacketPool:
    """A bounded freelist of spent :class:`Packet` objects.

    Saturated downlink scenarios used to allocate a fresh packet (plus
    its transport payload) for every offered datagram even though most
    were immediately tail-dropped.  With drop-before-alloc the dropped
    ones never exist, and the ones that do get *consumed* — delivered or
    abandoned by the MAC — come back here instead of to the allocator.

    The pool is dumb on purpose: it stores whole packets, payload object
    still attached, and leaves re-initialization to the acquiring
    source (which overwrites every field, so no state can leak between
    flows — see ``get``'s contract).
    """

    __slots__ = ("max_size", "_free", "allocated", "reused", "recycled")

    def __init__(self, max_size: int = 256) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = max_size
        self._free: list = []
        #: packets handed out that required a fresh allocation.
        self.allocated = 0
        #: packets handed out from the freelist.
        self.reused = 0
        #: packets returned (caps at max_size retained).
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def get(self) -> Optional[Packet]:
        """Pop a spent packet, or ``None`` when the freelist is empty.

        The caller MUST overwrite ``size_bytes``, ``station``,
        ``mac_dst``, ``on_receive``, ``to_station``, ``payload`` and
        ``created_us`` before handing the packet to anyone — the pool
        does not scrub fields.
        """
        if self._free:
            self.reused += 1
            return self._free.pop()
        self.allocated += 1
        return None

    def put(self, packet: Packet) -> None:
        """Return a consumed packet to the freelist."""
        self.recycled += 1
        if len(self._free) < self.max_size:
            self._free.append(packet)
