"""The network-layer packet that rides inside MAC data frames."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


class Packet:
    """An IP-datagram-sized unit handed to MACs, queues and links.

    Attributes:
        size_bytes: total network-layer size (payload + IP/TCP headers).
        station: address of the wireless station this packet belongs to
            (uplink source or downlink destination) — AP queues key on
            it and TBR charges its tokens.
        mac_dst: MAC destination, set by the node layer before handing
            the packet to a MAC ("ap" for uplink, the station address
            for downlink).
        on_receive: delivery callback installed by the destination
            transport endpoint; node layers simply call it.
        to_station: True when the packet flows toward the wireless
            station (downlink over the air).
        payload: opaque transport payload (TCP segment / UDP datagram).
        created_us: creation timestamp (for delay metrics).
    """

    __slots__ = (
        "size_bytes",
        "station",
        "mac_dst",
        "on_receive",
        "to_station",
        "payload",
        "created_us",
        "uid",
    )

    _uid_counter = itertools.count(1)

    def __init__(
        self,
        size_bytes: int,
        station: str,
        *,
        to_station: bool,
        payload: Any = None,
        on_receive: Optional[Callable[["Packet"], None]] = None,
        created_us: float = 0.0,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes!r}")
        self.size_bytes = size_bytes
        self.station = station
        self.mac_dst: Optional[str] = None
        self.on_receive = on_receive
        self.to_station = to_station
        self.payload = payload
        self.created_us = created_us
        self.uid = next(Packet._uid_counter)

    def deliver(self) -> None:
        """Invoke the destination endpoint's callback."""
        if self.on_receive is not None:
            self.on_receive(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        direction = "down" if self.to_station else "up"
        return f"<Packet #{self.uid} {self.size_bytes}B sta={self.station} {direction}>"
