"""repro — reproduction of Tan & Guttag, "Time-based Fairness Improves
Performance in Multi-rate WLANs" (USENIX ATC 2004).

The package provides:

* ``repro.sim`` — a deterministic discrete-event simulation kernel;
* ``repro.phy`` / ``repro.channel`` / ``repro.mac`` — an 802.11b/g PHY
  timing model, a single-cell broadcast channel with collision semantics,
  and a faithful DCF (CSMA/CA) MAC;
* ``repro.node`` / ``repro.queueing`` / ``repro.transport`` — stations,
  access points, AP queueing disciplines, TCP Reno / UDP and wired links;
* ``repro.core`` — the paper's contribution, the Time-based Regulator
  (TBR), plus its max-min token-rate adjustment and extensions;
* ``repro.analysis`` — the paper's analytic model (Equations 4-13),
  baseline throughputs, and fairness/efficiency metrics;
* ``repro.traces`` — trace records, an in-simulator sniffer, synthetic
  trace generators and the paper's trace analyses;
* ``repro.experiments`` — one entry point per paper figure/table.

Quickstart::

    from repro.experiments import fig2
    result = fig2.run(seed=1)
    print(fig2.render(result))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
