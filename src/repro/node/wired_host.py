"""A host on the wired backbone behind the AP."""

from __future__ import annotations

from repro.node.access_point import AccessPoint
from repro.transport.packet import Packet


class WiredHost:
    """A wired correspondent node (file server, TCP sink, etc.).

    Packets a host sends are owned by the *wireless station* at the far
    end of the flow (``packet.station``); the AP queues them downlink.
    """

    def __init__(self, name: str, ap: AccessPoint) -> None:
        self.name = name
        self.ap = ap
        self.rx_bytes = 0

    def send(self, packet: Packet) -> None:
        self.ap.from_wire(packet)
