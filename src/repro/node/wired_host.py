"""A host on the wired backbone behind the AP."""

from __future__ import annotations

from typing import Callable, Optional

from repro.node.access_point import AccessPoint
from repro.transport.packet import Packet
from repro.transport.udp import UdpDownlinkSource


class WiredHost:
    """A wired correspondent node (file server, TCP sink, etc.).

    Packets a host sends are owned by the *wireless station* at the far
    end of the flow (``packet.station``); the AP queues them downlink.

    Two transmit paths exist:

    * :meth:`send` — per-packet: the caller built a packet, the host
      ships it over the backbone pipe (TCP data/ACKs, one-off traffic).
    * :meth:`udp_stream` — demand-driven: a CBR schedule is registered
      with the pipe's pump, which costs one kernel event per offered
      packet and materializes packets only when the AP queue admits
      them (see ``repro.transport.udp.UdpDownlinkSource``).
    """

    def __init__(self, name: str, ap: AccessPoint) -> None:
        self.name = name
        self.ap = ap
        self.rx_bytes = 0

    def send(self, packet: Packet) -> None:
        self.ap.from_wire(packet)

    def udp_stream(
        self,
        station: str,
        rate_mbps: float,
        payload_bytes: int = 1472,
        *,
        on_receive: Optional[Callable[[Packet], None]] = None,
        start_us: float = 0.0,
        stop_us: Optional[float] = None,
        jitter_fraction: float = 0.05,
        name: Optional[str] = None,
    ) -> UdpDownlinkSource:
        """Open a demand-driven CBR stream toward ``station``."""
        return UdpDownlinkSource(
            self.ap.sim,
            name if name is not None else f"{self.name}/{station}",
            self.ap,
            station,
            rate_mbps,
            payload_bytes,
            on_receive=on_receive,
            start_us=start_us,
            stop_us=stop_us,
            jitter_fraction=jitter_fraction,
        )
