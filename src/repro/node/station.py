"""A wireless client station."""

from __future__ import annotations

from typing import Callable, Optional

from repro.channel.medium import Channel
from repro.mac.dcf import DcfMac, MacConfig
from repro.mac.fifo import FifoTxScheduler
from repro.node.rate_control import FixedRate, RateController
from repro.phy.phy import PhyParams
from repro.sim import EventCategory, Simulator
from repro.transport.packet import Packet


class Station:
    """A client node: MAC + FIFO transmit queue + transport plumbing.

    The station sends everything to the AP (infrastructure mode).  Its
    uplink data rate comes from a :class:`RateController` (fixed by the
    controlled experiments, ARF in the rate-adaptation scenarios).

    The optional TBR *client agent* (paper Section 4.1) is a release
    gate on the transmit queue: when the AP piggybacks a defer hint on a
    downlink frame or ACK, the station withholds its own transmissions
    for the requested time.  It is disabled by default, matching the
    paper's evaluated configuration ("our current TBR implementation
    does not contain the client-side implementation").
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        address: str,
        phy: PhyParams,
        *,
        ap_address: str = "ap",
        rate_controller: Optional[RateController] = None,
        rate_mbps: float = 11.0,
        queue_capacity: int = 100,
        mac_config: Optional[MacConfig] = None,
        cooperate_with_tbr: bool = False,
    ) -> None:
        self.sim = sim
        self.address = address
        self.ap_address = ap_address
        self.rate_controller = (
            rate_controller if rate_controller is not None else FixedRate(rate_mbps)
        )
        self.mac = DcfMac(
            sim,
            channel,
            address,
            phy,
            config=mac_config,
            rate_provider=self.rate_controller.rate_for,
        )
        self.queue = FifoTxScheduler(capacity=queue_capacity)
        self.mac.attach_scheduler(self.queue)
        self.mac.rx_handler = self._on_mac_rx
        self.mac.add_completion_listener(self._on_mac_complete)
        self.mac.attempt_listener = self._on_attempt

        self.cooperate_with_tbr = cooperate_with_tbr
        self._defer_until = 0.0
        if cooperate_with_tbr:
            self.queue.release_gate = self._may_transmit
            self.mac.defer_hint_handler = self._on_defer_hint

        #: extra observers of uplink exchange completions
        #: (callable(report)); the Cell wires usage monitors here.
        self.exchange_observers = []
        self.rx_bytes = 0
        self.tx_packets = 0

    # ------------------------------------------------------------------
    # transport-facing
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue an uplink packet toward the AP."""
        packet.mac_dst = self.ap_address
        self.tx_packets += 1
        return self.queue.enqueue(packet)

    def shutdown(self) -> None:
        """Disassociate: silence the MAC and drop queued uplink traffic.

        The MAC cancels its pending events and detaches from the
        channel; packets still sitting in the transmit queue are
        discarded (a closed laptop lid takes its queue with it).
        Transport endpoints that keep offering traffic afterwards fill
        a dead queue — quiesce flows first for a clean teardown.
        """
        self.queue.queue.clear()
        self.queue.mac = None
        self.mac.shutdown()

    def fast_forward(self, delta_us: float) -> None:
        """Shift clock-bearing station state after a kernel jump."""
        self._defer_until += delta_us
        self.mac.fast_forward(delta_us)

    # ------------------------------------------------------------------
    # MAC callbacks
    # ------------------------------------------------------------------
    def _on_mac_rx(self, frame) -> None:
        packet = frame.packet
        if packet is None:
            return
        self.rx_bytes += packet.size_bytes
        packet.deliver()

    def _on_attempt(self, dst: str, success: bool) -> None:
        # One attempt at a time so rate control reacts before the retry.
        self.rate_controller.on_exchange(dst, success, 1)

    def _on_mac_complete(self, report) -> None:
        for observer in self.exchange_observers:
            observer(report)

    # ------------------------------------------------------------------
    # TBR client cooperation
    # ------------------------------------------------------------------
    def _on_defer_hint(self, defer_us: float) -> None:
        self._defer_until = max(self._defer_until, self.sim.now + defer_us)
        if defer_us > 0:
            self.sim.schedule(
                defer_us, self.queue.wake, category=EventCategory.TIMER
            )

    def _may_transmit(self) -> bool:
        return self.sim.now >= self._defer_until
