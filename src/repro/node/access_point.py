"""The access point: MAC + pluggable downlink scheduler + bridging.

The AP is "just a facilitator" (paper Section 2.2): every frame it
sends or receives is accounted to the client station involved.  The AP:

* bridges uplink packets onto the wired backbone;
* enqueues packets arriving from the wire into its downlink scheduler
  (the paper's APPTXEVENT);
* reports every observed *uplink* exchange to the scheduler
  (TBR's COMPLETEEVENT for client-originated traffic) using the
  deterministic exchange-time estimate a real AP can compute — by
  default without retransmission information, exactly like the paper's
  prototype (Section 4.2); an "oracle" mode reads the true attempt
  count off the frame for the retry-accounting ablation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.channel.medium import Channel
from repro.mac.dcf import DcfMac, MacConfig
from repro.node.rate_control import FixedRate, RateController
from repro.phy.phy import PhyParams, ack_airtime_us, ack_rate_for, frame_airtime_us
from repro.queueing.base import ApScheduler
from repro.sim import Simulator
from repro.transport.packet import Packet, PacketPool
from repro.transport.wired import WiredLink


def _deliver_packet(packet: Packet) -> None:
    packet.deliver()


class AccessPoint:
    """Infrastructure-mode AP."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        scheduler: ApScheduler,
        phy: PhyParams,
        *,
        address: str = "ap",
        rate_controller: Optional[RateController] = None,
        default_rate_mbps: float = 11.0,
        mac_config: Optional[MacConfig] = None,
        wired_delay_us: float = 1000.0,
        wired_rate_mbps: float = 100.0,
        oracle_retry_accounting: bool = False,
    ) -> None:
        self.sim = sim
        self.address = address
        self.phy = phy
        self.scheduler = scheduler
        self.rate_controller = (
            rate_controller
            if rate_controller is not None
            else FixedRate(default_rate_mbps)
        )
        self.oracle_retry_accounting = oracle_retry_accounting
        self.mac = DcfMac(
            sim,
            channel,
            address,
            phy,
            config=mac_config,
            rate_provider=self.rate_controller.rate_for,
        )
        self.mac.attach_scheduler(scheduler)
        self.mac.rx_handler = self._on_mac_rx
        self.mac.add_completion_listener(self._on_mac_complete)
        self.mac.attempt_listener = self._on_attempt

        # Wired backbone pipes (one each way, generously provisioned).
        self.uplink_wire = WiredLink(sim, wired_delay_us, wired_rate_mbps)
        self.downlink_wire = WiredLink(sim, wired_delay_us, wired_rate_mbps)
        #: freelist for demand-driven downlink packets (drop-before-
        #: alloc sources recycle consumed packets through it).
        self.packet_pool = PacketPool()
        # Prebound hot-path callables (one bound-method build per packet
        # adds up in saturated cells).
        self._downlink_send = self.downlink_wire.send
        self._enqueue_downlink_cb = self._enqueue_downlink
        self._deliver_packet_cb = _deliver_packet

        #: observers of downlink exchange completions (callable(report)).
        self.exchange_observers: List[Callable] = []
        #: observers of uplink receptions (callable(station, est_airtime,
        #: frame)) in addition to the scheduler.
        self.uplink_observers: List[Callable] = []

        self.uplink_packets = 0
        self.downlink_packets = 0

    # ------------------------------------------------------------------
    def associate(self, station_address: str) -> None:
        """Register a client (the paper's ASSOCIATEEVENT)."""
        self.scheduler.associate(station_address)

    def set_downlink_rate(self, station_address: str, mbps: float) -> None:
        if isinstance(self.rate_controller, FixedRate):
            self.rate_controller.set_rate(station_address, mbps)
        else:
            raise TypeError(
                "per-station pinned rates require a FixedRate controller"
            )

    # ------------------------------------------------------------------
    # uplink: station -> AP -> wire
    # ------------------------------------------------------------------
    def _on_mac_rx(self, frame) -> None:
        packet = frame.packet
        if packet is None:
            return
        self.uplink_packets += 1
        est = self.estimate_exchange_airtime(
            frame.size_bytes,
            frame.rate_mbps,
            attempts=frame.attempt if self.oracle_retry_accounting else 1,
        )
        self.scheduler.on_uplink_complete(
            packet.station,
            est,
            attempts=frame.attempt,
            success=True,
            payload_bytes=frame.size_bytes,
        )
        for observer in self.uplink_observers:
            observer(packet.station, est, frame)
        # Bridge to the wired side.
        self.uplink_wire.send(packet, self._deliver_packet_cb)

    def estimate_exchange_airtime(
        self, payload_bytes: int, rate_mbps: float, *, attempts: int = 1
    ) -> float:
        """Deterministic per-exchange channel time, as the AP computes it.

        DIFS + data airtime (times ``attempts`` when retry information is
        available) + SIFS + ACK airtime.
        """
        data = frame_airtime_us(self.phy, payload_bytes, rate_mbps)
        ack = ack_airtime_us(self.phy, ack_rate_for(self.phy, rate_mbps))
        per_attempt = self.phy.difs_us + data
        return attempts * per_attempt + self.phy.sifs_us + ack

    # ------------------------------------------------------------------
    # downlink: wire -> AP -> station
    # ------------------------------------------------------------------
    def from_wire(self, packet: Packet) -> None:
        """Entry point for hosts: ship a packet over the backbone pipe."""
        self._downlink_send(packet, self._enqueue_downlink_cb)

    def _enqueue_downlink(self, packet: Packet) -> None:
        packet.mac_dst = packet.station
        self.downlink_packets += 1
        self.scheduler.enqueue(packet)

    def downlink_arrival(
        self, station: str, materialize: Callable[[], Packet]
    ) -> bool:
        """Demand-path APPTXEVENT with drop-before-alloc.

        The two-event path materializes a packet at the source and drops
        it at the full queue; this one asks the scheduler first and only
        calls ``materialize()`` for admitted arrivals, so a saturated
        cell's tail drops never touch the allocator.  Counters move
        exactly as in :meth:`_enqueue_downlink` + drop-tail ``push``.
        """
        self.downlink_packets += 1
        scheduler = self.scheduler
        if not scheduler.admits(station):
            scheduler.drop_arrival(station)
            return False
        packet = materialize()
        packet.mac_dst = station
        return scheduler.enqueue(packet)

    def _on_attempt(self, dst: str, success: bool) -> None:
        # One attempt at a time so rate control reacts before the retry.
        self.rate_controller.on_exchange(dst, success, 1)

    def _on_mac_complete(self, report) -> None:
        for observer in self.exchange_observers:
            observer(report)
