"""The access point: MAC + pluggable downlink scheduler + bridging.

The AP is "just a facilitator" (paper Section 2.2): every frame it
sends or receives is accounted to the client station involved.  The AP:

* bridges uplink packets onto the wired backbone;
* enqueues packets arriving from the wire into its downlink scheduler
  (the paper's APPTXEVENT);
* reports every observed *uplink* exchange to the scheduler
  (TBR's COMPLETEEVENT for client-originated traffic) using the
  deterministic exchange-time estimate a real AP can compute — by
  default without retransmission information, exactly like the paper's
  prototype (Section 4.2); an "oracle" mode reads the true attempt
  count off the frame for the retry-accounting ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.channel.medium import Channel
from repro.mac.dcf import DcfMac, MacConfig
from repro.mac.frames import BROADCAST
from repro.node.rate_control import FixedRate, RateController
from repro.phy.phy import PhyParams, ack_airtime_us, ack_rate_for, frame_airtime_us
from repro.queueing.base import ApScheduler
from repro.sim import EventCategory, Simulator
from repro.transport.packet import Packet, PacketPool
from repro.transport.wired import WiredLink


def _deliver_packet(packet: Packet) -> None:
    packet.deliver()


@dataclass
class ReaperConfig:
    """Knobs for the AP-side :class:`InactivityReaper`."""

    #: consecutive retry-limit exhaustions toward a station before it
    #: is even a reap candidate (evidence the peer stopped ACKing, not
    #: merely that one frame was unlucky).
    exhaustion_threshold: int = 2
    #: nothing heard from the station for this long (on top of the
    #: exhaustion evidence) before it is declared dead.
    idle_timeout_us: float = 500_000.0

    def __post_init__(self) -> None:
        if self.exhaustion_threshold < 1:
            raise ValueError("exhaustion_threshold must be >= 1")
        if self.idle_timeout_us <= 0:
            raise ValueError("idle_timeout_us must be positive")


class InactivityReaper:
    """Detects dead peers and drives the ordinary disassociate path.

    A station that crashes without disassociating strands AP-side state:
    its downlink queue keeps admitting packets and — under TBR — its
    token rate stays allocated, shrinking every survivor's share.  The
    reaper watches two signals the AP already has: consecutive
    retry-limit exhaustions toward the station (its MAC stopped ACKing)
    and the time since the station was last *heard* (an uplink frame
    received, or a downlink attempt it ACKed).  Only when both trip —
    at least ``exhaustion_threshold`` consecutive exhaustions AND
    ``idle_timeout_us`` of silence — does it call ``on_reap(station)``,
    so merely-quiet stations (burst gaps) are never reaped and a lossy
    channel alone (exhaustions, but the station still talks) is not
    enough either.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ReaperConfig,
        on_reap: Callable[[str], None],
    ) -> None:
        self.sim = sim
        self.config = config
        self.on_reap = on_reap
        self._exhaustions: Dict[str, int] = {}
        self._last_heard: Dict[str, float] = {}
        self._check_pending: Set[str] = set()
        self._reaped: Set[str] = set()
        self.reap_count = 0

    def heard(self, station: str) -> None:
        """The station proved it is alive; reset its death evidence."""
        self._last_heard[station] = self.sim.now
        if self._exhaustions.get(station):
            self._exhaustions[station] = 0

    def on_retry_exhausted(self, dst: str) -> None:
        """MAC hook: a frame toward ``dst`` burned all its retries."""
        if dst == BROADCAST or dst in self._reaped:
            return
        self._exhaustions[dst] = self._exhaustions.get(dst, 0) + 1
        # A station never heard from starts its silence clock at the
        # first piece of death evidence, not at minus infinity.
        self._last_heard.setdefault(dst, self.sim.now)
        self._maybe_reap(dst)

    def _maybe_reap(self, station: str) -> None:
        if station in self._reaped:
            return
        if self._exhaustions.get(station, 0) < self.config.exhaustion_threshold:
            return
        deadline = self._last_heard[station] + self.config.idle_timeout_us
        if self.sim.now >= deadline:
            self._reaped.add(station)
            self.reap_count += 1
            self._exhaustions.pop(station, None)
            self._last_heard.pop(station, None)
            self.on_reap(station)
            return
        # Exhaustions already damning, silence not yet long enough —
        # come back when the idle clock can have run out.
        if station not in self._check_pending:
            self._check_pending.add(station)
            self.sim.schedule_at(
                deadline, self._idle_check, station,
                category=EventCategory.TIMER,
            )

    def _idle_check(self, station: str) -> None:
        self._check_pending.discard(station)
        self._maybe_reap(station)

    def forget(self, station: str) -> None:
        """A reaped station re-associated (roaming); track it afresh."""
        self._reaped.discard(station)
        self._exhaustions.pop(station, None)
        self._last_heard.pop(station, None)

    def fast_forward(self, delta_us: float) -> None:
        """Shift last-heard marks after a kernel jump (pending
        ``_idle_check`` events move with the heap, so the deadlines
        derived from these marks stay consistent)."""
        heard = self._last_heard
        for station in heard:
            heard[station] += delta_us


class AccessPoint:
    """Infrastructure-mode AP."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        scheduler: ApScheduler,
        phy: PhyParams,
        *,
        address: str = "ap",
        rate_controller: Optional[RateController] = None,
        default_rate_mbps: float = 11.0,
        mac_config: Optional[MacConfig] = None,
        wired_delay_us: float = 1000.0,
        wired_rate_mbps: float = 100.0,
        oracle_retry_accounting: bool = False,
    ) -> None:
        self.sim = sim
        self.address = address
        self.phy = phy
        self.scheduler = scheduler
        self.rate_controller = (
            rate_controller
            if rate_controller is not None
            else FixedRate(default_rate_mbps)
        )
        self.oracle_retry_accounting = oracle_retry_accounting
        self.mac = DcfMac(
            sim,
            channel,
            address,
            phy,
            config=mac_config,
            rate_provider=self.rate_controller.rate_for,
        )
        self.mac.attach_scheduler(scheduler)
        self.mac.rx_handler = self._on_mac_rx
        self.mac.add_completion_listener(self._on_mac_complete)
        self.mac.attempt_listener = self._on_attempt

        # Wired backbone pipes (one each way, generously provisioned).
        self.uplink_wire = WiredLink(sim, wired_delay_us, wired_rate_mbps)
        self.downlink_wire = WiredLink(sim, wired_delay_us, wired_rate_mbps)
        #: freelist for demand-driven downlink packets (drop-before-
        #: alloc sources recycle consumed packets through it).
        self.packet_pool = PacketPool()
        # Prebound hot-path callables (one bound-method build per packet
        # adds up in saturated cells).
        self._downlink_send = self.downlink_wire.send
        self._enqueue_downlink_cb = self._enqueue_downlink
        self._deliver_packet_cb = _deliver_packet

        #: observers of downlink exchange completions (callable(report)).
        self.exchange_observers: List[Callable] = []
        #: observers of uplink receptions (callable(station, est_airtime,
        #: frame)) in addition to the scheduler.
        self.uplink_observers: List[Callable] = []

        self.uplink_packets = 0
        self.downlink_packets = 0

        #: optional dead-peer detector (see :meth:`enable_reaper`).
        self.reaper: Optional[InactivityReaper] = None
        #: True while the AP is down (see :meth:`outage_begin`).
        self.in_outage = False

    # ------------------------------------------------------------------
    def associate(self, station_address: str) -> None:
        """Register a client (the paper's ASSOCIATEEVENT)."""
        self.scheduler.associate(station_address)
        if self.reaper is not None:
            self.reaper.forget(station_address)
            self.reaper.heard(station_address)

    def enable_reaper(
        self, config: ReaperConfig, on_reap: Callable[[str], None]
    ) -> InactivityReaper:
        """Install the inactivity reaper (off by default — detection is
        a policy, and the paper's prototype AP has none)."""
        self.reaper = InactivityReaper(self.sim, config, on_reap)
        self.mac.retry_exhausted_listener = self.reaper.on_retry_exhausted
        return self.reaper

    def fast_forward(self, delta_us: float) -> None:
        """Shift all clock-bearing AP state after a kernel jump."""
        self.mac.fast_forward(delta_us)
        self.uplink_wire.fast_forward(delta_us)
        self.downlink_wire.fast_forward(delta_us)
        self.scheduler.fast_forward(delta_us)
        if self.reaper is not None:
            self.reaper.fast_forward(delta_us)

    # ------------------------------------------------------------------
    # outage: ungraceful AP death and recovery
    # ------------------------------------------------------------------
    def outage_begin(self) -> None:
        """The AP dies this instant.

        Its MAC shuts down with the in-flight frame aborted on the air
        (nothing delivers), every pending MAC event cancelled, and the
        channel attachment dropped.  Callers are expected to have torn
        the stations' associations down first (an AP that vanished
        cannot disassociate anyone gracefully — the scenario builder
        models the stations' own timeout-driven departure).  Idempotent.
        """
        if self.in_outage:
            return
        self.in_outage = True
        self.mac.shutdown(abort_in_flight=True)

    def outage_end(self) -> None:
        """The AP comes back: MAC restarted, scheduler re-attached.

        Contention state is fresh (CW at minimum, no EIFS debt); the
        downlink scheduler keeps its identity, so stations re-associate
        into it exactly as after a graceful leave.  Idempotent.
        """
        if not self.in_outage:
            return
        self.in_outage = False
        self.mac.restart()
        self.mac.attach_scheduler(self.scheduler)
        self.mac.notify_pending()

    def set_downlink_rate(self, station_address: str, mbps: float) -> None:
        if isinstance(self.rate_controller, FixedRate):
            self.rate_controller.set_rate(station_address, mbps)
        else:
            raise TypeError(
                "per-station pinned rates require a FixedRate controller"
            )

    # ------------------------------------------------------------------
    # uplink: station -> AP -> wire
    # ------------------------------------------------------------------
    def _on_mac_rx(self, frame) -> None:
        packet = frame.packet
        if packet is None:
            return
        self.uplink_packets += 1
        if self.reaper is not None:
            self.reaper.heard(packet.station)
        est = self.estimate_exchange_airtime(
            frame.size_bytes,
            frame.rate_mbps,
            attempts=frame.attempt if self.oracle_retry_accounting else 1,
        )
        self.scheduler.on_uplink_complete(
            packet.station,
            est,
            attempts=frame.attempt,
            success=True,
            payload_bytes=frame.size_bytes,
        )
        for observer in self.uplink_observers:
            observer(packet.station, est, frame)
        # Bridge to the wired side.
        self.uplink_wire.send(packet, self._deliver_packet_cb)

    def estimate_exchange_airtime(
        self, payload_bytes: int, rate_mbps: float, *, attempts: int = 1
    ) -> float:
        """Deterministic per-exchange channel time, as the AP computes it.

        DIFS + data airtime (times ``attempts`` when retry information is
        available) + SIFS + ACK airtime.
        """
        data = frame_airtime_us(self.phy, payload_bytes, rate_mbps)
        ack = ack_airtime_us(self.phy, ack_rate_for(self.phy, rate_mbps))
        per_attempt = self.phy.difs_us + data
        return attempts * per_attempt + self.phy.sifs_us + ack

    # ------------------------------------------------------------------
    # downlink: wire -> AP -> station
    # ------------------------------------------------------------------
    def from_wire(self, packet: Packet) -> None:
        """Entry point for hosts: ship a packet over the backbone pipe."""
        self._downlink_send(packet, self._enqueue_downlink_cb)

    def _enqueue_downlink(self, packet: Packet) -> None:
        packet.mac_dst = packet.station
        self.downlink_packets += 1
        self.scheduler.enqueue(packet)

    def downlink_arrival(
        self, station: str, materialize: Callable[[], Packet]
    ) -> bool:
        """Demand-path APPTXEVENT with drop-before-alloc.

        The two-event path materializes a packet at the source and drops
        it at the full queue; this one asks the scheduler first and only
        calls ``materialize()`` for admitted arrivals, so a saturated
        cell's tail drops never touch the allocator.  Counters move
        exactly as in :meth:`_enqueue_downlink` + drop-tail ``push``.
        """
        self.downlink_packets += 1
        scheduler = self.scheduler
        if not scheduler.admits(station):
            scheduler.drop_arrival(station)
            return False
        packet = materialize()
        packet.mac_dst = station
        return scheduler.enqueue(packet)

    def _on_attempt(self, dst: str, success: bool) -> None:
        # One attempt at a time so rate control reacts before the retry.
        self.rate_controller.on_exchange(dst, success, 1)
        if success and self.reaper is not None:
            # An ACKed downlink attempt proves the peer is alive.
            self.reaper.heard(dst)

    def _on_mac_complete(self, report) -> None:
        for observer in self.exchange_observers:
            observer(report)
