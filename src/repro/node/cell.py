"""`Cell` — a one-stop builder for single-cell WLAN scenarios.

Every experiment in the paper is "an AP, a few stations at various
rates, TCP or UDP flows up or down, with or without TBR".  ``Cell``
assembles the simulator, channel, AP (with the chosen queueing
discipline), stations, flows and measurement hooks, and exposes the
results the paper reports: per-flow throughput and per-station channel
occupancy.

Example::

    cell = Cell(seed=1, scheduler="tbr")
    n1 = cell.add_station("n1", rate_mbps=1.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    f1 = cell.tcp_flow(n1, direction="up")
    f2 = cell.tcp_flow(n2, direction="up")
    cell.run(seconds=20, warmup_seconds=2)
    print(cell.throughputs_mbps())        # {'n1/tcp-up': ..., ...}
    print(cell.occupancy_fractions())     # {'n1': ~0.48, 'n2': ~0.48}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.channel.medium import Channel
from repro.channel.usage import ChannelUsageMonitor
from repro.core.tbr import TbrConfig, TbrScheduler
from repro.node.access_point import AccessPoint
from repro.node.rate_control import FixedRate, RateController
from repro.node.station import Station
from repro.node.wired_host import WiredHost
from repro.phy.phy import DOT11B_LONG_PREAMBLE, PhyParams
from repro.queueing.base import ApScheduler
from repro.queueing.drr import DrrScheduler
from repro.queueing.fifo import ApFifoScheduler
from repro.queueing.round_robin import RoundRobinScheduler
from repro.sim import Simulator, us_from_s
from repro.transport.apps import BulkApp, PacedApp, TaskApp
from repro.transport.packet import Packet
from repro.transport.stats import FlowStats
from repro.transport.tcp import TcpParams, TcpReceiver, TcpSender
from repro.transport.udp import UdpSender, UdpSink


@dataclass
class FlowHandle:
    """Everything about one flow a test or experiment might poke."""

    name: str
    station: Station
    direction: str  # "up" | "down"
    kind: str  # "tcp" | "udp"
    stats: FlowStats
    sender: object
    receiver: object
    app: object = None

    def throughput_mbps(self, elapsed_us: Optional[float] = None) -> float:
        return self.stats.throughput_mbps(elapsed_us)


def _make_scheduler(
    sim: Simulator, spec: Union[str, ApScheduler], tbr_config: Optional[TbrConfig]
) -> ApScheduler:
    if isinstance(spec, ApScheduler):
        return spec
    if spec == "fifo":
        return ApFifoScheduler()
    if spec == "rr":
        return RoundRobinScheduler()
    if spec == "drr":
        return DrrScheduler()
    if spec == "tbr":
        return TbrScheduler(sim, tbr_config)
    raise ValueError(f"unknown scheduler {spec!r} (fifo/rr/drr/tbr)")


class Cell:
    """A single 802.11 cell with an AP, stations and flows."""

    def __init__(
        self,
        seed: int = 0,
        *,
        phy: PhyParams = DOT11B_LONG_PREAMBLE,
        scheduler: Union[str, ApScheduler] = "fifo",
        tbr_config: Optional[TbrConfig] = None,
        loss_model=None,
        wired_delay_us: float = 1000.0,
        oracle_retry_accounting: bool = False,
        ap_rate_controller: Optional[RateController] = None,
        keep_usage_records: bool = False,
        sim: Optional[Simulator] = None,
        ap_address: str = "ap",
    ) -> None:
        # A campus hands every cell the same kernel (``sim``); a lone
        # cell owns its own.  Either way all named RNG streams derive
        # from the seed, so a single shared-kernel cell is
        # byte-identical to a standalone one.
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.phy = phy
        self.channel = Channel(self.sim, loss_model)
        self.usage = ChannelUsageMonitor(self.sim, keep_records=keep_usage_records)
        self.scheduler = _make_scheduler(self.sim, scheduler, tbr_config)
        self.ap = AccessPoint(
            self.sim,
            self.channel,
            self.scheduler,
            phy,
            address=ap_address,
            rate_controller=ap_rate_controller,
            wired_delay_us=wired_delay_us,
            oracle_retry_accounting=oracle_retry_accounting,
        )
        self.ap.mac.add_completion_listener(self._on_ap_exchange)
        if isinstance(self.scheduler, TbrScheduler) and self.scheduler.config.notify_clients:
            self.ap.mac.ack_decorator = self._decorate_ack
        self.stations: Dict[str, Station] = {}
        self.flows: List[FlowHandle] = []
        self._flow_seq = 0
        self._measure_start_us = 0.0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_station(
        self,
        name: Optional[str] = None,
        *,
        rate_mbps: float = 11.0,
        downlink_rate_mbps: Optional[float] = None,
        rate_controller: Optional[RateController] = None,
        queue_capacity: int = 100,
        cooperate_with_tbr: bool = False,
        mac_config=None,
    ) -> Station:
        """Create a station; its uplink rate is ``rate_mbps`` and the
        AP's downlink rate toward it defaults to the same value."""
        if name is None:
            name = f"sta{len(self.stations)}"
        if name in self.stations:
            raise ValueError(f"duplicate station name {name!r}")
        station = Station(
            self.sim,
            self.channel,
            name,
            self.phy,
            ap_address=self.ap.address,
            rate_controller=rate_controller,
            rate_mbps=rate_mbps,
            queue_capacity=queue_capacity,
            cooperate_with_tbr=cooperate_with_tbr,
            mac_config=mac_config,
        )
        station.exchange_observers.append(self._on_station_exchange(station))
        self.stations[name] = station
        self.ap.associate(name)
        if rate_controller is None and downlink_rate_mbps is None:
            downlink_rate_mbps = rate_mbps
        if downlink_rate_mbps is not None:
            try:
                self.ap.set_downlink_rate(name, downlink_rate_mbps)
            except TypeError:
                pass  # AP uses its own adaptive controller
        return station

    def remove_station(self, name: str) -> None:
        """Tear a station down end to end (true disassociation).

        The inverse of :meth:`add_station`: the AP scheduler
        disassociates the station (flushing its queued downlink
        packets back to the packet pool; under TBR its token bucket is
        retired and its rate redistributed), the station's MAC cancels
        its pending events and detaches from the channel, and the AP's
        pinned downlink rate entry is dropped.  Flow handles already
        created for the station stay in :attr:`flows` (their delivered
        bytes are history) but stop accumulating.  Traffic sources are
        *not* stopped here — quiesce them first (the scenario builder
        does).  Unknown names are a no-op, so a double remove is safe.

        Re-adding the same name later is a fresh association: a new
        station object, a new queue, and (under TBR) a new initial
        token grant.
        """
        station = self.stations.pop(name, None)
        if station is None:
            return
        self.scheduler.disassociate(name)
        station.shutdown()
        if isinstance(self.ap.rate_controller, FixedRate):
            self.ap.rate_controller.table.pop(name, None)

    def crash_station(self, name: str) -> None:
        """The station dies *without* disassociating (ungraceful).

        Only the station's own side is torn down — its MAC stops
        answering and detaches, its queue empties — while every piece
        of AP-side state stays allocated: the downlink queue keeps
        admitting packets, the pinned downlink rate stays, and under
        TBR the token bucket keeps its rate (stranding the survivors'
        shares below ``1/n_active``).  Recovery is the inactivity
        reaper's job (see :meth:`enable_reaper`); without one the
        strand persists — which is exactly the regression the runtime
        sanitizer's live-share invariant catches.  Unknown names no-op.
        """
        station = self.stations.pop(name, None)
        if station is None:
            return
        station.shutdown()

    def enable_reaper(self, config=None, *, on_reap=None) -> None:
        """Arm the AP's dead-peer detection.

        ``config`` is a :class:`repro.node.access_point.ReaperConfig`
        (defaults apply when ``None``).  A reaped station goes through
        the same teardown as :meth:`remove_station` — scheduler
        disassociate (queue flushed, TBR bucket retired, survivors
        renormalized) and pinned-rate cleanup — except its own Station
        object, if it crashed, is already gone.  ``on_reap`` is called
        with the station name *after* the teardown (the scenario layer
        uses it to stop the dead station's remaining traffic sources).
        """
        from repro.node.access_point import ReaperConfig

        self._on_reap_hook = on_reap
        self.ap.enable_reaper(
            config if config is not None else ReaperConfig(), self._reap
        )

    def _reap(self, name: str) -> None:
        self._reap_teardown(name)
        hook = getattr(self, "_on_reap_hook", None)
        if hook is not None:
            hook(name)

    def _reap_teardown(self, name: str) -> None:
        if name in self.stations:
            # Still alive on our books (e.g. a live station behind a
            # hopeless link): full teardown, same as remove_station.
            self.remove_station(name)
            return
        # Crashed: the Station object is gone, but the scheduler and
        # rate table never heard — disassociate directly so the queue
        # flushes and TBR's survivors renormalize to 1/n_active.
        self.scheduler.disassociate(name)
        if isinstance(self.ap.rate_controller, FixedRate):
            self.ap.rate_controller.table.pop(name, None)

    # ------------------------------------------------------------------
    # usage accounting (true occupancy, both directions)
    # ------------------------------------------------------------------
    def _on_station_exchange(self, station: Station):
        def observer(report) -> None:
            if report.packet is None:
                return
            self.usage.record_exchange(
                station.address,
                report.airtime_us,
                attempts=report.attempts,
                success=report.success,
                payload_bytes=report.payload_bytes,
                rate_mbps=report.rate_mbps,
                direction="up",
            )

        return observer

    def _on_ap_exchange(self, report) -> None:
        packet = report.packet
        if packet is None:
            return
        self.usage.record_exchange(
            packet.station,
            report.airtime_us,
            attempts=report.attempts,
            success=report.success,
            payload_bytes=report.payload_bytes,
            rate_mbps=report.rate_mbps,
            direction="down",
        )

    def _decorate_ack(self, ack, data_frame) -> None:
        hint = self.scheduler.defer_hint_for(data_frame.src)
        if hint is not None:
            ack.defer_hint = hint

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def _flow_name(self, station: Station, kind: str, direction: str) -> str:
        self._flow_seq += 1
        return f"{station.address}/{kind}-{direction}"

    def tcp_flow(
        self,
        station: Station,
        *,
        direction: str = "up",
        app: str = "bulk",
        task_bytes: Optional[int] = None,
        paced_mbps: Optional[float] = None,
        params: Optional[TcpParams] = None,
        name: Optional[str] = None,
    ) -> FlowHandle:
        """Create a TCP flow between ``station`` and a fresh wired host.

        ``direction="up"`` sends data station -> host (the host returns
        ACKs through the AP's downlink queue); ``"down"`` the reverse.
        ``app`` is ``"bulk"``, ``"task"`` (give ``task_bytes``) or
        ``"paced"`` (give ``paced_mbps``).
        """
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        if name is None:
            name = self._flow_name(station, "tcp", direction)
        host = WiredHost(f"host-{name}", self.ap)
        stats = FlowStats(self.sim, name)

        sta_addr = station.address
        now = self.sim.now

        if direction == "up":
            data_via = station.send
            ack_via = host.send
            data_to_station = False
        else:
            data_via = host.send
            ack_via = station.send
            data_to_station = True

        # Receiver first so the sender's tx can reference its callbacks.
        receiver_box: dict = {}

        def tx_data(size_bytes: int, segment) -> None:
            pkt = Packet(
                size_bytes,
                sta_addr,
                to_station=data_to_station,
                payload=segment,
                on_receive=lambda p: receiver_box["rx"].on_segment(p.payload),
                created_us=self.sim.now,
            )
            data_via(pkt)

        sender = TcpSender(self.sim, f"{name}-snd", tx_data, params)

        def tx_ack(size_bytes: int, ack) -> None:
            pkt = Packet(
                size_bytes,
                sta_addr,
                to_station=not data_to_station,
                payload=ack,
                on_receive=lambda p: sender.on_ack(p.payload),
                created_us=self.sim.now,
            )
            ack_via(pkt)

        receiver = TcpReceiver(self.sim, f"{name}-rcv", tx_ack, params, stats)
        receiver_box["rx"] = receiver

        app_obj: object
        if app == "bulk":
            app_obj = BulkApp(sender)
        elif app == "task":
            if task_bytes is None:
                raise ValueError("task app needs task_bytes")
            app_obj = TaskApp(self.sim, sender, task_bytes, stats.mark_complete)
        elif app == "paced":
            if paced_mbps is None:
                raise ValueError("paced app needs paced_mbps")
            app_obj = PacedApp(self.sim, sender, paced_mbps)
        else:
            raise ValueError(f"unknown app {app!r}")

        handle = FlowHandle(
            name, station, direction, "tcp", stats, sender, receiver, app_obj
        )
        self.flows.append(handle)
        del now
        return handle

    def udp_flow(
        self,
        station: Station,
        *,
        direction: str = "down",
        rate_mbps: float = 12.0,
        payload_bytes: int = 1472,
        name: Optional[str] = None,
    ) -> FlowHandle:
        """Create a UDP flow (default: saturating downlink, as EXP-1)."""
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        if name is None:
            name = self._flow_name(station, "udp", direction)
        host = WiredHost(f"host-{name}", self.ap)
        stats = FlowStats(self.sim, name)
        sink = UdpSink(stats)

        sta_addr = station.address

        def on_rx(p) -> None:
            sink.on_datagram(p.payload, p.size_bytes)

        sender: object
        if direction == "down":
            # Demand-driven engine: the wire's pump charges one kernel
            # event per offered packet, and tail drops at the AP queue
            # never materialize a packet at all.
            sender = host.udp_stream(
                sta_addr,
                rate_mbps,
                payload_bytes,
                on_receive=on_rx,
                name=f"{name}-snd",
            )
        else:
            sim = self.sim

            def tx(size_bytes: int, datagram) -> None:
                pkt = Packet(
                    size_bytes,
                    sta_addr,
                    to_station=False,
                    payload=datagram,
                    on_receive=on_rx,
                    created_us=sim.now,
                )
                station.send(pkt)

            sender = UdpSender(
                self.sim, f"{name}-snd", tx, rate_mbps, payload_bytes
            )
        handle = FlowHandle(name, station, direction, "udp", stats, sender, sink)
        self.flows.append(handle)
        return handle

    # ------------------------------------------------------------------
    # running and measuring
    # ------------------------------------------------------------------
    def run(self, seconds: float, *, warmup_seconds: float = 0.0) -> None:
        """Run ``warmup_seconds`` then measure for ``seconds``."""
        if warmup_seconds > 0:
            self.sim.run(until=self.sim.now + us_from_s(warmup_seconds))
            self.reset_measurements()
        self.sim.run(until=self.sim.now + us_from_s(seconds))

    def reset_measurements(self) -> None:
        """Zero throughput/occupancy accumulators (end of warm-up)."""
        self._measure_start_us = self.sim.now
        self.usage.reset()
        for flow in self.flows:
            flow.stats.reset()

    def fast_forward(self, delta_us: float) -> None:
        """Shift every component's clock-bearing state after a kernel
        jump (see :meth:`Simulator.fast_forward_to`).

        This moves *phases* — busy/idle marks, backoff anchors, wire
        serialization clocks, timer references, token windows — not
        accumulators: the fast-forward planner credits the skipped
        interval's throughput/occupancy/token totals separately, and the
        measurement origin (``_measure_start_us``, the usage monitor's
        origin) deliberately stays put so skipped time counts as
        measured time.
        """
        self.channel.fast_forward(delta_us)
        self.ap.fast_forward(delta_us)
        for station in self.stations.values():
            station.fast_forward(delta_us)

    @property
    def measured_us(self) -> float:
        return self.sim.now - self._measure_start_us

    # Empty-window convention: before :meth:`run` has advanced past the
    # warm-up, ``measured_us`` is 0 and every per-window metric below
    # reports 0.0 — uniformly, never a ZeroDivisionError.  The explicit
    # guards keep the contract visible (and independent of how the
    # underlying monitors handle degenerate denominators).
    def throughputs_mbps(self) -> Dict[str, float]:
        """Per-flow goodput over the measurement window (0.0 each when
        the window is empty)."""
        if self.measured_us <= 0:
            return {f.name: 0.0 for f in self.flows}
        return {
            f.name: f.stats.throughput_mbps(self.measured_us) for f in self.flows
        }

    def total_throughput_mbps(self) -> float:
        return sum(self.throughputs_mbps().values())

    def station_throughputs_mbps(self) -> Dict[str, float]:
        """Goodput summed per station (0.0 each on an empty window)."""
        result: Dict[str, float] = {}
        measured = self.measured_us
        for flow in self.flows:
            key = flow.station.address
            gained = (
                flow.stats.throughput_mbps(measured) if measured > 0 else 0.0
            )
            result[key] = result.get(key, 0.0) + gained
        return result

    def _occupancy_keys(self) -> List[str]:
        """Stations an occupancy report must cover: the currently
        associated ones (insertion order) plus any departed station
        that still has attributed airtime in the window — a guest that
        transmitted and then truly left must not report 0.000."""
        keys = list(self.stations)
        present = set(keys)
        keys.extend(s for s in self.usage.stations() if s not in present)
        return keys

    def occupancy_fractions(self) -> Dict[str, float]:
        """Per-station channel occupancy as a fraction of elapsed time
        (0.0 each when the measurement window is empty)."""
        if self.measured_us <= 0:
            return {s: 0.0 for s in self._occupancy_keys()}
        return {
            s: self.usage.fraction_of_time(s, self.measured_us)
            for s in self._occupancy_keys()
        }

    def occupancy_shares(self) -> Dict[str, float]:
        """Per-station share of the total attributed channel time (0.0
        each when the measurement window is empty)."""
        if self.measured_us <= 0:
            return {s: 0.0 for s in self._occupancy_keys()}
        return {
            s: self.usage.fraction_of_busy(s) for s in self._occupancy_keys()
        }
