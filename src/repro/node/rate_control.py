"""Automatic rate control.

The paper (Section 1) notes that vendors implement automatic rate
selection — ARF-style "step down after consecutive failures, probe up
after consecutive successes" (Kamerman & Monteban's WaveLAN-II scheme,
the paper's reference [16]) — and that users may also pin rates
manually.  Both are provided, plus an SNR-threshold controller used by
scenario builders to initialize rates from node positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class RateController:
    """Interface: per-destination transmit rate selection."""

    def rate_for(self, dst: str) -> float:
        raise NotImplementedError

    def on_exchange(self, dst: str, success: bool, attempts: int) -> None:
        """Feedback after each MAC exchange (attempts >= 1)."""


class FixedRate(RateController):
    """Manually pinned rates (the paper's controlled experiments)."""

    def __init__(self, default_mbps: float = 11.0, table: Optional[Dict[str, float]] = None) -> None:
        self.default_mbps = default_mbps
        self.table: Dict[str, float] = dict(table or {})

    def set_rate(self, dst: str, mbps: float) -> None:
        self.table[dst] = mbps

    def rate_for(self, dst: str) -> float:
        return self.table.get(dst, self.default_mbps)


@dataclass
class _ArfState:
    rate_index: int
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    probing: bool = False


class ArfController(RateController):
    """Automatic Rate Fallback.

    Steps down one rate after ``down_threshold`` consecutive failed
    transmissions; steps up (a probe) after ``up_threshold`` consecutive
    successes; a failure on the probe's first exchange steps straight
    back down.
    """

    def __init__(
        self,
        rates: Optional[Sequence[float]] = None,
        *,
        start_mbps: Optional[float] = None,
        up_threshold: int = 10,
        down_threshold: int = 2,
    ) -> None:
        from repro.phy.rates import DOT11B_RATES

        self.rates: List[float] = sorted(
            rates if rates is not None else [r.mbps for r in DOT11B_RATES]
        )
        if not self.rates:
            raise ValueError("need at least one rate")
        if up_threshold < 1 or down_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        if start_mbps is None:
            self._start_index = len(self.rates) - 1
        else:
            self._start_index = self.rates.index(start_mbps)
        self._state: Dict[str, _ArfState] = {}
        self.rate_changes = 0

    def _get(self, dst: str) -> _ArfState:
        state = self._state.get(dst)
        if state is None:
            state = _ArfState(self._start_index)
            self._state[dst] = state
        return state

    def rate_for(self, dst: str) -> float:
        return self.rates[self._get(dst).rate_index]

    def on_exchange(self, dst: str, success: bool, attempts: int) -> None:
        state = self._get(dst)
        failures = attempts - 1 if success else attempts
        # Process the per-attempt history: failures first, then the
        # terminal success (if any).
        for _ in range(failures):
            self._one_failure(state)
        if success:
            self._one_success(state)

    def _one_failure(self, state: _ArfState) -> None:
        state.consecutive_successes = 0
        if state.probing:
            # Probe failed: fall straight back.
            state.probing = False
            self._step_down(state)
            state.consecutive_failures = 0
            return
        state.consecutive_failures += 1
        if state.consecutive_failures >= self.down_threshold:
            self._step_down(state)
            state.consecutive_failures = 0

    def _one_success(self, state: _ArfState) -> None:
        state.consecutive_failures = 0
        state.probing = False
        state.consecutive_successes += 1
        if state.consecutive_successes >= self.up_threshold:
            state.consecutive_successes = 0
            if state.rate_index < len(self.rates) - 1:
                state.rate_index += 1
                state.probing = True
                self.rate_changes += 1

    def _step_down(self, state: _ArfState) -> None:
        if state.rate_index > 0:
            state.rate_index -= 1
            self.rate_changes += 1


class SnrRateController(RateController):
    """Pick the highest rate sustaining a target PER at the link's SNR.

    A stateless controller driven by a
    :class:`repro.channel.RadioEnvironment`; scenario builders use it to
    derive initial/pinned rates from geometry, and it also serves as an
    idealized "oracle" rate-adaptation baseline.
    """

    def __init__(
        self,
        environment,
        src: str,
        rates: Optional[Sequence[float]] = None,
        *,
        frame_bytes: int = 1500,
        target_per: float = 0.1,
    ) -> None:
        from repro.phy.rates import DOT11B_RATES

        self.environment = environment
        self.src = src
        self.rates = sorted(
            rates if rates is not None else [r.mbps for r in DOT11B_RATES]
        )
        self.frame_bytes = frame_bytes
        self.target_per = target_per

    def rate_for(self, dst: str) -> float:
        from repro.phy.modulation import highest_rate_for_snr

        snr = self.environment.snr_db(self.src, dst)
        return highest_rate_for_snr(
            snr, self.rates, frame_bytes=self.frame_bytes,
            target_per=self.target_per,
        )
