"""Nodes: stations, access points, wired hosts and rate control."""

from repro.node.rate_control import (
    RateController,
    FixedRate,
    ArfController,
    SnrRateController,
)
from repro.node.station import Station
from repro.node.access_point import AccessPoint
from repro.node.wired_host import WiredHost
from repro.node.cell import Cell, FlowHandle

__all__ = [
    "RateController",
    "FixedRate",
    "ArfController",
    "SnrRateController",
    "Station",
    "AccessPoint",
    "WiredHost",
    "Cell",
    "FlowHandle",
]
