"""Compile a campus :class:`~repro.scenario.spec.ScenarioSpec`.

The ESS twin of :class:`repro.scenario.builder.ScenarioRuntime`: cells
are created in spec order (each station followed immediately by its
flows, the same boring sequence the single-cell builder pins), the
adjacency is wired, and the timeline is scheduled on the shared kernel
at category ``OTHER``.

Roam semantics (:class:`~repro.scenario.spec.RoamEvent`): at ``at_s``
the station's sources are quiesced and the *source* cell tears it down
through the ordinary disassociate path — queue flushed back to the
pool, TBR bucket retired with its rate redistributed, MAC detached.
``delay_s`` later (association latency; builder machinery, not a
timeline event) a fresh station object associates in the destination
cell — new MAC state, new queue, and under TBR one fresh ``T_init``
grant — and the station's spec'd flows restart under ``@r<n>``
identities, sharing the rejoin sequence so leave/rejoin and roam cycles
never collide on a flow name.

Leave/rejoin/rate-switch/traffic events resolve the station's *current*
cell through the campus membership map, so they follow a roamer around.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.campus.core import Campus
from repro.node.cell import FlowHandle
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.spec import (
    FlowSpec,
    LeaveEvent,
    RateSwitchEvent,
    RejoinEvent,
    RoamEvent,
    ScenarioSpec,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
)
from repro.sim import EventCategory, us_from_s


class CampusRuntime:
    """A compiled campus scenario: cells, membership and the timeline.

    Mirrors :class:`~repro.scenario.builder.ScenarioRuntime`'s contract
    (``run()``, ``timeline_fired``, ``pool_leaked()``,
    ``station_rates_mbps()``) so the scenario runner can drive either.
    ``sanitize``/``fast_forward`` default to the same environment
    switches; fast-forward *inhibits* on campus workloads — the engine
    has no multi-cell planner — so flagged runs are byte-identical to
    unflagged ones.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        sanitize: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
    ) -> None:
        spec.validate()
        if spec.campus is None:
            raise ValueError("CampusRuntime needs a spec with a campus")
        self.spec = spec
        if sanitize is None:
            from repro.sim.sanitizer import sanitize_enabled

            sanitize = sanitize_enabled()
        self.sanitize = sanitize
        self.sanitizer = None
        if fast_forward is None:
            from repro.sim.steady import fastforward_enabled

            fast_forward = fastforward_enabled()
        #: recorded for reporting; the engine never engages (inhibit-by-
        #: construction keeps flagged campus runs byte-identical).
        self.fast_forward = fast_forward
        self.campus = Campus(
            seed=spec.seed,
            scheduler=spec.scheduler,
            tbr_config=spec.tbr_config,
            phy=spec.phy,
        )
        single = len(spec.campus.cells) == 1
        self._active: Dict[str, List[FlowHandle]] = {}
        self._spec_flows: Dict[str, List[FlowSpec]] = {}
        self._station_specs: Dict[str, StationSpec] = {}
        #: station -> the cell it last associated in (rejoin target).
        self._last_cells: Dict[str, str] = {}
        self._burst_seq: Dict[str, int] = {}
        self._rejoin_seq: Dict[str, int] = {}
        self._departed: Set[str] = set()
        self.timeline_fired = 0
        self.roams_fired = 0

        for cell_spec in spec.campus.cells:
            self.campus.add_cell(
                cell_spec.name,
                channel=cell_spec.channel,
                ap_address=(
                    cell_spec.ap_address
                    if cell_spec.ap_address is not None
                    # One lone cell keeps the canonical "ap" address so
                    # the campus path stays byte-identical to the plain
                    # single-cell path (the address names the AP MAC's
                    # RNG stream).
                    else ("ap" if single else f"ap@{cell_spec.name}")
                ),
            )
            for station in cell_spec.stations:
                self._add_station(
                    cell_spec.name,
                    station,
                    [
                        f
                        for f in cell_spec.flows
                        if f.station == station.name
                    ],
                )
        for a, b in spec.campus.adjacency:
            self.campus.connect(a, b)
        # Stable sort: simultaneous events fire in spec order.
        for event in sorted(spec.timeline, key=lambda e: e.at_s):
            self.campus.sim.schedule(
                us_from_s(event.at_s),
                self._fire,
                event,
                category=EventCategory.OTHER,
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_station(
        self,
        cell_name: str,
        station: StationSpec,
        flows: List[FlowSpec],
        suffix: str = "",
    ) -> None:
        self.campus.add_station(
            cell_name,
            station.name,
            rate_mbps=station.rate_mbps,
            downlink_rate_mbps=station.downlink_rate_mbps,
            queue_capacity=station.queue_capacity,
            cooperate_with_tbr=station.cooperate_with_tbr,
        )
        self._station_specs[station.name] = station
        self._spec_flows[station.name] = list(flows)
        self._last_cells[station.name] = cell_name
        self._active[station.name] = []
        for flow, name in zip(
            flows, ScenarioRuntime._flow_names(flows, suffix)
        ):
            self._start_flow(flow, name=name)

    def _start_flow(
        self, flow: FlowSpec, name: Optional[str] = None
    ) -> FlowHandle:
        cell = self.campus.cell_of(flow.station)
        station = cell.stations[flow.station]
        if flow.kind == "tcp":
            handle = cell.tcp_flow(
                station,
                direction=flow.direction,
                app=flow.app,
                task_bytes=flow.task_bytes,
                paced_mbps=flow.rate_mbps if flow.app == "paced" else None,
                name=name,
            )
        else:
            handle = cell.udp_flow(
                station,
                direction=flow.direction,
                rate_mbps=flow.rate_mbps,
                payload_bytes=flow.payload_bytes,
                name=name,
            )
        self._active[flow.station].append(handle)
        return handle

    # ------------------------------------------------------------------
    # timeline execution
    # ------------------------------------------------------------------
    def _fire(self, event) -> None:
        self.timeline_fired += 1
        if isinstance(event, RoamEvent):
            self._roam(event)
        elif isinstance(event, LeaveEvent):
            self._leave(event.station)
        elif isinstance(event, RejoinEvent):
            self._rejoin(event.station)
        elif isinstance(event, RateSwitchEvent):
            self._switch_rate(event)
        elif isinstance(event, TrafficOffEvent):
            self._quiesce_station(event.station)
        elif isinstance(event, TrafficOnEvent):
            self._burst_on(event.station)
        else:  # pragma: no cover - spec.validate() rejects other kinds
            raise TypeError(f"unknown campus timeline event {event!r}")

    def _roam(self, event: RoamEvent) -> None:
        """Disassociate from the source cell now; land later."""
        self.roams_fired += 1
        name = event.station
        self._quiesce_station(name)
        self.campus.remove_station(name)
        # The landing is builder machinery (like an outage recovery):
        # it rides category OTHER but does not count as timeline_fired.
        self.campus.sim.schedule(
            us_from_s(event.delay_s),
            self._land,
            name,
            event.to_cell,
            category=EventCategory.OTHER,
        )

    def _land(self, name: str, to_cell: str) -> None:
        """Associate ``name`` in ``to_cell`` with fresh flow identities."""
        seq = self._rejoin_seq.get(name, 0) + 1
        self._rejoin_seq[name] = seq
        spec = self._station_specs[name]
        flows = self._spec_flows.get(name, [])
        self._add_station(to_cell, spec, flows, suffix=f"@r{seq}")

    def _leave(self, name: str) -> None:
        self._quiesce_station(name)
        self._departed.add(name)
        self.campus.remove_station(name)

    def _rejoin(self, name: str) -> None:
        """Revive a departed station into the cell it last occupied.

        Campus membership was already popped on leave, so the landing
        cell is the spec-validated ``last_cell`` — which the runtime
        tracks implicitly: validation guarantees the rejoin follows the
        membership history, so we replay it from ``_last_cell``."""
        self._departed.discard(name)
        cell_name = self._last_cells[name]
        seq = self._rejoin_seq.get(name, 0) + 1
        self._rejoin_seq[name] = seq
        spec = self._station_specs[name]
        flows = self._spec_flows.get(name, [])
        self._add_station(cell_name, spec, flows, suffix=f"@r{seq}")

    def _quiesce_station(self, name: str) -> None:
        for handle in self._active.get(name, ()):
            ScenarioRuntime._quiesce_flow(handle)
        self._active[name] = []

    def _switch_rate(self, event: RateSwitchEvent) -> None:
        from repro.node.rate_control import FixedRate

        cell = self.campus.cell_of(event.station)
        station = cell.stations[event.station]
        controller = station.rate_controller
        if not isinstance(controller, FixedRate):
            raise TypeError(
                f"rate switch for {event.station!r} needs a FixedRate "
                f"controller, found {type(controller).__name__}"
            )
        controller.default_mbps = event.rate_mbps
        controller.table.clear()
        downlink = (
            event.downlink_rate_mbps
            if event.downlink_rate_mbps is not None
            else event.rate_mbps
        )
        cell.ap.set_downlink_rate(event.station, downlink)

    def _burst_on(self, name: str) -> None:
        if name in self._departed or name not in self.campus.membership:
            return
        self._quiesce_station(name)
        seq = self._burst_seq.get(name, 0) + 1
        self._burst_seq[name] = seq
        flows = self._spec_flows.get(name, [])
        for flow, flow_name in zip(
            flows, ScenarioRuntime._flow_names(flows, suffix=f"@{seq}")
        ):
            self._start_flow(flow, name=flow_name)

    # ------------------------------------------------------------------
    # running and reporting
    # ------------------------------------------------------------------
    def run(self) -> None:
        if self.sanitize and self.sanitizer is None:
            from repro.campus.sanitizer import CampusSanitizer

            self.sanitizer = CampusSanitizer(self.campus, self).install()
        try:
            self.campus.run(
                seconds=self.spec.seconds,
                warmup_seconds=self.spec.warmup_seconds,
            )
        finally:
            if self.sanitizer is not None:
                self.sanitizer.uninstall()
        if self.sanitizer is not None:
            self.sanitizer.finalize()

    def pool_leaked(self) -> int:
        """Summed end-of-run pooled-packet leak across every cell."""
        from repro.sim.sanitizer import pool_leak

        return sum(
            pool_leak(cell) for cell in self.campus.cells.values()
        )

    def station_rates_mbps(self) -> Dict[str, float]:
        rates: Dict[str, float] = {}
        for cell in self.campus.cells.values():
            for name, station in cell.stations.items():
                rates[name] = station.rate_controller.rate_for(
                    station.ap_address
                )
        return rates
