"""Cross-cell invariants for campus runs.

Composes one per-cell :class:`~repro.sim.sanitizer.RuntimeSanitizer`
(its TBR accounting walk — rates non-negative, per-cell sum ≈ 1, token
balances bounded, no stranded live share) with the campus-level checks
only an ESS can break:

* **single membership** — every station is a member of exactly one
  cell, and its MAC is attached to exactly that cell's channel;
* **no delivery into a departed cell** — the kernel never fires an
  event on a MAC that detached from its channel (a roam's source-side
  teardown must be complete);
* **per-cell packet conservation** — at end of run every cell's packet
  pool balances to zero, individually, so a roam cannot launder a leak
  from one cell into another's surplus.

Like the single-cell sanitizer this is observation only: no RNG draws,
no scheduling, no mutation — a sanitized campus run is byte-identical
to an unsanitized one.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.sim.sanitizer import (
    _BENIGN_DETACHED,
    InvariantViolation,
    RuntimeSanitizer,
    live_pooled_packets,
    pool_leak,
)


class CampusSanitizer:
    """Invariant checks for a whole campus, on the shared kernel hook."""

    def __init__(
        self,
        campus: Any,
        runtime: Optional[Any] = None,
        *,
        check_interval_us: float = 10_000.0,
    ) -> None:
        from repro.mac.dcf import DcfMac

        self.campus = campus
        self.runtime = runtime
        self.check_interval_us = check_interval_us
        self._mac_type = DcfMac
        #: uninstalled per-cell sanitizers, reused for their TBR walk.
        self._cell_checkers: Dict[str, RuntimeSanitizer] = {
            name: RuntimeSanitizer(cell)
            for name, cell in campus.cells.items()
        }
        self._last_time = float("-inf")
        self._next_check = float("-inf")
        self.events_seen = 0
        self.checks_run = 0

    # ------------------------------------------------------------------
    def install(self) -> "CampusSanitizer":
        self.campus.sim.trace = self._trace
        return self

    def uninstall(self) -> None:
        if self.campus.sim.trace is self._trace:
            self.campus.sim.trace = None

    # ------------------------------------------------------------------
    def _trace(self, time: float, callback: Any) -> None:
        self.events_seen += 1
        if time < self._last_time:
            raise InvariantViolation(
                "kernel", time,
                f"event time regressed ({self._last_time:.3f}us -> "
                f"{time:.3f}us)",
            )
        self._last_time = time

        # A MAC holds a reference to its own cell's channel, so the
        # detached check is cell-correct for free: a station that
        # roamed away must not receive anything in the cell it left.
        target = getattr(callback, "__self__", None)
        if isinstance(target, self._mac_type):
            if not target.channel.is_attached(target):
                name = getattr(callback, "__name__", "?")
                if name not in _BENIGN_DETACHED:
                    raise InvariantViolation(
                        f"mac/{target.address}", time,
                        f"event {name!r} delivered to a detached MAC",
                    )

        if time >= self._next_check:
            self._next_check = time + self.check_interval_us
            self._check_campus(time)

    # ------------------------------------------------------------------
    def _check_campus(self, time: float) -> None:
        self.checks_run += 1
        # Per-cell TBR accounting (rates >= 0, sum ~ 1, balances
        # bounded, live share whole) through the uninstalled per-cell
        # checkers — their walk reads cell.stations, which is exactly
        # the per-cell membership.
        for checker in self._cell_checkers.values():
            checker._check_tbr(time)

        # Single membership: the campus map and the cells' own station
        # tables must agree — a station lives in exactly one cell, and
        # its MAC is attached to that cell's channel.
        membership = self.campus.membership
        seen: Dict[str, str] = {}
        for cell_name, cell in self.campus.cells.items():
            for station_name, station in cell.stations.items():
                if station_name in seen:
                    raise InvariantViolation(
                        f"campus/{station_name}", time,
                        f"member of two cells ({seen[station_name]!r} "
                        f"and {cell_name!r})",
                    )
                seen[station_name] = cell_name
                if membership.get(station_name) != cell_name:
                    raise InvariantViolation(
                        f"campus/{station_name}", time,
                        f"cell {cell_name!r} holds the station but the "
                        f"membership map says "
                        f"{membership.get(station_name)!r}",
                    )
                if not cell.channel.is_attached(station.mac):
                    raise InvariantViolation(
                        f"campus/{station_name}", time,
                        f"member of {cell_name!r} but its MAC is not "
                        "attached to the cell's channel",
                    )
        for station_name, cell_name in membership.items():
            if station_name not in seen:
                raise InvariantViolation(
                    f"campus/{station_name}", time,
                    f"membership map names {cell_name!r} but no cell "
                    "holds the station",
                )

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Per-cell packet conservation at end of run."""
        self.uninstall()
        for cell_name, cell in self.campus.cells.items():
            leak = pool_leak(cell)
            if leak != 0:
                pool = cell.ap.packet_pool
                raise InvariantViolation(
                    f"packet-pool/{cell_name}", self.campus.sim.now,
                    f"{leak:+d} pooled packets unaccounted for "
                    f"(allocated={pool.allocated} reused={pool.reused} "
                    f"recycled={pool.recycled}, "
                    f"live={len(live_pooled_packets(cell))})",
                )
        self._check_campus(self.campus.sim.now)
