"""``Campus`` — N cells, one kernel, co-channel interference.

The extended service set the paper's single-cell experiments live
inside: every :class:`~repro.node.cell.Cell` keeps its own AP, channel,
scheduler and usage ledger, but all of them share one
:class:`~repro.sim.Simulator`, so cross-cell timing (a roam landing, a
co-channel collision) is exact, not approximated.

Interference model: each cell sits on an RF channel; an *adjacency*
between two cells says they are physically close enough to hear each
other.  When an adjacent pair shares an RF channel, their media are
coupled both ways (:meth:`repro.channel.medium.Channel.couple`): a
transmission in either cell marks the other's medium busy for its whole
duration and collides with anything on the air there.  Because MAC
addresses are unique campus-wide, a foreign clean unicast finds no
local destination — it costs carrier time, which is exactly the
co-channel anomaly the ESS layer exists to expose.

A station is a member of exactly one cell at a time; roaming
(disassociate → association delay → associate) is driven by the
scenario layer (:mod:`repro.campus.builder`), with the membership map
kept here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.tbr import TbrConfig
from repro.node.cell import Cell
from repro.node.station import Station
from repro.phy.phy import DOT11B_LONG_PREAMBLE, PhyParams
from repro.sim import Simulator, us_from_s


class Campus:
    """A set of cells on one shared simulator."""

    def __init__(
        self,
        seed: int = 0,
        *,
        phy: PhyParams = DOT11B_LONG_PREAMBLE,
        scheduler: Union[str, object] = "fifo",
        tbr_config: Optional[TbrConfig] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.phy = phy
        self.scheduler_spec = scheduler
        self.tbr_config = tbr_config
        self.cells: Dict[str, Cell] = {}
        #: cell name -> RF channel number.
        self.channel_map: Dict[str, int] = {}
        #: unordered adjacent pairs, stored sorted.
        self.adjacency: Set[Tuple[str, str]] = set()
        #: station name -> cell name (exactly one cell per station).
        self.membership: Dict[str, str] = {}
        self._measure_start_us = 0.0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: str,
        *,
        channel: int = 1,
        ap_address: Optional[str] = None,
    ) -> Cell:
        """Create a cell on RF ``channel``.

        The AP address defaults to ``ap@<name>`` — unique across the
        campus, which coupled media require.  Pass ``ap_address="ap"``
        for a single-cell campus that must stay byte-identical to a
        standalone :class:`Cell` (the AP address names the AP MAC's RNG
        stream, so it is part of the byte-identity contract).
        """
        if name in self.cells:
            raise ValueError(f"duplicate cell name {name!r}")
        if ap_address is None:
            ap_address = f"ap@{name}"
        for other in self.cells.values():
            if other.ap.address == ap_address:
                raise ValueError(f"duplicate AP address {ap_address!r}")
        cell = Cell(
            scheduler=self.scheduler_spec,
            tbr_config=self.tbr_config,
            phy=self.phy,
            sim=self.sim,
            ap_address=ap_address,
        )
        self.cells[name] = cell
        self.channel_map[name] = channel
        return cell

    def connect(self, a: str, b: str) -> None:
        """Declare cells ``a`` and ``b`` adjacent (within RF earshot).

        Their media couple — both directions — only when the two cells
        share an RF channel; otherwise the adjacency is recorded but
        inert (a future channel re-plan could activate it).
        """
        for name in (a, b):
            if name not in self.cells:
                raise ValueError(f"unknown cell {name!r}")
        if a == b:
            raise ValueError(f"cell {a!r} cannot neighbour itself")
        pair = (a, b) if a <= b else (b, a)
        if pair in self.adjacency:
            return
        self.adjacency.add(pair)
        if self.channel_map[a] == self.channel_map[b]:
            self.cells[a].channel.couple(self.cells[b].channel)
            self.cells[b].channel.couple(self.cells[a].channel)

    def coupled_pairs(self) -> List[Tuple[str, str]]:
        """Adjacent pairs that actually share an RF channel (sorted)."""
        return sorted(
            pair
            for pair in self.adjacency
            if self.channel_map[pair[0]] == self.channel_map[pair[1]]
        )

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def cell_of(self, station: str) -> Cell:
        return self.cells[self.membership[station]]

    def add_station(self, cell_name: str, name: str, **kwargs) -> Station:
        """Associate a station with ``cell_name`` (campus-unique name)."""
        if cell_name not in self.cells:
            raise ValueError(f"unknown cell {cell_name!r}")
        if name in self.membership:
            raise ValueError(
                f"station {name!r} is already a member of "
                f"{self.membership[name]!r}"
            )
        station = self.cells[cell_name].add_station(name, **kwargs)
        self.membership[name] = cell_name
        return station

    def remove_station(self, name: str) -> None:
        """True disassociation from whichever cell holds the station."""
        cell_name = self.membership.pop(name, None)
        if cell_name is None:
            return
        self.cells[cell_name].remove_station(name)

    # ------------------------------------------------------------------
    # running and measuring
    # ------------------------------------------------------------------
    def run(self, seconds: float, *, warmup_seconds: float = 0.0) -> None:
        """Run ``warmup_seconds`` then measure for ``seconds`` — one
        kernel drive for the whole campus."""
        if warmup_seconds > 0:
            self.sim.run(until=self.sim.now + us_from_s(warmup_seconds))
            self.reset_measurements()
        self.sim.run(until=self.sim.now + us_from_s(seconds))

    def reset_measurements(self) -> None:
        self._measure_start_us = self.sim.now
        for cell in self.cells.values():
            cell.reset_measurements()

    @property
    def measured_us(self) -> float:
        return self.sim.now - self._measure_start_us

    # ------------------------------------------------------------------
    # campus-wide reporting (merged across cells)
    # ------------------------------------------------------------------
    def throughputs_mbps(self) -> Dict[str, float]:
        """Per-flow goodput merged across cells (flow names are unique
        campus-wide because station names are)."""
        merged: Dict[str, float] = {}
        for cell in self.cells.values():
            merged.update(cell.throughputs_mbps())
        return merged

    def station_throughputs_mbps(self) -> Dict[str, float]:
        """Per-station goodput; a roamer's bytes in every cell it
        visited sum under its one name."""
        merged: Dict[str, float] = {}
        for cell in self.cells.values():
            for name, mbps in cell.station_throughputs_mbps().items():
                merged[name] = merged.get(name, 0.0) + mbps
        return merged

    def occupancy_fractions(self) -> Dict[str, float]:
        """Per-station airtime as a fraction of measured time, summed
        over every cell that attributed airtime to the station (a
        roamer occupies the campus from two cells in one window)."""
        merged: Dict[str, float] = {}
        for cell in self.cells.values():
            for name, fraction in cell.occupancy_fractions().items():
                merged[name] = merged.get(name, 0.0) + fraction
        return merged

    def cell_occupancy_fractions(self) -> Dict[str, Dict[str, float]]:
        return {
            name: cell.occupancy_fractions()
            for name, cell in self.cells.items()
        }

    def cell_members(self) -> Dict[str, List[str]]:
        """Current membership, per cell (cells in creation order)."""
        members: Dict[str, List[str]] = {name: [] for name in self.cells}
        for station, cell_name in self.membership.items():
            members[cell_name].append(station)
        return members

    def cell_busy_fractions(self) -> Dict[str, float]:
        return {
            name: cell.channel.busy_fraction()
            for name, cell in self.cells.items()
        }
