"""The ESS layer: N cells, one kernel, roaming and co-channel coupling.

::

    from repro.campus import Campus, CampusRuntime

    campus = Campus(seed=1, scheduler="tbr")
    campus.add_cell("c0", channel=1)
    campus.add_cell("c1", channel=1)
    campus.connect("c0", "c1")          # couples: same RF channel
    campus.add_station("c0", "n1", rate_mbps=11.0)
    campus.run(seconds=5, warmup_seconds=1)

Scenario specs grow a ``campus`` section
(:class:`~repro.scenario.spec.CampusSpec`) compiled by
:class:`CampusRuntime`; ``python -m repro scenario run campus`` is the
command-line face and ``python -m repro campus-scaling`` the perf leg.
"""

from repro.campus.builder import CampusRuntime
from repro.campus.core import Campus
from repro.campus.sanitizer import CampusSanitizer

__all__ = ["Campus", "CampusRuntime", "CampusSanitizer"]
