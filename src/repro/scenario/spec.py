"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is a *complete*, frozen description of one
single-cell workload: the AP discipline, the stations with their PHY
rates, the traffic mix (TCP/UDP flows in either direction), and a
timeline of events that change the cell while it runs — stations
joining and leaving (churn), rate switches emulating mobility, and
traffic bursts turning on and off.

Specs are data, not code: the builder (:mod:`repro.scenario.builder`)
compiles a spec into a ready-to-run :class:`repro.node.cell.Cell`, and
the campaign subsystem ships specs to worker processes as job configs
(:func:`repro.campaign.job.freeze` handles the nested dataclasses).
Identity is *content*: two specs with the same frozen tree compare
equal, hash equal, and share a digest — which is exactly what makes
sweep results cacheable and coalescible.

Time convention: ``at_s`` timestamps are simulated seconds measured
from the start of the run, on the same clock as the warm-up — an event
at ``at_s=1.0`` in a spec with ``warmup_seconds=3`` fires during the
warm-up.  Events beyond ``warmup_seconds + seconds`` never fire.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.core.tbr import TbrConfig
from repro.phy.phy import DOT11B_LONG_PREAMBLE, PhyParams

SCHEDULERS = ("fifo", "rr", "drr", "tbr")
FLOW_KINDS = ("tcp", "udp")
DIRECTIONS = ("up", "down")
TCP_APPS = ("bulk", "task", "paced")


@dataclass(frozen=True)
class StationSpec:
    """One client station: a name and its (initial) PHY rates."""

    name: str
    rate_mbps: float = 11.0
    #: AP -> station rate; defaults to the uplink rate.
    downlink_rate_mbps: Optional[float] = None
    queue_capacity: int = 100
    cooperate_with_tbr: bool = False

    def validate(self) -> None:
        if not self.name:
            raise ValueError("station name must be non-empty")
        if self.rate_mbps <= 0:
            raise ValueError(f"station {self.name!r}: rate must be positive")
        if self.downlink_rate_mbps is not None and self.downlink_rate_mbps <= 0:
            raise ValueError(
                f"station {self.name!r}: downlink rate must be positive"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"station {self.name!r}: queue capacity must be >= 1"
            )


@dataclass(frozen=True)
class FlowSpec:
    """One flow attached to a station.

    ``rate_mbps`` is the offered rate for UDP flows and the pacing rate
    for TCP ``app="paced"`` flows; bulk TCP ignores it (infinite
    backlog).  ``task_bytes`` sizes a TCP ``app="task"`` transfer.
    """

    station: str
    kind: str = "tcp"  # "tcp" | "udp"
    direction: str = "up"
    app: str = "bulk"  # tcp only: "bulk" | "task" | "paced"
    rate_mbps: float = 4.0
    payload_bytes: int = 1472  # udp datagram payload
    task_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.kind not in FLOW_KINDS:
            raise ValueError(f"flow kind must be one of {FLOW_KINDS}")
        if self.direction not in DIRECTIONS:
            raise ValueError(f"flow direction must be one of {DIRECTIONS}")
        if self.kind == "tcp":
            if self.app not in TCP_APPS:
                raise ValueError(f"tcp app must be one of {TCP_APPS}")
            if self.app == "task" and (
                self.task_bytes is None or self.task_bytes <= 0
            ):
                raise ValueError("task flows need positive task_bytes")
            if self.app == "paced" and self.rate_mbps <= 0:
                raise ValueError("paced flows need positive rate_mbps")
        else:
            if self.rate_mbps <= 0:
                raise ValueError("udp flows need positive rate_mbps")
            if self.payload_bytes <= 0:
                raise ValueError("udp payload_bytes must be positive")


# ----------------------------------------------------------------------
# timeline events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinEvent:
    """A station (plus its flows) enters the cell at ``at_s``."""

    at_s: float
    station: StationSpec
    flows: Tuple[FlowSpec, ...] = ()


@dataclass(frozen=True)
class LeaveEvent:
    """The station truly disassociates at ``at_s``.

    Departure runs through every layer: traffic sources are quiesced
    (no new data offered), then :meth:`repro.node.cell.Cell.
    remove_station` tears the station down — its MAC cancels pending
    events and detaches from the channel, the AP scheduler flushes the
    station's queued downlink packets back to the packet pool, and
    under TBR the token bucket is retired with its rate redistributed
    to the remaining stations.  A frame already committed to the air
    still ends normally; everything else is abandoned.  Use
    :class:`TrafficOffEvent` for a source-side pause that keeps the
    association alive.
    """

    at_s: float
    station: str


@dataclass(frozen=True)
class RejoinEvent:
    """A previously-departed station re-associates at ``at_s``.

    The original :class:`StationSpec` is revived as a fresh station
    (new MAC state, new queue, and — under TBR — a fresh
    ``initial_tokens_us`` grant, exactly once) and its spec'd flows are
    re-instantiated under ``<name>@r<n>`` identities so RNG streams
    stay deterministic across leave/rejoin cycles.
    """

    at_s: float
    station: str


@dataclass(frozen=True)
class RateSwitchEvent:
    """The station's PHY rate changes at ``at_s`` (mobility emulation).

    Both directions switch: the station's uplink rate and the AP's
    downlink rate toward it (``downlink_rate_mbps`` overrides the
    latter when the two should differ).
    """

    at_s: float
    station: str
    rate_mbps: float
    downlink_rate_mbps: Optional[float] = None


@dataclass(frozen=True)
class TrafficOffEvent:
    """Quiesce the station's active flows at ``at_s`` (burst gap)."""

    at_s: float
    station: str


@dataclass(frozen=True)
class TrafficOnEvent:
    """(Re)start the station's spec'd flows at ``at_s``.

    Each burst instantiates fresh sources under unique flow names
    (``<station>/<kind>-<direction>@<n>``), so RNG streams — and with
    them the whole run — stay deterministic across on/off cycles.
    """

    at_s: float
    station: str


@dataclass(frozen=True)
class ApOutageEvent:
    """The AP dies at ``at_s`` and recovers ``duration_s`` later.

    An ungraceful, cell-wide failure: the AP's MAC shuts down mid-grant
    (an in-flight downlink frame is aborted on the air and never
    delivers), every queued downlink packet flushes back to the
    :class:`~repro.transport.packet.PacketPool`, and all associated
    stations lose their association — queues flushed, token buckets
    retired — through the same teardown path as :class:`LeaveEvent`.

    On recovery the AP's MAC restarts and each survivor re-associates
    after an individual jittered delay in ``[0, rejoin_jitter_s]``
    (spec-seeded, so outage runs stay deterministic), receiving — under
    TBR — a fresh ``initial_tokens_us`` grant exactly once, exactly as
    a :class:`RejoinEvent` would.  The recovery and the per-station
    rejoins are builder machinery, not timeline events: only the outage
    itself counts toward ``timeline_fired``.

    Other timeline events may not fire inside the outage's exclusion
    window ``[at_s, at_s + duration_s + rejoin_jitter_s]`` — the cell's
    population is in flux there and event semantics would be ambiguous.
    """

    at_s: float
    duration_s: float
    #: each survivor rejoins at ``at_s + duration_s + U[0, jitter]``.
    rejoin_jitter_s: float = 0.2


@dataclass(frozen=True)
class StationCrashEvent:
    """The station vanishes at ``at_s`` *without* disassociating.

    Unlike :class:`LeaveEvent` nothing is torn down on the AP side: the
    station's MAC simply stops answering, so its queue, token bucket
    and token rate stay allocated — stranded — until the AP-side
    inactivity reaper (see :class:`ReaperSpec`) detects the dead peer
    from consecutive retry-limit exhaustions plus an idle timeout and
    drives the ordinary ``disassociate`` path, renormalizing survivor
    shares to ``1/n_active``.  Downlink flows toward the crashed
    station keep offering traffic (that is what arms the reaper);
    uplink sources are quiesced, since a dead station sends nothing.
    Crashed stations never rejoin.
    """

    at_s: float
    station: str


@dataclass(frozen=True)
class RoamEvent:
    """The station hands off between cells at ``at_s`` (campus only).

    Compiled as disassociate(``from_cell``) → ``delay_s`` of
    association latency → associate(``to_cell``): the source cell tears
    the station down through the ordinary leave path (queue flushed,
    TBR bucket retired, MAC detached), and after the delay a fresh
    station object associates in the destination — a new queue, one new
    ``T_init`` grant under TBR, and the station's spec'd flows
    restarted under ``@r<n>`` identities.  The landing is builder
    machinery; only the roam itself counts toward ``timeline_fired``.
    """

    at_s: float
    station: str
    from_cell: str
    to_cell: str
    #: scan/authenticate/associate latency before the landing.
    delay_s: float = 0.05


@dataclass(frozen=True)
class CellSpec:
    """One cell of a campus: its RF channel and initial population."""

    name: str
    #: RF channel number (cells sharing one interfere when adjacent).
    channel: int = 1
    #: AP MAC address; ``None`` derives ``ap@<name>`` — except in a
    #: single-cell campus, where it stays ``"ap"`` so the campus path
    #: is byte-identical to the plain single-cell path.
    ap_address: Optional[str] = None
    stations: Tuple[StationSpec, ...] = ()
    flows: Tuple[FlowSpec, ...] = ()

    def validate(self) -> None:
        if not self.name:
            raise ValueError("cell name must be non-empty")
        if self.channel < 1:
            raise ValueError(
                f"cell {self.name!r}: channel must be >= 1"
            )
        local: Dict[str, bool] = {}
        for station in self.stations:
            station.validate()
            if station.name in local:
                raise ValueError(
                    f"cell {self.name!r}: duplicate station "
                    f"{station.name!r}"
                )
            local[station.name] = True
        for flow in self.flows:
            flow.validate()
            if flow.station not in local:
                raise ValueError(
                    f"cell {self.name!r}: flow references station "
                    f"{flow.station!r} outside the cell"
                )


@dataclass(frozen=True)
class CampusSpec:
    """The ESS section of a :class:`ScenarioSpec`.

    ``adjacency`` lists unordered cell-name pairs that are physically
    close enough to interfere; a pair actually couples only when both
    cells sit on the same RF ``channel``.
    """

    cells: Tuple[CellSpec, ...]
    adjacency: Tuple[Tuple[str, str], ...] = ()

    def validate(self) -> None:
        if not self.cells:
            raise ValueError("campus needs at least one cell")
        names = set()
        stations = set()
        for cell in self.cells:
            cell.validate()
            if cell.name in names:
                raise ValueError(f"duplicate cell name {cell.name!r}")
            names.add(cell.name)
            for station in cell.stations:
                if station.name in stations:
                    raise ValueError(
                        f"station {station.name!r} appears in more "
                        "than one cell"
                    )
                stations.add(station.name)
        ap_addresses = set()
        for cell in self.cells:
            if cell.ap_address is None:
                continue
            if cell.ap_address in ap_addresses:
                raise ValueError(
                    f"duplicate AP address {cell.ap_address!r}"
                )
            ap_addresses.add(cell.ap_address)
        seen_pairs = set()
        for pair in self.adjacency:
            if len(pair) != 2:
                raise ValueError(f"adjacency entry {pair!r} is not a pair")
            a, b = pair
            if a == b:
                raise ValueError(f"cell {a!r} cannot neighbour itself")
            for name in (a, b):
                if name not in names:
                    raise ValueError(
                        f"adjacency references unknown cell {name!r}"
                    )
            key = (a, b) if a <= b else (b, a)
            if key in seen_pairs:
                raise ValueError(f"duplicate adjacency pair {key!r}")
            seen_pairs.add(key)


@dataclass(frozen=True)
class ReaperSpec:
    """AP-side inactivity reaper knobs (attach to ``ScenarioSpec``).

    The reaper disassociates a station once **both** hold: at least
    ``exhaustion_threshold`` consecutive retry-limit exhaustions toward
    it, and nothing heard from it for ``idle_timeout_s``.  Requiring
    the exhaustion evidence keeps merely-quiet stations (burst gaps,
    ``TrafficOffEvent``) safe from reaping.
    """

    exhaustion_threshold: int = 2
    idle_timeout_s: float = 0.5

    def validate(self) -> None:
        if self.exhaustion_threshold < 1:
            raise ValueError("reaper exhaustion_threshold must be >= 1")
        if self.idle_timeout_s <= 0:
            raise ValueError("reaper idle_timeout_s must be positive")


@dataclass(frozen=True)
class ChannelDegradeEvent:
    """The channel degrades at ``at_s`` for ``duration_s`` seconds.

    While the window is open, frames are lost i.i.d. with
    ``loss_probability`` — on every link when ``station`` is ``None``,
    or only between the named station and the AP (both directions) —
    emulating an interference burst or a fade.  The previous loss model
    is restored when the window closes (the restore is builder
    machinery, not a timeline event: it does not count toward
    ``timeline_fired``).  The loss RNG is seeded from the spec seed and
    the event's position, so degraded runs stay deterministic.
    """

    at_s: float
    duration_s: float
    loss_probability: float
    station: Optional[str] = None


TimelineEvent = Union[
    JoinEvent,
    LeaveEvent,
    RejoinEvent,
    RateSwitchEvent,
    TrafficOffEvent,
    TrafficOnEvent,
    ChannelDegradeEvent,
    ApOutageEvent,
    StationCrashEvent,
    RoamEvent,
]

#: Event kinds a campus timeline may carry.  Joins, outages, crashes
#: and degrades are single-cell semantics the ESS layer does not define
#: yet — validation rejects them rather than guessing.
CAMPUS_EVENTS = (
    RoamEvent,
    LeaveEvent,
    RejoinEvent,
    RateSwitchEvent,
    TrafficOffEvent,
    TrafficOnEvent,
)


@dataclass(frozen=True, eq=False)
class ScenarioSpec:
    """A complete, content-addressed description of one cell workload.

    Equality and hashing are by *content digest* (the same frozen-tree
    encoding the campaign cache uses), so specs work as dict keys and
    dedup naturally even though ``tbr_config`` and ``phy`` are nested
    dataclasses.
    """

    name: str
    scheduler: str = "fifo"
    tbr_config: Optional[TbrConfig] = None
    phy: PhyParams = DOT11B_LONG_PREAMBLE
    stations: Tuple[StationSpec, ...] = ()
    flows: Tuple[FlowSpec, ...] = ()
    timeline: Tuple[TimelineEvent, ...] = ()
    seconds: float = 10.0
    warmup_seconds: float = 0.0
    seed: int = 1
    #: AP-side inactivity reaper; ``None`` (the default) disables it,
    #: so specs without crash events behave exactly as before.
    reaper: Optional[ReaperSpec] = None
    #: ESS section: when set, the spec describes N cells on one shared
    #: kernel (stations and flows live inside ``campus.cells``, and the
    #: top-level ``stations``/``flows`` must stay empty).
    campus: Optional[CampusSpec] = None

    # ------------------------------------------------------------------
    # content identity
    # ------------------------------------------------------------------
    def _frozen_tree(self):
        from repro.campaign.job import freeze

        return freeze(self)

    @property
    def digest(self) -> str:
        """SHA-256 over the frozen spec tree (stable across processes)."""
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(
                repr(self._frozen_tree()).encode("utf-8")
            ).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return self.digest == other.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        """Total simulated time (warm-up plus measurement window)."""
        return self.warmup_seconds + self.seconds

    def validate(self) -> None:
        """Raise ``ValueError`` on any inconsistency a build would hit.

        Checks static shape *and* timeline causality: an event may only
        reference a station that exists (initially present or already
        joined) and has not left before the event fires.
        """
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r} (one of {SCHEDULERS})"
            )
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")
        if self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be >= 0")
        if self.reaper is not None:
            self.reaper.validate()
        if self.campus is not None:
            self._validate_campus()
            return

        present: Dict[str, bool] = {}  # name -> still active
        for station in self.stations:
            station.validate()
            if station.name in present:
                raise ValueError(f"duplicate station name {station.name!r}")
            present[station.name] = True
        for flow in self.flows:
            flow.validate()
            if flow.station not in present:
                raise ValueError(
                    f"flow references unknown station {flow.station!r}"
                )

        known_events = (
            JoinEvent,
            LeaveEvent,
            RejoinEvent,
            RateSwitchEvent,
            TrafficOffEvent,
            TrafficOnEvent,
            ChannelDegradeEvent,
            ApOutageEvent,
            StationCrashEvent,
        )
        for event in self.timeline:
            if not isinstance(event, known_events):
                raise ValueError(
                    f"unknown timeline event type {type(event).__name__}"
                )

        # AP outages freeze the whole cell's population; nothing else
        # may fire inside an outage's exclusion window (down time plus
        # the rejoin jitter tail), and windows must not overlap.
        outages = sorted(
            (e for e in self.timeline if isinstance(e, ApOutageEvent)),
            key=lambda e: e.at_s,
        )
        for outage in outages:
            if outage.duration_s <= 0:
                raise ValueError(
                    f"AP outage at {outage.at_s}s: duration_s must be "
                    "positive"
                )
            if outage.rejoin_jitter_s < 0:
                raise ValueError(
                    f"AP outage at {outage.at_s}s: rejoin_jitter_s must "
                    "be >= 0"
                )
        windows = [
            (o.at_s, o.at_s + o.duration_s + o.rejoin_jitter_s)
            for o in outages
        ]
        for (_, prev_end), (next_start, _) in zip(windows, windows[1:]):
            if next_start <= prev_end:
                raise ValueError(
                    f"AP outage at {next_start}s overlaps the previous "
                    "outage's exclusion window"
                )
        for event in self.timeline:
            if isinstance(event, ApOutageEvent):
                continue
            for start, end in windows:
                if start <= event.at_s <= end:
                    raise ValueError(
                        f"timeline event at {event.at_s}s falls inside "
                        f"the AP outage exclusion window "
                        f"[{start}s, {end}s]"
                    )

        crashed: set = set()
        for event in sorted(self.timeline, key=lambda e: e.at_s):
            if event.at_s < 0:
                raise ValueError("timeline event times must be >= 0")
            if isinstance(event, ApOutageEvent):
                continue
            if isinstance(event, JoinEvent):
                event.station.validate()
                if event.station.name in present:
                    raise ValueError(
                        f"join at {event.at_s}s: station "
                        f"{event.station.name!r} already exists"
                    )
                present[event.station.name] = True
                for flow in event.flows:
                    flow.validate()
                    if flow.station != event.station.name:
                        # The builder files join flows under the joiner
                        # for later quiesce/burst bookkeeping; a flow on
                        # another station would silently escape it.
                        raise ValueError(
                            f"join at {event.at_s}s: flow must belong to "
                            f"the joining station {event.station.name!r}, "
                            f"not {flow.station!r}"
                        )
            elif isinstance(event, ChannelDegradeEvent):
                if not 0.0 <= event.loss_probability <= 1.0:
                    raise ValueError(
                        f"channel degrade at {event.at_s}s: "
                        "loss_probability must be in [0, 1]"
                    )
                if event.duration_s <= 0:
                    raise ValueError(
                        f"channel degrade at {event.at_s}s: duration_s "
                        "must be positive"
                    )
                if event.station is not None and event.station not in present:
                    raise ValueError(
                        f"channel degrade at {event.at_s}s references "
                        f"unknown station {event.station!r}"
                    )
            else:
                active = present.get(event.station)
                if active is None:
                    raise ValueError(
                        f"timeline event at {event.at_s}s references "
                        f"unknown station {event.station!r}"
                    )
                if isinstance(event, RejoinEvent):
                    if event.station in crashed:
                        raise ValueError(
                            f"rejoin at {event.at_s}s: station "
                            f"{event.station!r} crashed — crashed "
                            "stations do not rejoin"
                        )
                    if active:
                        raise ValueError(
                            f"rejoin at {event.at_s}s: station "
                            f"{event.station!r} never left"
                        )
                    present[event.station] = True
                    continue
                if not active:
                    raise ValueError(
                        f"timeline event at {event.at_s}s: station "
                        f"{event.station!r} already left"
                    )
                if isinstance(event, LeaveEvent):
                    present[event.station] = False
                elif isinstance(event, StationCrashEvent):
                    present[event.station] = False
                    crashed.add(event.station)
                elif isinstance(event, RateSwitchEvent):
                    if event.rate_mbps <= 0:
                        raise ValueError("rate switch needs a positive rate")
                    if (
                        event.downlink_rate_mbps is not None
                        and event.downlink_rate_mbps <= 0
                    ):
                        raise ValueError(
                            "rate switch needs a positive downlink rate"
                        )

    def _validate_campus(self) -> None:
        """Campus-mode consistency: cell shapes, event kinds, and roam
        causality (a station roams *from* the cell it is actually in,
        and nothing touches it while it is between cells)."""
        campus = self.campus
        assert campus is not None
        campus.validate()
        if self.stations or self.flows:
            raise ValueError(
                "campus specs keep stations and flows inside "
                "campus.cells; the top-level tuples must be empty"
            )
        if self.reaper is not None:
            raise ValueError(
                "campus specs do not support the AP-side reaper yet"
            )

        cells = {cell.name for cell in campus.cells}
        #: station -> current cell (None while departed).
        member: Dict[str, Optional[str]] = {}
        #: station -> last cell (for rejoin).
        last_cell: Dict[str, str] = {}
        for cell in campus.cells:
            for station in cell.stations:
                member[station.name] = cell.name
                last_cell[station.name] = cell.name
        #: station -> end of its current in-flight roam window.
        in_flight: Dict[str, float] = {}

        for event in sorted(self.timeline, key=lambda e: e.at_s):
            if event.at_s < 0:
                raise ValueError("timeline event times must be >= 0")
            if not isinstance(event, CAMPUS_EVENTS):
                raise ValueError(
                    f"timeline event {type(event).__name__} is not "
                    "supported in campus mode"
                )
            name = event.station
            if name not in member:
                raise ValueError(
                    f"timeline event at {event.at_s}s references "
                    f"unknown station {name!r}"
                )
            landing = in_flight.get(name)
            if landing is not None and event.at_s < landing:
                raise ValueError(
                    f"timeline event at {event.at_s}s: station "
                    f"{name!r} is mid-roam until {landing}s"
                )
            if isinstance(event, RoamEvent):
                if event.delay_s < 0:
                    raise ValueError(
                        f"roam at {event.at_s}s: delay_s must be >= 0"
                    )
                for cell_name in (event.from_cell, event.to_cell):
                    if cell_name not in cells:
                        raise ValueError(
                            f"roam at {event.at_s}s references unknown "
                            f"cell {cell_name!r}"
                        )
                if event.from_cell == event.to_cell:
                    raise ValueError(
                        f"roam at {event.at_s}s: from_cell and to_cell "
                        "must differ"
                    )
                if member.get(name) != event.from_cell:
                    raise ValueError(
                        f"roam at {event.at_s}s: station {name!r} is in "
                        f"{member.get(name)!r}, not {event.from_cell!r}"
                    )
                member[name] = event.to_cell
                last_cell[name] = event.to_cell
                in_flight[name] = event.at_s + event.delay_s
            elif isinstance(event, LeaveEvent):
                if member.get(name) is None:
                    raise ValueError(
                        f"leave at {event.at_s}s: station {name!r} "
                        "already left"
                    )
                member[name] = None
            elif isinstance(event, RejoinEvent):
                if member.get(name) is not None:
                    raise ValueError(
                        f"rejoin at {event.at_s}s: station {name!r} "
                        "never left"
                    )
                member[name] = last_cell[name]
            else:
                if member.get(name) is None:
                    raise ValueError(
                        f"timeline event at {event.at_s}s: station "
                        f"{name!r} already left"
                    )
                if isinstance(event, RateSwitchEvent):
                    if event.rate_mbps <= 0:
                        raise ValueError("rate switch needs a positive rate")
                    if (
                        event.downlink_rate_mbps is not None
                        and event.downlink_rate_mbps <= 0
                    ):
                        raise ValueError(
                            "rate switch needs a positive downlink rate"
                        )
