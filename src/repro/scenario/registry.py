"""Named scenario families and parameter sweeps.

A *family* is a parameterized generator of :class:`ScenarioSpec`s: it
owns a set of named knobs with defaults, and compiles any assignment of
those knobs into one concrete spec.  Families are what the
``repro scenario`` CLI lists, runs and sweeps, and what the golden
tests pin.

The shipped families exercise the workload space the paper's static
setups never touch — each one keeps the paper's central tension (slow
and fast stations sharing one cell) while the cell *changes under the
scheduler*:

* ``churn``    — stations join and leave through a rotating door;
* ``mobility`` — a walker steps down the 802.11b rate ladder and back;
* ``bursty``   — a fast station's downlink UDP flips on and off against
  a slow steady uploader;
* ``mixed``    — simultaneous TCP uploads and UDP downloads across a
  multi-rate cell;
* ``fairness-churn`` — a slow station truly disassociates mid-run and
  rejoins later, splitting the run into three phases whose occupancy
  shares must each converge to 1/n_active;
* ``fairness-outage`` — the AP itself goes dark mid-run and recovers;
  survivors re-associate with jittered delays and the regulator must
  re-converge to 1/n_active within a bounded number of FILLEVENTs;
* ``steady-long`` — long saturated downlink-UDP horizons with sparse
  rate switches; the steady-state fast-forward engine's benchmark
  workload (O(transitions) instead of O(packets));
* ``chaos``    — a seeded generator mixes crash, outage, degrade,
  burst and rate-switch events into one randomized (but fully
  deterministic) timeline, for soak-testing under the sanitizer;
* ``campus``   — an ESS of N cells on one kernel: per-cell locals plus
  slow roamers handing off mid-run, with co-channel coupling between
  neighbouring cells that share an RF channel.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from itertools import product
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.scenario.spec import (
    ApOutageEvent,
    CampusSpec,
    CellSpec,
    ChannelDegradeEvent,
    FlowSpec,
    JoinEvent,
    LeaveEvent,
    RateSwitchEvent,
    ReaperSpec,
    RejoinEvent,
    RoamEvent,
    ScenarioSpec,
    StationCrashEvent,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
)


@dataclass(frozen=True)
class ScenarioFamily:
    """One selectable family: a builder plus its knob defaults."""

    name: str
    summary: str
    builder: Callable[..., ScenarioSpec]
    defaults: Mapping[str, Any]


# ----------------------------------------------------------------------
# churn — stations join and leave through a rotating door
# ----------------------------------------------------------------------
def _build_churn(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 10.0,
    warmup_s: float = 1.0,
    period_s: float = 2.0,
    stay_s: float = 3.0,
    n_joiners: int = 4,
    steady_rate: float = 11.0,
) -> ScenarioSpec:
    """A steady fast uploader, with multi-rate guests cycling through.

    Joiner ``i`` associates at ``warmup_s + i * period_s``, uploads over
    TCP at the next rate off the 802.11b ladder, and leaves ``stay_s``
    later — so the cell's population and rate mix never sit still.
    """
    joiner_rates = (1.0, 5.5, 2.0, 11.0)
    timeline: List[Any] = []
    for i in range(n_joiners):
        name = f"guest{i + 1}"
        join_at = warmup_s + i * period_s
        timeline.append(
            JoinEvent(
                at_s=join_at,
                station=StationSpec(
                    name, rate_mbps=joiner_rates[i % len(joiner_rates)]
                ),
                flows=(FlowSpec(station=name, kind="tcp", direction="up"),),
            )
        )
        timeline.append(LeaveEvent(at_s=join_at + stay_s, station=name))
    return ScenarioSpec(
        name="churn",
        scheduler=scheduler,
        stations=(StationSpec("base", rate_mbps=steady_rate),),
        flows=(FlowSpec(station="base", kind="tcp", direction="up"),),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# mobility — a walker steps down the rate ladder and back
# ----------------------------------------------------------------------
def _build_mobility(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 8.0,
    warmup_s: float = 1.0,
    dwell_s: float = 1.0,
    peer_rate: float = 11.0,
) -> ScenarioSpec:
    """Two uploaders; one walks away from the AP and returns.

    The walker starts at 11 Mbps and re-rates every ``dwell_s`` along
    11 -> 5.5 -> 2 -> 1 -> 2 -> 5.5 -> 11 -> ... (both its uplink rate
    and the AP's downlink rate toward it switch), emulating ARF
    tracking an SNR ramp without the rate-control noise.
    """
    if dwell_s <= 0:
        # Guard before the timeline loop below: a non-positive dwell
        # would never advance `at` and generate events unboundedly.
        raise ValueError(f"dwell_s must be positive, got {dwell_s!r}")
    ladder = (11.0, 5.5, 2.0, 1.0)
    walk = list(ladder[1:]) + list(ladder[-2::-1])  # down, then back up
    timeline: List[Any] = []
    at = warmup_s + dwell_s
    step = 0
    while at < warmup_s + seconds:
        timeline.append(
            RateSwitchEvent(
                at_s=at, station="walker",
                rate_mbps=walk[step % len(walk)],
            )
        )
        at += dwell_s
        step += 1
    return ScenarioSpec(
        name="mobility",
        scheduler=scheduler,
        stations=(
            StationSpec("fixed", rate_mbps=peer_rate),
            StationSpec("walker", rate_mbps=ladder[0]),
        ),
        flows=(
            FlowSpec(station="fixed", kind="tcp", direction="up"),
            FlowSpec(station="walker", kind="tcp", direction="up"),
        ),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# bursty — on/off downlink UDP against a slow steady uploader
# ----------------------------------------------------------------------
def _build_bursty(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 8.0,
    warmup_s: float = 1.0,
    on_s: float = 1.0,
    off_s: float = 1.0,
    udp_mbps: float = 8.0,
    steady_rate: float = 1.0,
) -> ScenarioSpec:
    """A fast station's saturating download flips on and off.

    The burst station (11 Mbps) starts with its downlink UDP on, then
    alternates ``on_s`` on / ``off_s`` off; a 1 Mbps station uploads
    over TCP throughout.  Each burst re-instantiates the source under a
    fresh ``@<n>`` flow name, so the run is deterministic end to end.
    """
    if on_s <= 0 or off_s <= 0:
        # Guard before the alternating loop: non-positive burst phases
        # would stall `at` and generate events unboundedly.
        raise ValueError(
            f"on_s and off_s must be positive, got {on_s!r}/{off_s!r}"
        )
    timeline: List[Any] = []
    at = warmup_s + on_s
    while at < warmup_s + seconds:
        timeline.append(TrafficOffEvent(at_s=at, station="burst"))
        at += off_s
        if at >= warmup_s + seconds:
            break
        timeline.append(TrafficOnEvent(at_s=at, station="burst"))
        at += on_s
    return ScenarioSpec(
        name="bursty",
        scheduler=scheduler,
        stations=(
            StationSpec("steady", rate_mbps=steady_rate),
            StationSpec("burst", rate_mbps=11.0),
        ),
        flows=(
            FlowSpec(station="steady", kind="tcp", direction="up"),
            FlowSpec(
                station="burst", kind="udp", direction="down",
                rate_mbps=udp_mbps,
            ),
        ),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# mixed — simultaneous TCP uploads and UDP downloads, multi-rate
# ----------------------------------------------------------------------
def _build_mixed(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 6.0,
    warmup_s: float = 1.0,
    n_tcp: int = 2,
    n_udp: int = 2,
    udp_mbps: float = 4.0,
) -> ScenarioSpec:
    """TCP uploaders and UDP downloaders share one multi-rate cell.

    Rates cycle through the 802.11b ladder across all stations, so the
    regulator faces ack-clocked *and* open-loop traffic in the same
    cell — the regime where throughput fairness and time fairness
    disagree the most.
    """
    ladder = (1.0, 11.0, 2.0, 5.5)
    stations: List[StationSpec] = []
    flows: List[FlowSpec] = []
    for i in range(n_tcp):
        name = f"tcp{i + 1}"
        stations.append(
            StationSpec(name, rate_mbps=ladder[i % len(ladder)])
        )
        flows.append(FlowSpec(station=name, kind="tcp", direction="up"))
    for i in range(n_udp):
        name = f"udp{i + 1}"
        stations.append(
            StationSpec(name, rate_mbps=ladder[(n_tcp + i) % len(ladder)])
        )
        flows.append(
            FlowSpec(
                station=name, kind="udp", direction="down",
                rate_mbps=udp_mbps,
            )
        )
    return ScenarioSpec(
        name="mixed",
        scheduler=scheduler,
        stations=tuple(stations),
        flows=tuple(flows),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# fairness-churn — a true leave and rejoin split the run into phases
# ----------------------------------------------------------------------
def fairness_churn_phases(
    seconds: float,
    warmup_s: float,
    leave_at_s: Optional[float] = None,
    rejoin_at_s: Optional[float] = None,
) -> Tuple[float, float, float, float]:
    """Phase boundaries of the fairness-churn run, in run-clock seconds.

    Returns ``(start, leave, rejoin, horizon)``: the measurement window
    ``[start, horizon)`` split into *before* ``[start, leave)``,
    *away* ``[leave, rejoin)`` and *after* ``[rejoin, horizon)``.
    Unset boundaries default to equal thirds of the measurement window,
    so shrinking ``seconds`` shrinks all three phases together.
    """
    start = warmup_s
    horizon = warmup_s + seconds
    leave = warmup_s + seconds / 3.0 if leave_at_s is None else leave_at_s
    rejoin = (
        warmup_s + 2.0 * seconds / 3.0 if rejoin_at_s is None else rejoin_at_s
    )
    if not start <= leave < rejoin < horizon:
        raise ValueError(
            f"fairness-churn phases must satisfy warmup <= leave < rejoin "
            f"< horizon, got leave={leave!r}, rejoin={rejoin!r} in "
            f"[{start!r}, {horizon!r})"
        )
    return start, leave, rejoin, horizon


def _build_fairness_churn(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 9.0,
    warmup_s: float = 1.0,
    n_peers: int = 3,
    peer_rate: float = 11.0,
    leaver_rate: float = 1.0,
    leave_at_s: Optional[float] = None,
    rejoin_at_s: Optional[float] = None,
) -> ScenarioSpec:
    """A slow uploader truly leaves mid-run and rejoins later.

    ``n_peers`` fast TCP uploaders share the cell with one slow
    station ("leaver").  At ``leave_at_s`` the leaver *disassociates*
    — MAC torn down, queue flushed, TBR rate redistributed — and at
    ``rejoin_at_s`` it re-associates (fresh token grant) and resumes
    uploading.  Unset times default to thirds of the measurement
    window, so the run divides into equal before/away/after phases.
    Per-phase occupancy shares are the paper's fairness claim under
    dynamic membership: each must converge to 1/n_active.
    """
    _, leave, rejoin, _ = fairness_churn_phases(
        seconds, warmup_s, leave_at_s, rejoin_at_s
    )
    stations = [StationSpec("leaver", rate_mbps=leaver_rate)]
    flows = [FlowSpec(station="leaver", kind="tcp", direction="up")]
    for i in range(n_peers):
        name = f"peer{i + 1}"
        stations.append(StationSpec(name, rate_mbps=peer_rate))
        flows.append(FlowSpec(station=name, kind="tcp", direction="up"))
    return ScenarioSpec(
        name="fairness-churn",
        scheduler=scheduler,
        stations=tuple(stations),
        flows=tuple(flows),
        timeline=(
            LeaveEvent(at_s=leave, station="leaver"),
            RejoinEvent(at_s=rejoin, station="leaver"),
        ),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# fairness-outage — the AP goes dark mid-run and recovers
# ----------------------------------------------------------------------
def fairness_outage_phases(
    seconds: float,
    warmup_s: float,
    outage_at_s: Optional[float] = None,
    outage_s: float = 1.0,
    rejoin_jitter_s: float = 0.2,
) -> Tuple[float, float, float, float]:
    """Phase boundaries of the fairness-outage run, in run-clock seconds.

    Returns ``(start, down, up, horizon)``: measurement starts at
    ``start``; the AP is dark (and stations are re-associating) during
    ``[down, up)``; the *after* phase ``[up, horizon)`` is where the
    regulator must re-converge.  ``up`` includes the rejoin jitter — by
    then every survivor is back.  An unset ``outage_at_s`` defaults to
    one third into the measurement window.
    """
    start = warmup_s
    horizon = warmup_s + seconds
    down = (
        warmup_s + seconds / 3.0 if outage_at_s is None else outage_at_s
    )
    up = down + outage_s + rejoin_jitter_s
    if not start <= down < up < horizon:
        raise ValueError(
            f"fairness-outage phases must satisfy warmup <= down < up < "
            f"horizon, got down={down!r}, up={up!r} in "
            f"[{start!r}, {horizon!r})"
        )
    return start, down, up, horizon


def _build_fairness_outage(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 9.0,
    warmup_s: float = 1.0,
    n_peers: int = 3,
    peer_rate: float = 11.0,
    slow_rate: float = 1.0,
    outage_at_s: Optional[float] = None,
    outage_s: float = 1.0,
    rejoin_jitter_s: float = 0.2,
) -> ScenarioSpec:
    """The AP blacks out mid-run; every station must re-converge after.

    ``n_peers`` fast TCP uploaders plus one slow station saturate the
    cell; a third of the way into the measurement window the AP goes
    down for ``outage_s`` (queues flushed, in-flight frame aborted,
    associations dropped) and recovers, after which survivors
    re-associate with seeded jitter up to ``rejoin_jitter_s``.  The
    paper's fairness claim is tested on the far side: each station's
    occupancy share in the *after* phase must return to 1/n_active,
    with TBR re-granting each re-associating station its initial burst
    exactly once.
    """
    _, down, _, _ = fairness_outage_phases(
        seconds, warmup_s, outage_at_s, outage_s, rejoin_jitter_s
    )
    stations = [StationSpec("slow", rate_mbps=slow_rate)]
    flows = [FlowSpec(station="slow", kind="tcp", direction="up")]
    for i in range(n_peers):
        name = f"peer{i + 1}"
        stations.append(StationSpec(name, rate_mbps=peer_rate))
        flows.append(FlowSpec(station=name, kind="tcp", direction="up"))
    return ScenarioSpec(
        name="fairness-outage",
        scheduler=scheduler,
        stations=tuple(stations),
        flows=tuple(flows),
        timeline=(
            ApOutageEvent(
                at_s=down,
                duration_s=outage_s,
                rejoin_jitter_s=rejoin_jitter_s,
            ),
        ),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# steady-long — long saturated horizons with sparse perturbations
# ----------------------------------------------------------------------
def _build_steady_long(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 100.0,
    warmup_s: float = 1.0,
    n_stations: int = 4,
    udp_mbps: float = 4.0,
    perturb_every_s: float = 25.0,
) -> ScenarioSpec:
    """Long saturated downlink-UDP horizons with sparse rate switches.

    ``n_stations`` stations on the 802.11b rate ladder each receive a
    saturating downlink UDP flow, and nothing else happens except one
    station ("mover") stepping around the ladder every
    ``perturb_every_s`` — the steady-state fast-forward engine's home
    turf.  Event-by-event, cost is O(packets) over the whole horizon;
    fast-forwarded, it is O(transitions): a calibration window after
    each rate switch, then one analytic jump to the next switch.
    """
    if perturb_every_s <= 0:
        # Guard before the perturbation loop: a non-positive period
        # would never advance `at` and generate events unboundedly.
        raise ValueError(
            f"perturb_every_s must be positive, got {perturb_every_s!r}"
        )
    ladder = (11.0, 5.5, 2.0, 1.0)
    stations: List[StationSpec] = []
    flows: List[FlowSpec] = []
    for i in range(n_stations):
        name = "mover" if i == 0 else f"sat{i}"
        stations.append(StationSpec(name, rate_mbps=ladder[i % len(ladder)]))
        flows.append(
            FlowSpec(
                station=name, kind="udp", direction="down",
                rate_mbps=udp_mbps,
            )
        )
    timeline: List[Any] = []
    at = warmup_s + perturb_every_s
    step = 1
    while at < warmup_s + seconds:
        timeline.append(
            RateSwitchEvent(
                at_s=at, station="mover",
                rate_mbps=ladder[step % len(ladder)],
            )
        )
        at += perturb_every_s
        step += 1
    return ScenarioSpec(
        name="steady-long",
        scheduler=scheduler,
        stations=tuple(stations),
        flows=tuple(flows),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
    )


# ----------------------------------------------------------------------
# chaos — a seeded soak timeline mixing every fault kind
# ----------------------------------------------------------------------
def _build_chaos(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 8.0,
    warmup_s: float = 0.5,
    n_stations: int = 4,
    n_events: int = 8,
    outage_s: float = 0.5,
    degrade_s: float = 0.8,
    loss: float = 0.5,
    udp_mbps: float = 2.0,
    reaper_idle_s: float = 0.4,
) -> ScenarioSpec:
    """Randomized-but-deterministic fault soak for the sanitizer.

    A dedicated ``random.Random(f"chaos:{seed}")`` walks time forward
    from the warm-up, placing ``n_events`` events drawn from crash,
    AP outage, channel degrade, traffic burst, rate switch and a
    leave/rejoin pair.  Construction keeps every spec *valid*: events
    advance strictly in time, an outage claims its whole exclusion
    window (duration plus rejoin jitter) before the next event may
    fire, crashed stations are retired from the candidate pools, and
    only stations carrying downlink traffic may crash — the AP-side
    reaper (armed via ``reaper``) needs retry exhaustions to detect
    the dead peer and free its stranded token rate.
    """
    if n_stations < 2:
        raise ValueError(
            f"chaos needs >= 2 stations, got {n_stations!r} — a lone "
            "station leaves nothing to renormalize after a crash"
        )
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events!r}")
    rng = random.Random(f"chaos:{seed}")
    ladder = (11.0, 5.5, 2.0, 1.0)
    stations: List[StationSpec] = []
    flows: List[FlowSpec] = []
    has_downlink: List[str] = []
    for i in range(n_stations):
        name = f"s{i + 1}"
        stations.append(StationSpec(name, rate_mbps=ladder[i % len(ladder)]))
        flows.append(FlowSpec(station=name, kind="tcp", direction="up"))
        if i % 2 == 0:
            # Downlink UDP makes the station crash-eligible: the AP
            # keeps transmitting at the corpse, retries exhaust, and
            # the reaper has its evidence.
            flows.append(
                FlowSpec(
                    station=name, kind="udp", direction="down",
                    rate_mbps=udp_mbps,
                )
            )
            has_downlink.append(name)
    horizon = warmup_s + seconds
    rejoin_jitter_s = 0.2
    # s1 never crashes or leaves: the cell must stay occupied so there
    # is always a survivor to renormalize onto.
    crashable = [name for name in has_downlink if name != "s1"]
    churnable = [s.name for s in stations if s.name != "s1"]
    alive = {s.name for s in stations}
    timeline: List[Any] = []

    at = warmup_s + rng.uniform(0.2, 0.6)
    placed = 0
    while placed < n_events and at < horizon - 0.3:
        kinds = ["degrade", "offon", "rate"]
        if at + outage_s + rejoin_jitter_s < horizon - 0.3:
            kinds.append("outage")
        if crashable:
            kinds.append("crash")
        if churnable:
            kinds.append("cycle")
        kind = rng.choice(kinds)
        if kind == "degrade":
            timeline.append(
                ChannelDegradeEvent(
                    at_s=at,
                    duration_s=min(degrade_s, horizon - at - 0.05),
                    loss_probability=loss,
                )
            )
            # Degrade windows may overlap later events on purpose —
            # the restore path must cope with interleavings.
            footprint = 0.0
        elif kind == "outage":
            timeline.append(
                ApOutageEvent(
                    at_s=at,
                    duration_s=outage_s,
                    rejoin_jitter_s=rejoin_jitter_s,
                )
            )
            # Nothing else may fire inside the exclusion window.
            footprint = outage_s + rejoin_jitter_s
        elif kind == "crash":
            victim = crashable.pop(rng.randrange(len(crashable)))
            churnable = [n for n in churnable if n != victim]
            alive.discard(victim)
            timeline.append(StationCrashEvent(at_s=at, station=victim))
            footprint = 0.0
        elif kind == "cycle":
            dwell = rng.uniform(0.3, 0.8)
            name = churnable[rng.randrange(len(churnable))]
            timeline.append(LeaveEvent(at_s=at, station=name))
            timeline.append(
                RejoinEvent(at_s=min(at + dwell, horizon - 0.1), station=name)
            )
            footprint = dwell
        elif kind == "offon":
            dwell = rng.uniform(0.2, 0.6)
            name = rng.choice(sorted(alive))
            timeline.append(TrafficOffEvent(at_s=at, station=name))
            timeline.append(
                TrafficOnEvent(
                    at_s=min(at + dwell, horizon - 0.1), station=name
                )
            )
            footprint = dwell
        else:  # rate
            name = rng.choice(sorted(alive))
            timeline.append(
                RateSwitchEvent(
                    at_s=at, station=name, rate_mbps=rng.choice(ladder)
                )
            )
            footprint = 0.0
        placed += 1
        at += footprint + rng.uniform(0.25, 0.7)

    timeline.sort(key=lambda e: e.at_s)
    return ScenarioSpec(
        name="chaos",
        scheduler=scheduler,
        stations=tuple(stations),
        flows=tuple(flows),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
        reaper=ReaperSpec(idle_timeout_s=reaper_idle_s),
    )


# ----------------------------------------------------------------------
# campus — N cells, roamers handing off, co-channel coupling
# ----------------------------------------------------------------------
def campus_roam_times(
    seconds: float, warmup_s: float, ordinal: int = 0
) -> Tuple[float, float]:
    """When roamer ``ordinal`` hands off: out at one third of the
    measurement window, back at two thirds, staggered 50 ms per roamer
    so simultaneous handoffs never mask each other."""
    stagger = 0.05 * ordinal
    out = warmup_s + seconds / 3.0 + stagger
    back = warmup_s + 2.0 * seconds / 3.0 + stagger
    return out, back


def _build_campus(
    scheduler: str = "tbr",
    seed: int = 1,
    seconds: float = 6.0,
    warmup_s: float = 1.0,
    n_cells: int = 2,
    n_channels: int = 1,
    locals_per_cell: int = 1,
    n_roamers: int = 1,
    local_rate: float = 11.0,
    roamer_rate: float = 1.0,
    assoc_delay_s: float = 0.05,
) -> ScenarioSpec:
    """An ESS: per-cell locals plus slow roamers handing off mid-run.

    ``n_cells`` cells line a corridor; cell ``i`` sits on RF channel
    ``(1, 6, 11)[i % n_channels]`` and neighbours cells ``i±1`` and
    ``i±3`` — with the default ``n_channels=1`` every adjacent pair is
    co-channel (coupled media), while ``n_channels=3`` reproduces the
    classic 1/6/11 reuse plan where only the ``i±3`` neighbours
    interfere.  Each cell holds ``locals_per_cell`` fast TCP uploaders;
    roamer ``r`` starts in cell ``r % n_cells``, uploads at
    ``roamer_rate`` (the slow rate — the anomaly the paper fixes), and
    roams to the next cell at a third of the measurement window,
    returning at two thirds, so both cells see the regulator
    re-converge to 1/n_active twice.
    """
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells!r}")
    if not 1 <= n_channels <= 3:
        raise ValueError(
            f"n_channels must be in 1..3 (the 1/6/11 plan), got "
            f"{n_channels!r}"
        )
    if locals_per_cell < 0 or n_roamers < 0:
        raise ValueError(
            "locals_per_cell and n_roamers must be >= 0, got "
            f"{locals_per_cell!r}/{n_roamers!r}"
        )
    if n_roamers > 0 and n_cells < 2:
        raise ValueError(
            f"{n_roamers} roamer(s) need >= 2 cells to roam between"
        )
    if assoc_delay_s < 0:
        raise ValueError(
            f"assoc_delay_s must be >= 0, got {assoc_delay_s!r}"
        )
    rf_plan = (1, 6, 11)[:n_channels]
    cell_names = [f"c{i}" for i in range(n_cells)]
    by_cell_stations: Dict[str, List[StationSpec]] = {
        name: [] for name in cell_names
    }
    by_cell_flows: Dict[str, List[FlowSpec]] = {
        name: [] for name in cell_names
    }
    for i, cell in enumerate(cell_names):
        for j in range(locals_per_cell):
            name = f"c{i}l{j + 1}"
            by_cell_stations[cell].append(
                StationSpec(name, rate_mbps=local_rate)
            )
            by_cell_flows[cell].append(
                FlowSpec(station=name, kind="tcp", direction="up")
            )
    timeline: List[Any] = []
    for r in range(n_roamers):
        name = f"roam{r + 1}"
        home = cell_names[r % n_cells]
        away = cell_names[(r + 1) % n_cells]
        by_cell_stations[home].append(
            StationSpec(name, rate_mbps=roamer_rate)
        )
        by_cell_flows[home].append(
            FlowSpec(station=name, kind="tcp", direction="up")
        )
        out, back = campus_roam_times(seconds, warmup_s, r)
        if out < warmup_s + seconds:
            timeline.append(
                RoamEvent(
                    at_s=out, station=name, from_cell=home,
                    to_cell=away, delay_s=assoc_delay_s,
                )
            )
        if back < warmup_s + seconds:
            timeline.append(
                RoamEvent(
                    at_s=back, station=name, from_cell=away,
                    to_cell=home, delay_s=assoc_delay_s,
                )
            )
    adjacency: List[Tuple[str, str]] = []
    for i in range(n_cells):
        for span in (1, 3):
            if i + span < n_cells:
                adjacency.append((cell_names[i], cell_names[i + span]))
    cells = tuple(
        CellSpec(
            name=cell,
            channel=rf_plan[i % len(rf_plan)],
            stations=tuple(by_cell_stations[cell]),
            flows=tuple(by_cell_flows[cell]),
        )
        for i, cell in enumerate(cell_names)
    )
    return ScenarioSpec(
        name="campus",
        scheduler=scheduler,
        stations=(),
        flows=(),
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=warmup_s,
        seed=seed,
        campus=CampusSpec(cells=cells, adjacency=tuple(adjacency)),
    )


def _defaults_of(fn: Callable[..., ScenarioSpec]) -> Dict[str, Any]:
    import inspect

    return {
        name: param.default
        for name, param in inspect.signature(fn).parameters.items()
    }


FAMILIES: Dict[str, ScenarioFamily] = {
    family.name: family
    for family in (
        ScenarioFamily(
            "churn",
            "multi-rate guests join and leave through a rotating door",
            _build_churn,
            _defaults_of(_build_churn),
        ),
        ScenarioFamily(
            "mobility",
            "a walker re-rates down the 802.11b ladder and back",
            _build_mobility,
            _defaults_of(_build_mobility),
        ),
        ScenarioFamily(
            "bursty",
            "a fast station's downlink UDP flips on and off",
            _build_bursty,
            _defaults_of(_build_bursty),
        ),
        ScenarioFamily(
            "mixed",
            "TCP uploads and UDP downloads share a multi-rate cell",
            _build_mixed,
            _defaults_of(_build_mixed),
        ),
        ScenarioFamily(
            "fairness-churn",
            "a slow station truly disassociates mid-run and rejoins",
            _build_fairness_churn,
            _defaults_of(_build_fairness_churn),
        ),
        ScenarioFamily(
            "fairness-outage",
            "the AP blacks out mid-run; shares must re-converge after",
            _build_fairness_outage,
            _defaults_of(_build_fairness_outage),
        ),
        ScenarioFamily(
            "steady-long",
            "long saturated UDP horizons with sparse rate switches",
            _build_steady_long,
            _defaults_of(_build_steady_long),
        ),
        ScenarioFamily(
            "chaos",
            "seeded soak mixing crash/outage/degrade/burst/rate events",
            _build_chaos,
            _defaults_of(_build_chaos),
        ),
        ScenarioFamily(
            "campus",
            "N cells, one kernel: roaming under co-channel coupling",
            _build_campus,
            _defaults_of(_build_campus),
        ),
    )
}


def build_spec(family: str, **overrides: Any) -> ScenarioSpec:
    """Compile one family with ``overrides`` applied to its defaults.

    The spec's name records the overrides (``churn[period_s=1.0]``), so
    sweep results stay tellable apart in renders and job labels.
    """
    entry = FAMILIES.get(family)
    if entry is None:
        valid = ", ".join(FAMILIES)
        raise ValueError(
            f"unknown scenario family {family!r}; valid: {valid}"
        )
    unknown = sorted(set(overrides) - set(entry.defaults))
    if unknown:
        valid = ", ".join(sorted(entry.defaults))
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for family "
            f"{family!r}; valid: {valid}"
        )
    spec = entry.builder(**{**entry.defaults, **overrides})
    if overrides:
        label = ",".join(f"{k}={overrides[k]}" for k in sorted(overrides))
        spec = dataclasses.replace(spec, name=f"{family}[{label}]")
    return spec


def sweep_specs(
    family: str,
    axes: Mapping[str, Sequence[Any]],
    **base: Any,
) -> List[ScenarioSpec]:
    """Cartesian product of ``axes`` over ``family`` (plus fixed ``base``
    overrides), in deterministic axis order."""
    if not axes:
        return [build_spec(family, **base)]
    empty = [k for k, values in axes.items() if not values]
    if empty:
        raise ValueError(
            f"sweep axis with no values: {', '.join(sorted(empty))} — "
            "an empty axis would silently produce zero sweep points"
        )
    keys = list(axes)
    specs: List[ScenarioSpec] = []
    for values in product(*(axes[k] for k in keys)):
        overrides = dict(base)
        overrides.update(zip(keys, values))
        specs.append(build_spec(family, **overrides))
    return specs
