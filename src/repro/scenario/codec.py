"""JSON codec for frozen job-config trees and ScenarioSpecs.

The campaign layer freezes configs into tagged-tuple trees
(:func:`repro.campaign.job.freeze`) whose ``repr`` is the content
digest.  That encoding is perfect for hashing and pickling but cannot
cross an HTTP boundary; this module gives it a faithful JSON form so
``repro serve`` can accept full ScenarioSpecs over the wire.

Faithfulness is the contract: ``decode_tree(encode_tree(t)) == t`` for
every tree ``freeze`` can produce, which makes the round-tripped spec's
content digest — and therefore its result-store address — identical to
the one the CLI computes locally.  Specs decoded from *hand-written*
JSON are thawed and re-frozen through the dataclass itself, so a client
need not reproduce ``freeze``'s canonical ordering to hit the cache.

Decoding is deliberately narrow: ``@dataclass`` nodes may only name
symbols inside the ``repro.`` package, and ``thaw`` itself refuses to
call anything that is not a dataclass type, so a request body can never
make the server import or invoke arbitrary code.
"""

from __future__ import annotations

import base64
from typing import Any

from repro.campaign.job import freeze, thaw
from repro.scenario.spec import ScenarioSpec

_TAG_TUPLE = "@tuple"
_TAG_DICT = "@dict"
_TAG_SET = "@set"
_TAG_DATA = "@dataclass"

#: Only dataclasses under this package may be instantiated on decode.
_TRUSTED_PREFIX = "repro."


class CodecError(ValueError):
    """A tree or spec failed to encode or decode."""


def encode_tree(value: Any) -> Any:
    """Frozen tree -> JSON-serialisable structure.

    Primitives pass through (JSON keeps the int/float distinction the
    digest depends on); ``bytes`` and the four frozen-tree tags become
    single-key objects.  Raises :class:`CodecError` on anything that is
    not a valid frozen tree.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"@bytes": base64.b64encode(value).decode("ascii")}
    if isinstance(value, tuple) and value:
        tag = value[0]
        if tag == _TAG_TUPLE:
            return {_TAG_TUPLE: [encode_tree(v) for v in value[1]]}
        if tag == _TAG_DICT:
            return {
                _TAG_DICT: [
                    [encode_tree(k), encode_tree(v)] for k, v in value[1]
                ]
            }
        if tag == _TAG_SET:
            return {_TAG_SET: [encode_tree(v) for v in value[1]]}
        if tag == _TAG_DATA:
            return {
                _TAG_DATA: [
                    value[1],
                    [[name, encode_tree(v)] for name, v in value[2]],
                ]
            }
    raise CodecError(
        f"cannot encode {value!r} of type {type(value).__name__}: "
        "not a frozen job-config tree"
    )


def decode_tree(obj: Any) -> Any:
    """JSON structure -> frozen tree (inverse of :func:`encode_tree`)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        if len(obj) != 1:
            raise CodecError(
                f"tagged node must have exactly one key, got {sorted(obj)}"
            )
        (tag, body), = obj.items()
        try:
            if tag == "@bytes":
                return base64.b64decode(body, validate=True)
            if tag == _TAG_TUPLE:
                return (_TAG_TUPLE, tuple(decode_tree(v) for v in body))
            if tag == _TAG_DICT:
                return (
                    _TAG_DICT,
                    tuple(
                        (decode_tree(k), decode_tree(v)) for k, v in body
                    ),
                )
            if tag == _TAG_SET:
                return (_TAG_SET, tuple(decode_tree(v) for v in body))
            if tag == _TAG_DATA:
                cls_path, fields = body
                if not (
                    isinstance(cls_path, str)
                    and cls_path.startswith(_TRUSTED_PREFIX)
                ):
                    raise CodecError(
                        f"refusing dataclass path {cls_path!r}: only "
                        f"'{_TRUSTED_PREFIX}*' classes may be decoded"
                    )
                return (
                    _TAG_DATA,
                    cls_path,
                    tuple((name, decode_tree(v)) for name, v in fields),
                )
        except CodecError:
            raise
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed {tag} node: {exc}") from exc
        raise CodecError(f"unknown node tag {tag!r}")
    raise CodecError(
        f"cannot decode {type(obj).__name__} node: expected a JSON "
        "primitive or a single-key tagged object"
    )


# ----------------------------------------------------------------------
# ScenarioSpec convenience wrappers
# ----------------------------------------------------------------------
def spec_to_json(spec: ScenarioSpec) -> Any:
    """Encode a spec as its frozen tree in JSON form."""
    return encode_tree(freeze(spec))


def spec_from_json(obj: Any) -> ScenarioSpec:
    """Decode, thaw and validate a ScenarioSpec from JSON.

    Thawing goes through the real dataclass constructors, so the
    returned spec re-freezes canonically: its content digest matches
    byte-for-byte what a local ``build_spec`` of the same content
    produces, however the JSON happened to be ordered.
    """
    try:
        value = thaw(decode_tree(obj))
    except (TypeError, ValueError, AttributeError, ImportError) as exc:
        raise CodecError(f"spec failed to decode: {exc}") from exc
    if not isinstance(value, ScenarioSpec):
        raise CodecError(
            f"decoded object is a {type(value).__name__}, not a "
            "ScenarioSpec"
        )
    try:
        value.validate()
    except ValueError as exc:
        raise CodecError(f"decoded spec is invalid: {exc}") from exc
    return value
