"""Run scenario specs — serially or as cached campaign jobs.

``run_spec`` compiles and runs one spec in-process and collects the
paper's quantities (per-station goodput, channel occupancy) plus the
kernel's event accounting, so every scenario family doubles as a perf
probe.  ``scenario_job`` wraps a spec as a campaign
:class:`~repro.campaign.job.Job` — the spec *is* the job config — so
sweeps fan out across worker processes and land in the on-disk result
cache exactly like the figure/table reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, Optional

from repro.campaign.job import Job, make_job
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.spec import ScenarioSpec

#: Executor address for :func:`execute_scenario` (what workers import).
SCENARIO_EXECUTOR = "repro.scenario.runner:execute_scenario"


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (picklable, render-stable)."""

    name: str
    seed: int
    scheduler: str
    seconds: float
    warmup_seconds: float
    #: goodput per station over the measurement window (Mbps).
    throughput_mbps: Dict[str, float] = field(default_factory=dict)
    #: per-flow goodput (burst flows appear under ``name@<n>``).
    flow_throughput_mbps: Dict[str, float] = field(default_factory=dict)
    #: fraction of measured time each station occupied the channel.
    occupancy: Dict[str, float] = field(default_factory=dict)
    #: uplink rate per station after the timeline ran (Mbps).
    final_rates_mbps: Dict[str, float] = field(default_factory=dict)
    timeline_fired: int = 0
    events_executed: int = 0
    events_by_category: Dict[str, int] = field(default_factory=dict)
    #: end-of-run PacketPool conservation remainder — 0 on a healthy
    #: run (every pooled packet recycled or still legitimately queued /
    #: in flight).  Deliberately absent from :func:`render_result`, so
    #: existing goldens stay byte-identical.
    pool_leaked: int = 0
    #: steady-state fast-forward jumps taken and simulated seconds
    #: skipped (0 unless the run was fast-forwarded; not rendered, so
    #: goldens — and cached results pickled before the field existed —
    #: stay stable).
    fast_forwards: int = 0
    fast_forwarded_s: float = 0.0
    #: campus runs only (all default-empty so single-cell results —
    #: including cached pickles from before the fields existed — are
    #: untouched): end-of-run membership per cell, the cells' RF
    #: channels, per-cell occupancy fractions, per-cell medium busy
    #: fractions, and the number of roam events fired.
    cell_members: Dict[str, Any] = field(default_factory=dict)
    cell_channels: Dict[str, int] = field(default_factory=dict)
    cell_occupancy: Dict[str, Dict[str, float]] = field(
        default_factory=dict
    )
    cell_busy_fraction: Dict[str, float] = field(default_factory=dict)
    roams_fired: int = 0

    @property
    def total_mbps(self) -> float:
        return sum(self.throughput_mbps.values())


def run_spec(
    spec: ScenarioSpec,
    *,
    sanitize: Optional[bool] = None,
    fast_forward: Optional[bool] = None,
) -> ScenarioResult:
    """Compile, run and measure one scenario spec.

    ``sanitize=True`` runs under the
    :class:`~repro.sim.sanitizer.RuntimeSanitizer`; ``fast_forward=True``
    runs through the steady-state fast-forward engine
    (:mod:`repro.sim.steady`).  Either ``None`` defers to the matching
    environment switch (``REPRO_SANITIZE`` / ``REPRO_FASTFWD``), which
    is how campaign worker processes inherit the settings.
    """
    if spec.campus is not None:
        return _run_campus_spec(
            spec, sanitize=sanitize, fast_forward=fast_forward
        )
    runtime = ScenarioRuntime(
        spec, sanitize=sanitize, fast_forward=fast_forward
    )
    sim = runtime.cell.sim
    runtime.run()
    return ScenarioResult(
        name=spec.name,
        seed=spec.seed,
        scheduler=spec.scheduler,
        seconds=spec.seconds,
        warmup_seconds=spec.warmup_seconds,
        throughput_mbps=runtime.cell.station_throughputs_mbps(),
        flow_throughput_mbps=runtime.cell.throughputs_mbps(),
        occupancy=runtime.cell.occupancy_fractions(),
        final_rates_mbps=runtime.station_rates_mbps(),
        timeline_fired=runtime.timeline_fired,
        events_executed=sim.events_executed,
        events_by_category=sim.events_by_category(),
        pool_leaked=runtime.pool_leaked(),
        fast_forwards=sim.fast_forwards,
        fast_forwarded_s=sim.fast_forwarded_us / 1e6,
    )


def _run_campus_spec(
    spec: ScenarioSpec,
    *,
    sanitize: Optional[bool] = None,
    fast_forward: Optional[bool] = None,
) -> ScenarioResult:
    """Campus leg of :func:`run_spec` (same contract, merged figures).

    Station-keyed figures merge across cells — station names are
    campus-unique, and a roamer's airtime in every cell it visited sums
    under its one name — while the ``cell_*`` fields keep the per-cell
    view.  A single-cell campus fills ``cell_members`` with one entry;
    :func:`render_result` only appends the campus block for >= 2 cells,
    which is what keeps the 1-cell differential render byte-identical.
    """
    from repro.campus.builder import CampusRuntime

    runtime = CampusRuntime(
        spec, sanitize=sanitize, fast_forward=fast_forward
    )
    sim = runtime.campus.sim
    runtime.run()
    campus = runtime.campus
    return ScenarioResult(
        name=spec.name,
        seed=spec.seed,
        scheduler=spec.scheduler,
        seconds=spec.seconds,
        warmup_seconds=spec.warmup_seconds,
        throughput_mbps=campus.station_throughputs_mbps(),
        flow_throughput_mbps=campus.throughputs_mbps(),
        occupancy=campus.occupancy_fractions(),
        final_rates_mbps=runtime.station_rates_mbps(),
        timeline_fired=runtime.timeline_fired,
        events_executed=sim.events_executed,
        events_by_category=sim.events_by_category(),
        pool_leaked=runtime.pool_leaked(),
        fast_forwards=sim.fast_forwards,
        fast_forwarded_s=sim.fast_forwarded_us / 1e6,
        cell_members={
            name: sorted(members)
            for name, members in campus.cell_members().items()
        },
        cell_channels=dict(campus.channel_map),
        cell_occupancy=campus.cell_occupancy_fractions(),
        cell_busy_fraction=campus.cell_busy_fractions(),
        roams_fired=runtime.roams_fired,
    )


# ----------------------------------------------------------------------
# campaign integration — the spec is the job config
# ----------------------------------------------------------------------
def execute_scenario(params: Dict[str, Any]) -> ScenarioResult:
    """Job executor: ``params`` carries the (thawed) ScenarioSpec."""
    spec = params["spec"]
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"scenario job params must carry a ScenarioSpec, "
            f"got {type(spec).__name__}"
        )
    return run_spec(spec)


def scenario_job(
    spec: ScenarioSpec,
    *,
    experiment: str = "scenario",
    key: Optional[Hashable] = None,
) -> Job:
    """Describe one :func:`run_spec` call as a campaign job.

    The job's cache digest covers the full spec content, so editing any
    knob — a rate, a timeline timestamp, the scheduler — invalidates
    exactly that scenario and nothing else.
    """
    return make_job(
        experiment,
        spec.name if key is None else key,
        SCENARIO_EXECUTOR,
        {"spec": spec},
    )


def run_sweep(
    specs: Iterable[ScenarioSpec],
    *,
    workers: Optional[int] = None,
    cache=None,
    force: bool = False,
    progress: Optional[Callable[..., None]] = None,
    retry=None,
    timeout_s: Optional[float] = None,
    queue=None,
):
    """Fan a batch of specs out through the supervised campaign executor.

    Thin wrapper over :func:`repro.campaign.executor.run_jobs` that
    builds one :func:`scenario_job` per spec (keyed by ``spec.name``)
    and threads through the fault-tolerance knobs — retry policy and
    per-job timeout — so scenario sweeps get the same crash isolation,
    quarantine and partial-completion semantics as the figure/table
    campaigns.  Returns the :class:`~repro.campaign.executor.\
CampaignOutcome`; per-spec results are under
    ``outcome.experiment_results("scenario")`` keyed by spec name, and
    quarantined specs appear in ``outcome.failures`` instead.
    """
    from repro.campaign.executor import run_jobs

    jobs = [scenario_job(spec, key=spec.name) for spec in specs]
    return run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        force=force,
        progress=progress,
        retry=retry,
        timeout_s=timeout_s,
        queue=queue,
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_result(result: ScenarioResult) -> str:
    """ASCII summary: per-station table plus kernel accounting."""
    # Imported lazily: experiments.common builds its setups through this
    # package, so a module-level import here would be a cycle.
    from repro.experiments.common import fmt_table

    rows = []
    for name in sorted(result.throughput_mbps):
        rows.append(
            [
                name,
                f"{result.final_rates_mbps.get(name, 0.0):g}",
                f"{result.throughput_mbps[name]:.3f}",
                f"{result.occupancy.get(name, 0.0):.3f}",
            ]
        )
    rows.append(["total", "", f"{result.total_mbps:.3f}", ""])
    table = fmt_table(
        ["station", "rate(end)", "Mbps", "occupancy"],
        rows,
        title=(
            f"Scenario {result.name} (seed {result.seed}, "
            f"{result.scheduler}): {result.seconds:g} s measured after "
            f"{result.warmup_seconds:g} s warm-up"
        ),
    )
    categories = ", ".join(
        f"{key}={result.events_by_category.get(key, 0)}"
        for key in ("traffic", "mac", "phy", "timer", "other")
    )
    rendered = (
        f"{table}\n"
        f"timeline events fired: {result.timeline_fired}\n"
        f"kernel events: {result.events_executed} ({categories})"
    )
    # The per-cell block appears only for a real (>= 2 cell) campus: a
    # 1-cell campus must render byte-identical to the single-cell path
    # (the differential equivalence contract).
    if len(result.cell_members) >= 2:
        lines = [f"campus: {len(result.cell_members)} cells, "
                 f"{result.roams_fired} roams"]
        for cell in result.cell_members:
            members = ",".join(result.cell_members[cell]) or "-"
            occupancy = result.cell_occupancy.get(cell, {})
            occupied = " ".join(
                f"{name}={occupancy[name]:.3f}"
                for name in sorted(occupancy)
            ) or "-"
            lines.append(
                f"  cell {cell} [ch {result.cell_channels.get(cell, '?')}]"
                f" members={members} occupancy: {occupied}"
            )
        rendered += "\n" + "\n".join(lines)
    return rendered
