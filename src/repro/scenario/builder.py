"""Compile a :class:`~repro.scenario.spec.ScenarioSpec` into a live cell.

The builder is the *only* way specs touch the simulator, and it is
deliberately boring: stations are created in spec order, each followed
immediately by its flows in spec order — exactly the construction
sequence the pre-scenario experiment code used, which is what keeps the
fig/table goldens byte-identical now that
:func:`repro.experiments.common.run_competing` goes through here.

Timeline events are scheduled up front (category ``OTHER``, so they
show up as their own line in the kernel's event accounting) and fire
inside the run:

* **join** — ``Cell.add_station`` plus the event's flows, mid-air; the
  paper's ASSOCIATEEVENT path handles mid-run association (TBR grants
  the initial token allotment at that moment).
* **leave** — true disassociation: sources are quiesced (UDP stops,
  TCP applications are clamped at the bytes already handed to the
  network), then ``Cell.remove_station`` tears down MAC state, channel
  subscriptions, the AP-side queue (flushing queued packets back to
  the pool) and — under TBR — the token bucket, whose rate is
  redistributed to the remaining stations.
* **rejoin** — the departed station's original spec is revived as a
  fresh association (new MAC, new queue, one new ``T_init`` grant
  under TBR) and its flows restart under ``@r<n>`` identities, so
  every rejoin draws from its own named RNG streams.
* **traffic off** — the station's sources are *quiesced* only: nothing
  new is offered, in-flight data drains normally, and the association
  (queue, tokens, subscriptions) stays alive.
* **rate switch** — the station's ``FixedRate`` controller and the
  AP's downlink rate toward it are repointed; the next MAC exchange
  uses the new rate, like a NIC stepping its modulation.
* **traffic on** — the station's spec'd flows are re-instantiated
  under fresh ``name@<burst>`` identities, so every burst gets its own
  named RNG stream and the run stays deterministic end to end.
* **channel degrade** — a loss model (Bernoulli cell-wide, or per-link
  between one station and the AP) is installed for the event's window
  and the prior model restored when it closes; the burst RNG is seeded
  from the spec seed and the burst ordinal, so degraded runs replay
  byte-identically.  Overlapping windows stack: each close re-exposes
  the newest still-open window's model (or the base model), whether
  the windows nest or interleave.
* **ap outage** — every associated station is torn down through the
  leave path (an AP that died cannot serve anyone), then the AP's MAC
  shuts down with its in-flight frame aborted on the air.  Recovery
  ``duration_s`` later restarts the MAC and schedules each survivor's
  rejoin after an individual spec-seeded jitter delay — the ordinary
  rejoin machinery, so TBR grants ``T_init`` exactly once per rejoin.
* **station crash** — the station vanishes without disassociating:
  its uplink sources are quiesced (a dead station sends nothing) but
  its *downlink* flows keep offering traffic, and no AP-side state is
  torn down — the retry-exhaustion storm toward the silent peer is
  what arms the inactivity reaper (``spec.reaper``), which then drives
  the ordinary disassociate path.  Without a reaper the stranded token
  rate persists, which the runtime sanitizer's live-share invariant
  flags.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.channel.loss import BernoulliLoss, PerLinkLoss
from repro.node.cell import Cell, FlowHandle
from repro.node.rate_control import FixedRate
from repro.scenario.spec import (
    ApOutageEvent,
    ChannelDegradeEvent,
    FlowSpec,
    JoinEvent,
    LeaveEvent,
    RateSwitchEvent,
    RejoinEvent,
    ScenarioSpec,
    StationCrashEvent,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
)
from repro.sim import EventCategory, us_from_s
from repro.transport.apps import PacedApp


class ScenarioRuntime:
    """A compiled scenario: the cell plus the timeline machinery.

    ``sanitize`` arms the runtime invariant sanitizer
    (:mod:`repro.sim.sanitizer`) for this run; ``None`` (the default)
    defers to the ``REPRO_SANITIZE`` environment switch.  Sanitized
    runs execute the identical event sequence — the sanitizer only
    observes — so results stay byte-identical either way.

    ``fast_forward`` arms the steady-state fast-forward engine
    (:mod:`repro.sim.steady`); ``None`` defers to ``REPRO_FASTFWD``.
    It is a *runtime* flag, not part of the spec — content digests and
    campaign cache keys are unchanged, because the results must agree
    either way (byte-identically whenever the detector inhibits, within
    printed precision on certified steady stretches).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        sanitize: Optional[bool] = None,
        fast_forward: Optional[bool] = None,
    ) -> None:
        spec.validate()
        self.spec = spec
        if sanitize is None:
            from repro.sim.sanitizer import sanitize_enabled

            sanitize = sanitize_enabled()
        self.sanitize = sanitize
        self.sanitizer = None
        if fast_forward is None:
            from repro.sim.steady import fastforward_enabled

            fast_forward = fastforward_enabled()
        self.fast_forward = fast_forward
        self.ff_engine = None
        self.cell = Cell(
            seed=spec.seed,
            scheduler=spec.scheduler,
            tbr_config=spec.tbr_config,
            phy=spec.phy,
        )
        #: flows currently offering traffic, per station.
        self._active: Dict[str, List[FlowHandle]] = {}
        #: the spec flows a ``traffic on`` burst re-instantiates.
        self._spec_flows: Dict[str, List[FlowSpec]] = {}
        #: the original station specs, kept for rejoin revival.
        self._station_specs: Dict[str, StationSpec] = {}
        self._burst_seq: Dict[str, int] = {}
        self._rejoin_seq: Dict[str, int] = {}
        self._departed: Set[str] = set()
        self._crashed: Set[str] = set()
        self._degrade_seq = 0
        #: still-open degrade windows' models, oldest first; closing one
        #: re-exposes the newest remaining (or the base model), so
        #: nested and interleaved windows both restore correctly.
        self._degrade_stack: List = []
        self._degrade_base = None
        self._outage_seq = 0
        self.timeline_fired = 0

        if spec.reaper is not None:
            from repro.node.access_point import ReaperConfig

            self.cell.enable_reaper(
                ReaperConfig(
                    exhaustion_threshold=spec.reaper.exhaustion_threshold,
                    idle_timeout_us=us_from_s(spec.reaper.idle_timeout_s),
                ),
                on_reap=self._on_reaped,
            )

        for station in spec.stations:
            self._add_station(
                station, [f for f in spec.flows if f.station == station.name]
            )
        # Stable sort: simultaneous events fire in spec order.
        for event in sorted(spec.timeline, key=lambda e: e.at_s):
            self.cell.sim.schedule(
                us_from_s(event.at_s),
                self._fire,
                event,
                category=EventCategory.OTHER,
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_station(
        self, station: StationSpec, flows: List[FlowSpec]
    ) -> None:
        self.cell.add_station(
            station.name,
            rate_mbps=station.rate_mbps,
            downlink_rate_mbps=station.downlink_rate_mbps,
            queue_capacity=station.queue_capacity,
            cooperate_with_tbr=station.cooperate_with_tbr,
        )
        self._station_specs[station.name] = station
        self._spec_flows[station.name] = list(flows)
        self._active[station.name] = []
        for flow, name in zip(flows, self._flow_names(flows)):
            self._start_flow(flow, name=name)

    @staticmethod
    def _flow_names(
        flows: List[FlowSpec], suffix: str = ""
    ) -> List[Optional[str]]:
        """Explicit flow names where the Cell's defaults would collide.

        ``Cell`` names flows ``<station>/<kind>-<direction>``, so two
        spec flows sharing that triple would merge in every per-flow
        report (and share a UDP RNG stream name).  The first occurrence
        keeps the default name (``None`` — byte-compatible with the
        pre-scenario construction path); repeats get ``#2``, ``#3``…
        ``suffix`` carries the ``@<burst>`` tag for re-started flows,
        where even first occurrences need an explicit name.
        """
        counts: Dict[tuple, int] = {}
        names: List[Optional[str]] = []
        for flow in flows:
            base = f"{flow.station}/{flow.kind}-{flow.direction}"
            n = counts[base] = counts.get(base, 0) + 1
            dup = "" if n == 1 else f"#{n}"
            if not suffix and n == 1:
                names.append(None)
            else:
                names.append(f"{base}{dup}{suffix}")
        return names

    def _start_flow(
        self, flow: FlowSpec, name: Optional[str] = None
    ) -> FlowHandle:
        station = self.cell.stations[flow.station]
        if flow.kind == "tcp":
            handle = self.cell.tcp_flow(
                station,
                direction=flow.direction,
                app=flow.app,
                task_bytes=flow.task_bytes,
                paced_mbps=flow.rate_mbps if flow.app == "paced" else None,
                name=name,
            )
        else:
            handle = self.cell.udp_flow(
                station,
                direction=flow.direction,
                rate_mbps=flow.rate_mbps,
                payload_bytes=flow.payload_bytes,
                name=name,
            )
        self._active[flow.station].append(handle)
        return handle

    # ------------------------------------------------------------------
    # timeline execution
    # ------------------------------------------------------------------
    def _fire(self, event) -> None:
        self.timeline_fired += 1
        if isinstance(event, JoinEvent):
            self._add_station(event.station, list(event.flows))
        elif isinstance(event, LeaveEvent):
            self._leave(event.station)
        elif isinstance(event, RejoinEvent):
            self._rejoin(event.station)
        elif isinstance(event, RateSwitchEvent):
            self._switch_rate(event)
        elif isinstance(event, TrafficOffEvent):
            self._quiesce_station(event.station)
        elif isinstance(event, TrafficOnEvent):
            self._burst_on(event.station)
        elif isinstance(event, ChannelDegradeEvent):
            self._degrade_channel(event)
        elif isinstance(event, ApOutageEvent):
            self._ap_outage(event)
        elif isinstance(event, StationCrashEvent):
            self._crash(event.station)
        else:  # pragma: no cover - spec.validate() rejects unknown kinds
            raise TypeError(f"unknown timeline event {event!r}")

    def _leave(self, name: str) -> None:
        """True disassociation: quiesce sources, then tear down."""
        self._quiesce_station(name)
        self._departed.add(name)
        self.cell.remove_station(name)

    def _crash(self, name: str) -> None:
        """Ungraceful death: the station vanishes, AP state stays.

        Uplink sources stop (a dead station offers nothing of its own)
        but downlink flows keep sending toward the silent peer — the
        resulting retry-exhaustion storm is the reaper's evidence.  No
        AP-side teardown happens here by design.
        """
        survivors = []
        for handle in self._active.get(name, ()):
            if handle.direction == "up":
                self._quiesce_flow(handle)
            else:
                survivors.append(handle)
        self._active[name] = survivors
        self._departed.add(name)
        self._crashed.add(name)
        self.cell.crash_station(name)

    def _on_reaped(self, name: str) -> None:
        """The AP declared ``name`` dead and tore its state down;
        stop the remaining (downlink) sources so the wire does not keep
        offering traffic the scheduler will only refuse."""
        self._quiesce_station(name)

    def _ap_outage(self, event: ApOutageEvent) -> None:
        """The AP dies: everyone present is torn down, the AP's MAC
        goes dark (in-flight frame aborted), and recovery is scheduled.

        Rejoin delays are drawn *now* from an RNG seeded by the spec
        seed and the outage ordinal — pure builder machinery, replayed
        byte-identically run to run.
        """
        self._outage_seq += 1
        survivors = list(self.cell.stations)
        for name in survivors:
            self._leave(name)
        self.cell.ap.outage_begin()
        rng = random.Random(f"{self.spec.seed}:outage:{self._outage_seq}")
        delays = [
            rng.uniform(0.0, event.rejoin_jitter_s) for _ in survivors
        ]
        self.cell.sim.schedule(
            us_from_s(event.duration_s),
            self._ap_recover,
            survivors,
            delays,
            category=EventCategory.OTHER,
        )

    def _ap_recover(self, survivors: List[str], delays: List[float]) -> None:
        self.cell.ap.outage_end()
        for name, delay in zip(survivors, delays):
            self.cell.sim.schedule(
                us_from_s(delay),
                self._rejoin,
                name,
                category=EventCategory.OTHER,
            )

    def _rejoin(self, name: str) -> None:
        """Revive a departed station from its original spec."""
        self._departed.discard(name)
        seq = self._rejoin_seq.get(name, 0) + 1
        self._rejoin_seq[name] = seq
        self._add_rejoined_station(name, seq)

    def _add_rejoined_station(self, name: str, seq: int) -> None:
        spec = self._station_specs[name]
        self.cell.add_station(
            spec.name,
            rate_mbps=spec.rate_mbps,
            downlink_rate_mbps=spec.downlink_rate_mbps,
            queue_capacity=spec.queue_capacity,
            cooperate_with_tbr=spec.cooperate_with_tbr,
        )
        self._active[name] = []
        flows = self._spec_flows.get(name, [])
        for flow, flow_name in zip(
            flows, self._flow_names(flows, suffix=f"@r{seq}")
        ):
            self._start_flow(flow, name=flow_name)

    def _quiesce_station(self, name: str) -> None:
        for handle in self._active.get(name, ()):
            self._quiesce_flow(handle)
        self._active[name] = []

    @staticmethod
    def _quiesce_flow(handle: FlowHandle) -> None:
        if handle.kind == "udp":
            handle.sender.stop()
            return
        if isinstance(handle.app, PacedApp):
            handle.app.stop()
        sender = handle.sender
        # Clamp the application at the bytes already handed to the
        # network: nothing new is offered, in-flight data drains.
        if sender.app_limit is None or sender.app_limit > sender.snd_nxt:
            sender.app_limit = sender.snd_nxt
        sender.app_finished = True

    def _switch_rate(self, event: RateSwitchEvent) -> None:
        station = self.cell.stations[event.station]
        controller = station.rate_controller
        if not isinstance(controller, FixedRate):
            raise TypeError(
                f"rate switch for {event.station!r} needs a FixedRate "
                f"controller, found {type(controller).__name__}"
            )
        controller.default_mbps = event.rate_mbps
        controller.table.clear()
        downlink = (
            event.downlink_rate_mbps
            if event.downlink_rate_mbps is not None
            else event.rate_mbps
        )
        self.cell.ap.set_downlink_rate(event.station, downlink)

    def _burst_on(self, name: str) -> None:
        if name in self._departed:
            return
        self._quiesce_station(name)  # idempotent: on-after-on restarts
        seq = self._burst_seq.get(name, 0) + 1
        self._burst_seq[name] = seq
        flows = self._spec_flows.get(name, [])
        for flow, flow_name in zip(
            flows, self._flow_names(flows, suffix=f"@{seq}")
        ):
            self._start_flow(flow, name=flow_name)

    def _degrade_channel(self, event: ChannelDegradeEvent) -> None:
        """Install a loss burst; restore the prior model when it ends.

        The installed model's RNG is seeded from the spec seed and the
        burst's ordinal, never from the channel's own stream — so a
        degrade window perturbs frame outcomes identically run to run.
        The restore is scheduled as plain builder machinery (it does
        not advance ``timeline_fired``).  Open windows form a stack:
        closing the one currently in force re-exposes the newest still-
        open window's model, and closing an already-superseded window
        just retires it — correct for both nested and interleaved
        windows.
        """
        self._degrade_seq += 1
        rng = random.Random(
            f"{self.spec.seed}:degrade:{self._degrade_seq}"
        )
        if event.station is None:
            model = BernoulliLoss(event.loss_probability, rng=rng)
        else:
            ap = self.cell.ap.address
            model = PerLinkLoss(
                {
                    (event.station, ap): event.loss_probability,
                    (ap, event.station): event.loss_probability,
                },
                rng=rng,
            )
        if not self._degrade_stack:
            self._degrade_base = self.cell.channel.loss
        self._degrade_stack.append(model)
        self.cell.channel.loss = model
        # Fires at ``at_s + duration_s``: we are at ``at_s`` right now.
        self.cell.sim.schedule(
            us_from_s(event.duration_s),
            self._restore_loss,
            model,
            category=EventCategory.OTHER,
        )

    def _restore_loss(self, installed) -> None:
        stack = self._degrade_stack
        for i, model in enumerate(stack):
            if model is installed:
                del stack[i]
                break
        else:  # pragma: no cover - every close matches one open
            return
        if self.cell.channel.loss is installed:
            self.cell.channel.loss = (
                stack[-1] if stack else self._degrade_base
            )
        if not stack:
            self._degrade_base = None

    # ------------------------------------------------------------------
    # running and reporting
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Warm up, then measure, per the spec's windows.

        With sanitization on, the invariant sanitizer rides the
        kernel's trace hook for the whole run and its end-of-run
        conservation checks fire before this returns — an
        :class:`~repro.sim.sanitizer.InvariantViolation` propagates to
        the caller.
        """
        if self.sanitize and self.sanitizer is None:
            from repro.sim.sanitizer import RuntimeSanitizer

            self.sanitizer = RuntimeSanitizer(self.cell).install()
        if self.fast_forward and self.ff_engine is None:
            from repro.sim.steady import FastForwardEngine

            self.ff_engine = FastForwardEngine(self.cell)
        runner = self.ff_engine.run if self.ff_engine is not None else self.cell.run
        try:
            runner(
                seconds=self.spec.seconds,
                warmup_seconds=self.spec.warmup_seconds,
            )
        finally:
            if self.sanitizer is not None:
                self.sanitizer.uninstall()
        if self.sanitizer is not None:
            self.sanitizer.finalize()

    def pool_leaked(self) -> int:
        """End-of-run pooled-packet leak count (0 on a healthy run);
        see :func:`repro.sim.sanitizer.pool_leak`."""
        from repro.sim.sanitizer import pool_leak

        return pool_leak(self.cell)

    def station_rates_mbps(self) -> Dict[str, float]:
        """Current uplink rate per station (post-timeline)."""
        return {
            name: station.rate_controller.rate_for(station.ap_address)
            for name, station in self.cell.stations.items()
        }


def build(spec: ScenarioSpec) -> ScenarioRuntime:
    """Validate and compile ``spec`` (not yet run)."""
    return ScenarioRuntime(spec)
