"""``python -m repro scenario`` — run and sweep declarative scenarios.

Examples::

    python -m repro scenario list
    python -m repro scenario run churn
    python -m repro scenario run mobility --set dwell_s=0.5 --seed 2
    python -m repro scenario sweep bursty --axis scheduler=fifo,tbr \
        --axis udp_mbps=4,8 --jobs 4

``run`` compiles one family in-process; ``sweep`` fans the cartesian
product of the ``--axis`` values out through the campaign executor —
worker processes plus the on-disk result cache — so a re-run only
simulates the points whose spec content changed.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

# Same default store as the figure/table campaigns — scenario jobs are
# content-addressed, so sharing the directory is safe (and lets warm
# re-runs coalesce across both CLIs).
from repro.campaign.store import default_store_root
from repro.scenario.registry import FAMILIES, build_spec, sweep_specs
from repro.scenario.runner import render_result, run_spec, run_sweep


def _coerce(text: str) -> Any:
    """CLI value -> int/float/bool/str (most specific wins)."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_assignments(pairs: List[str], flag: str) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"{flag} expects key=value, got {pair!r}")
        if key in out:
            raise ValueError(
                f"{flag} given twice for {key!r} — the first value "
                "would be silently dropped"
            )
        out[key] = value
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scenario",
        description=(
            "Compile declarative scenario specs (churn, mobility, "
            "bursty traffic, TCP/UDP mixes) and run them — one-off or "
            "as cached parallel sweeps."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list scenario families and their knobs")

    run_p = sub.add_parser("run", help="run one family in-process")
    run_p.add_argument("family", metavar="FAMILY")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument(
        "--seconds", type=float, default=None,
        help="measurement window override (family default if omitted)",
    )
    run_p.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="assignments", help="override any family knob (repeatable)",
    )
    run_p.add_argument(
        "--sanitize", action="store_true",
        help="run under the runtime invariant sanitizer (same event "
        "sequence; violations abort with component and sim-time)",
    )
    run_p.add_argument(
        "--fast-forward", action="store_true",
        help="enable the steady-state fast-forward engine (skips "
        "converged stretches analytically; renders match within "
        "printed precision)",
    )

    sweep_p = sub.add_parser(
        "sweep", help="fan a parameter sweep out as cached campaign jobs"
    )
    sweep_p.add_argument("family", metavar="FAMILY")
    sweep_p.add_argument(
        "--axis", action="append", default=[], metavar="KEY=V1,V2,...",
        dest="axes", help="sweep axis (repeatable; cartesian product)",
    )
    sweep_p.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        dest="assignments", help="fixed override applied to every point",
    )
    sweep_p.add_argument("--jobs", type=int, default=None, metavar="N")
    sweep_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store root (default: $REPRO_CACHE_DIR, else "
        "<repo root>/.repro-cache/campaign)",
    )
    sweep_p.add_argument("--no-cache", action="store_true")
    sweep_p.add_argument("--force", action="store_true")
    sweep_p.add_argument("--quiet", action="store_true")
    sweep_p.add_argument(
        "--missing-only", action="store_true",
        help="plan the sweep against the result store, report the "
        "cached/missing split, and execute only the missing points "
        "(no renders — fill-the-store mode)",
    )
    sweep_p.add_argument(
        "--queue", choices=("pool", "spool"), default="pool",
        help="work queue backend: in-process supervised pool (default) "
        "or a filesystem spool shared with 'repro campaign worker' "
        "processes",
    )
    sweep_p.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="spool directory for --queue spool",
    )
    sweep_p.add_argument(
        "--spool-workers", type=int, default=None, metavar="N",
        help="worker processes to spawn for --queue spool (default: "
        "--jobs; 0 relies on external workers)",
    )
    sweep_p.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-point wall-clock budget; hung points are killed and "
        "retried (workers > 1 only)",
    )
    sweep_p.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max attempts per point before quarantine",
    )
    sweep_p.add_argument(
        "--partial", action="store_true",
        help="exit 0 even when points were quarantined",
    )
    sweep_p.add_argument(
        "--sanitize", action="store_true",
        help="run every point under the runtime invariant sanitizer "
        "(exported to workers via REPRO_SANITIZE)",
    )
    sweep_p.add_argument(
        "--fast-forward", action="store_true",
        help="run every point through the steady-state fast-forward "
        "engine (exported to workers via REPRO_FASTFWD)",
    )

    args = parser.parse_args(argv)

    if args.command == "list":
        for name, family in FAMILIES.items():
            print(f"  {name:9} {family.summary}")
            knobs = ", ".join(
                f"{k}={v}" for k, v in family.defaults.items()
            )
            print(f"            knobs: {knobs}")
        return 0

    if args.family not in FAMILIES:
        valid = ", ".join(FAMILIES)
        print(
            f"unknown scenario family {args.family!r}; valid: {valid}",
            file=sys.stderr,
        )
        return 2

    try:
        overrides = {
            key: _coerce(value)
            for key, value in _parse_assignments(
                args.assignments, "--set"
            ).items()
        }
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.command == "run":
        # The dedicated flags and --set are two spellings of the same
        # override; refuse both, same as a repeated --set key.
        for flag, value in (("seed", args.seed), ("seconds", args.seconds)):
            if value is not None:
                if flag in overrides:
                    print(
                        f"--{flag} and --set {flag}=... given together — "
                        "pick one",
                        file=sys.stderr,
                    )
                    return 2
                overrides[flag] = value
        try:
            # build_spec raises on unknown knobs, the family builder on
            # mistyped values (e.g. a float joiner count), validate()
            # on inconsistent specs — all are user input errors here.
            spec = build_spec(args.family, **overrides)
            spec.validate()
        except (ValueError, TypeError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        sanitize = True if args.sanitize else None
        fast_forward = True if args.fast_forward else None
        print(
            render_result(
                run_spec(spec, sanitize=sanitize, fast_forward=fast_forward)
            )
        )
        return 0

    # sweep
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print("--timeout must be positive", file=sys.stderr)
        return 2
    if args.retries is not None and args.retries < 1:
        print("--retries must be >= 1", file=sys.stderr)
        return 2
    try:
        axes = {
            key: [_coerce(v) for v in value.split(",") if v]
            for key, value in _parse_assignments(args.axes, "--axis").items()
        }
        clash = sorted(set(axes) & set(overrides))
        if clash:
            print(
                f"--axis and --set given for the same knob(s): "
                f"{', '.join(clash)} — an axis value would silently "
                "replace the fixed override",
                file=sys.stderr,
            )
            return 2
        specs = sweep_specs(args.family, axes, **overrides)
        for spec in specs:
            spec.validate()  # fail fast, before any worker fan-out
    except (ValueError, TypeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    from repro.campaign.executor import quarantine_report
    from repro.campaign.policy import RetryPolicy
    from repro.campaign.store import ResultStore

    if args.queue == "spool" and not args.spool_dir:
        print("--queue spool requires --spool-dir", file=sys.stderr)
        return 2
    if args.spool_workers is not None and args.spool_workers < 0:
        print("--spool-workers must be >= 0", file=sys.stderr)
        return 2

    if args.sanitize:
        # Workers inherit the supervisor's environment, so the env
        # switch is how --sanitize crosses the process boundary.
        import os

        from repro.sim.sanitizer import SANITIZE_ENV

        os.environ[SANITIZE_ENV] = "1"
    if args.fast_forward:
        import os

        from repro.sim.steady import FASTFWD_ENV

        os.environ[FASTFWD_ENV] = "1"

    cache = (
        None
        if args.no_cache
        else ResultStore(
            default_store_root()
            if args.cache_dir is None
            else args.cache_dir
        )
    )
    retry = (
        RetryPolicy(max_attempts=args.retries)
        if args.retries is not None
        else None
    )

    missing_only = args.missing_only
    if missing_only:
        if cache is None:
            print(
                "--missing-only needs the result store (drop --no-cache)",
                file=sys.stderr,
            )
            return 2
        from repro.scenario.runner import scenario_job

        plan = cache.plan(
            scenario_job(spec, key=spec.name) for spec in specs
        )
        print(plan.summary())
        if not plan.missing:
            print("nothing to execute — the store already has every point")
            return 0
        missing_names = {job.key for job in plan.missing}
        specs = [spec for spec in specs if spec.name in missing_names]

    queue = None
    if args.queue == "spool":
        if cache is None:
            print(
                "--queue spool needs the result store (drop --no-cache)",
                file=sys.stderr,
            )
            return 2
        from repro.campaign.queue import SpoolQueue

        spool_workers = (
            args.spool_workers
            if args.spool_workers is not None
            else (args.jobs or 1)
        )
        queue = SpoolQueue(
            args.spool_dir, cache, workers=spool_workers
        )

    def progress(event: str, job, done: int, total: int) -> None:
        if not args.quiet:
            print(f"  [{done}/{total}] {job.label} ({event})")

    from repro.campaign.faults import FaultPlanError

    try:
        outcome = run_sweep(
            specs,
            workers=args.jobs,
            cache=cache,
            force=args.force,
            progress=progress,
            retry=retry,
            timeout_s=args.timeout,
            queue=queue,
        )
    except FaultPlanError as exc:
        # A malformed REPRO_CAMPAIGN_FAULTS plan is a usage error, not
        # a crash — same exit code as any other bad CLI input.
        print(str(exc), file=sys.stderr)
        return 2
    by_key = outcome.experiment_results("scenario")
    if missing_only:
        # Fill-the-store mode: the renders belong to a later warm run.
        specs = []
    for spec in specs:
        if spec.name not in by_key:
            print(f"[{spec.name}: not rendered — job quarantined]")
            print()
            continue
        print(render_result(by_key[spec.name]))
        print()
    report = quarantine_report(outcome)
    if report:
        print(report)
        print()
    print(outcome.stats.summary())
    if outcome.stats.interrupted:
        return 130
    if outcome.failures and not args.partial:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
