"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro fig9 [--seed 2] [--seconds 10]
    python -m repro all  [--seed 1]
    python -m repro campaign [fig8 fig9 ...] [--jobs 8] [--force]
    python -m repro campaign --resume [--timeout 600] [--retries 3]
    python -m repro campaign verify-cache [--purge]
    python -m repro scenario run churn [--set period_s=1.0]
    python -m repro perf [--stations 4,16,64,128] [--schedulers fifo,drr,tbr]
    python -m repro campus-scaling [--cells 2,4,8,16,32,64]
    python -m repro serve [--port 8037] [--cache-dir DIR]

Each experiment prints the same paper-vs-measured rendering the
benchmark harness stores under ``benchmarks/results/``.  ``campaign``
runs any mix of experiments across *supervised* worker processes —
crashed or hung jobs are retried with backoff, poison jobs are
quarantined without sinking the rest, and interrupted runs resume from
an on-disk checksummed result cache (see ``repro.campaign``);
``scenario`` runs and sweeps the declarative workload families (see
``repro.scenario``); ``perf`` runs the simulator scaling benchmark
instead (see ``repro.perf``) and writes ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

from repro.experiments import REGISTRY


def _call_run(module, seed: int, seconds: Optional[float]):
    """Invoke ``module.run`` with whichever knobs it supports."""
    params = inspect.signature(module.run).parameters
    kwargs = {"seed": seed}
    if seconds is not None:
        if "seconds" in params:
            kwargs["seconds"] = seconds
        elif "max_seconds" in params:
            kwargs["max_seconds"] = seconds
        elif "duration_s" in params:
            kwargs["duration_s"] = seconds
    return module.run(**kwargs)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "perf":
        # The perf benchmark has its own flag set; hand over before the
        # experiment parser rejects them.
        from repro.perf.cli import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "scenario":
        from repro.scenario.cli import main as scenario_main

        return scenario_main(argv[1:])
    if argv and argv[0] == "campus-scaling":
        from repro.perf.campus_scaling import main as campus_main

        return campus_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the tables and figures of Tan & Guttag, "
            "'Time-based Fairness Improves Performance in Multi-rate "
            "WLANs' (USENIX '04)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name (see 'list'), 'all', 'list', 'campaign', "
            "'scenario', or 'perf'"
        ),
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="simulated duration per run (experiment default if omitted)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8} {doc}")
        print("  campaign Parallel cached experiment runner "
              "(python -m repro campaign --help)")
        print("  scenario Declarative workload families: run/list/sweep "
              "(python -m repro scenario --help)")
        print("  perf     Simulator scaling benchmark -> BENCH_perf.json "
              "(python -m repro perf --help)")
        print("  campus-scaling ESS cells-vs-wall benchmark -> "
              "BENCH_perf.json (python -m repro campus-scaling --help)")
        print("  serve    Scenario reproduction over HTTP, backed by the "
              "result store (python -m repro serve --help)")
        return 0

    if args.experiment == "all":
        names = list(REGISTRY)
    elif args.experiment in REGISTRY:
        names = [args.experiment]
    else:
        valid = ", ".join(REGISTRY)
        print(f"unknown experiment {args.experiment!r}; valid: {valid}, all, list",
              file=sys.stderr)
        return 2

    for name in names:
        module = REGISTRY[name]
        result = _call_run(module, args.seed, args.seconds)
        print(module.render(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
