"""One module per paper figure/table, plus ablations and extensions.

Every module exposes ``run(seed=..., ...) -> Result`` and
``render(result) -> str``; the registry below lets tools iterate over
all reproductions::

    from repro.experiments import REGISTRY
    for name, module in REGISTRY.items():
        print(module.render(module.run(seed=1)))
"""

from repro.experiments import (
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    table1,
    table2,
    table3,
    table4,
    ablations,
    fairness_churn,
    fairness_outage,
)

REGISTRY = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig8": fig8,
    "fig9": fig9,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fairness-churn": fairness_churn,
    "fairness-outage": fairness_outage,
}

__all__ = [
    "REGISTRY",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "table1",
    "table2",
    "table3",
    "table4",
    "ablations",
    "fairness_churn",
    "fairness_outage",
]
