"""Figure 2: the motivating anomaly.

Two stations upload over TCP.  When both run at 11 Mbps each gets
~2.5 Mbps; replace one with a 1 Mbps station and *both* drop to
~0.7 Mbps while the slow station occupies ~6x more channel time.  The
paper's headline numbers: 11vs11 total 5.08 Mbps, 11vs1 total
1.34 Mbps (less than half the naive 2.93 Mbps average), channel-time
ratio 6.4x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import (
    CompetingResult,
    competing_job,
    fmt_frac,
    fmt_mbps,
    fmt_table,
)

PAPER_TOTAL_11V11 = 5.08
PAPER_TOTAL_11V1 = 1.34
PAPER_TOTAL_1V1 = 0.78
PAPER_CHANNEL_TIME_RATIO_11V1 = 6.4


@dataclass
class Fig2Result:
    same_rate: CompetingResult  # 11 vs 11
    mixed: CompetingResult  # 1 vs 11

    @property
    def channel_time_ratio(self) -> float:
        """Slow node's occupancy over fast node's, in the mixed case."""
        occ = self.mixed.occupancy
        return occ["n1"] / occ["n2"] if occ["n2"] > 0 else float("inf")

    @property
    def naive_expected_total(self) -> float:
        """Average of the 11vs11 total and the 1vs1-equivalent total,
        what one might naively expect for 1vs11 (paper: 2.93)."""
        return (self.same_rate.total_mbps + PAPER_TOTAL_1V1) / 2.0


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        competing_job(
            "fig2", "same", [11.0, 11.0], direction="up",
            seconds=seconds, seed=seed,
        ),
        competing_job(
            "fig2", "mixed", [1.0, 11.0], direction="up",
            seconds=seconds, seed=seed,
        ),
    ]


def reduce(results: Mapping[str, CompetingResult]) -> Fig2Result:
    return Fig2Result(same_rate=results["same"], mixed=results["mixed"])


def run(seed: int = 1, seconds: float = 15.0) -> Fig2Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig2Result) -> str:
    rows = []
    for label, res, paper in (
        ("11 vs 11", result.same_rate, PAPER_TOTAL_11V11),
        ("1 vs 11", result.mixed, PAPER_TOTAL_11V1),
    ):
        thr = res.throughput_mbps
        occ = res.occupancy
        rows.append(
            [
                label,
                fmt_mbps(thr["n1"]),
                fmt_mbps(thr["n2"]),
                fmt_mbps(res.total_mbps),
                f"{paper:.2f}",
                fmt_frac(occ["n1"]),
                fmt_frac(occ["n2"]),
            ]
        )
    table = fmt_table(
        ["case", "thr n1", "thr n2", "total", "paper total", "time n1", "time n2"],
        rows,
        title="Figure 2: TCP uplink throughput and channel occupancy",
    )
    ratio = result.channel_time_ratio
    return (
        f"{table}\n"
        f"channel-time ratio (1 Mbps / 11 Mbps node): {ratio:.1f}x "
        f"(paper {PAPER_CHANNEL_TIME_RATIO_11V1:.1f}x)\n"
        f"naive expected 1vs11 total: {result.naive_expected_total:.2f} Mbps; "
        f"actual {result.mixed.total_mbps:.2f} Mbps"
    )
