"""Shared machinery for the per-figure/table experiment modules.

Every experiment module in this package exposes::

    jobs(seed=..., seconds=...) -> List[Job]   # declarative sim configs
    reduce(results) -> <Result dataclass>      # pure assembly by job key
    run(seed=..., seconds=...) -> <Result dataclass>   # serial wrapper
    render(result) -> str          # ASCII table(s), paper-vs-measured

and module-level ``PAPER_*`` constants holding the values the paper
reports, so benchmarks can assert *shape* (who wins, by what factor).
``run()`` is exactly ``reduce(serial_results(jobs(...)))``; the campaign
executor (``repro.campaign``) runs the same jobs across worker
processes and through the on-disk result cache instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.campaign.job import Job, make_job
from repro.core.tbr import TbrConfig
from repro.phy.phy import DOT11B_LONG_PREAMBLE, PhyParams
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.spec import FlowSpec, ScenarioSpec, StationSpec


@dataclass
class CompetingResult:
    """Outcome of one run of competing stations."""

    scheduler: str
    direction: str
    rates: Dict[str, float]
    throughput_mbps: Dict[str, float]
    occupancy: Dict[str, float]
    seconds: float
    seed: int

    @property
    def total_mbps(self) -> float:
        return sum(self.throughput_mbps.values())


def competing_spec(
    rates: Union[Dict[str, float], Sequence[float]],
    *,
    direction: str = "up",
    scheduler: str = "fifo",
    transport: str = "tcp",
    udp_rate_mbps: float = 4.0,
    seconds: float = 15.0,
    warmup_seconds: float = 3.0,
    seed: int = 1,
    tbr_config: Optional[TbrConfig] = None,
    phy: PhyParams = DOT11B_LONG_PREAMBLE,
) -> ScenarioSpec:
    """The competing-stations setup as a declarative ScenarioSpec.

    One station per entry of ``rates``, each with a single bulk TCP (or
    CBR UDP) flow in ``direction`` — the paper's universal experiment
    shape, now expressed in the same spec language as the scenario
    families, so sweeps, the campaign cache and the builder treat both
    identically.
    """
    if transport not in ("tcp", "udp"):
        raise ValueError(f"unknown transport {transport!r}")
    if not isinstance(rates, dict):
        rates = {f"n{i + 1}": r for i, r in enumerate(rates)}
    stations = tuple(
        StationSpec(name, rate_mbps=rate) for name, rate in rates.items()
    )
    if transport == "tcp":
        flows = tuple(
            FlowSpec(station=name, kind="tcp", direction=direction)
            for name in rates
        )
    else:
        flows = tuple(
            FlowSpec(
                station=name, kind="udp", direction=direction,
                rate_mbps=udp_rate_mbps,
            )
            for name in rates
        )
    return ScenarioSpec(
        name=f"competing/{scheduler}/{transport}-{direction}",
        scheduler=scheduler,
        tbr_config=tbr_config,
        phy=phy,
        stations=stations,
        flows=flows,
        seconds=seconds,
        warmup_seconds=warmup_seconds,
        seed=seed,
    )


def run_competing(
    rates: Union[Dict[str, float], Sequence[float]],
    *,
    direction: str = "up",
    scheduler: str = "fifo",
    transport: str = "tcp",
    udp_rate_mbps: float = 4.0,
    seconds: float = 15.0,
    warmup_seconds: float = 3.0,
    seed: int = 1,
    tbr_config: Optional[TbrConfig] = None,
    phy: PhyParams = DOT11B_LONG_PREAMBLE,
) -> CompetingResult:
    """Run n stations with one bulk flow each and measure the paper's
    quantities (per-station goodput and channel occupancy).

    The setup is described by :func:`competing_spec` and compiled by
    the scenario builder, which constructs the cell in exactly the
    station-then-flow order this function always used — the fig/table
    renderings are byte-identical to the pre-scenario code path.

    The windows are additive: the cell first runs ``warmup_seconds``
    (discarded), then measures for ``seconds`` — so a warm-up longer
    than the measurement window is legitimate (the golden fig8/fig9
    runs measure 1 s after a 3 s warm-up).  What *is* degenerate is a
    non-positive measurement window: every throughput and occupancy
    below divides by it.
    """
    if seconds <= 0:
        raise ValueError(
            f"seconds must be positive, got {seconds!r}: a zero-length "
            "measurement window makes every throughput/occupancy figure "
            "a division by zero"
        )
    if warmup_seconds < 0:
        raise ValueError(
            f"warmup_seconds must be >= 0, got {warmup_seconds!r}"
        )
    spec = competing_spec(
        rates,
        direction=direction,
        scheduler=scheduler,
        transport=transport,
        udp_rate_mbps=udp_rate_mbps,
        seconds=seconds,
        warmup_seconds=warmup_seconds,
        seed=seed,
        tbr_config=tbr_config,
        phy=phy,
    )
    runtime = ScenarioRuntime(spec)
    runtime.run()
    cell = runtime.cell
    return CompetingResult(
        scheduler=scheduler,
        direction=direction,
        rates={s.name: s.rate_mbps for s in spec.stations},
        throughput_mbps=cell.station_throughputs_mbps(),
        occupancy=cell.occupancy_fractions(),
        seconds=seconds,
        seed=seed,
    )


# ----------------------------------------------------------------------
# campaign job plumbing
# ----------------------------------------------------------------------
#: Executor address for :func:`execute_competing` (what workers import).
COMPETING_EXECUTOR = "repro.experiments.common:execute_competing"


def competing_job(
    experiment: str,
    key,
    rates: Union[Dict[str, float], Sequence[float]],
    *,
    direction: str = "up",
    scheduler: str = "fifo",
    transport: str = "tcp",
    udp_rate_mbps: float = 4.0,
    seconds: float = 15.0,
    warmup_seconds: float = 3.0,
    seed: int = 1,
    tbr_config: Optional[TbrConfig] = None,
    phy: PhyParams = DOT11B_LONG_PREAMBLE,
) -> Job:
    """Describe one :func:`run_competing` call as a campaign job.

    ``rates`` is normalised to the station-name dict here so that e.g.
    fig3's ``[1.0, 11.0]`` and fig9's ``(1.0, 11.0)`` freeze to the
    same digest and coalesce into a single simulation.
    """
    if not isinstance(rates, dict):
        rates = {f"n{i + 1}": r for i, r in enumerate(rates)}
    return make_job(
        experiment,
        key,
        COMPETING_EXECUTOR,
        {
            "rates": rates,
            "direction": direction,
            "scheduler": scheduler,
            "transport": transport,
            "udp_rate_mbps": udp_rate_mbps,
            "seconds": seconds,
            "warmup_seconds": warmup_seconds,
            "seed": seed,
            "tbr_config": tbr_config,
            "phy": phy,
        },
    )


def execute_competing(params: Dict[str, object]) -> CompetingResult:
    """Job executor: run one competing-stations simulation."""
    kwargs = dict(params)
    rates = kwargs.pop("rates")
    return run_competing(rates, **kwargs)


# ----------------------------------------------------------------------
# rendering helpers
# ----------------------------------------------------------------------
def fmt_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_mbps(value: float) -> str:
    return f"{value:.3f}"


def fmt_frac(value: float) -> str:
    return f"{value:.3f}"


def fmt_pct(value: float) -> str:
    return f"{value * 100:+.0f}%"


def ratio_note(measured: float, paper: float) -> str:
    """'measured (paper X, ratio Y)' comparison cell."""
    if paper == 0:
        return f"{measured:.3f}"
    return f"{measured:.3f} (paper {paper:.3f}, x{measured / paper:.2f})"
