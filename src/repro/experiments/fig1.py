"""Figure 1: rate diversity exists.

Four bars of byte-per-rate fractions: three synthetic workshop sessions
(calibrated to the published mixes — the captures are not
redistributable) and EXP-1, which we reproduce as a *live simulation*:
an AP saturating four downlink UDP receivers placed at increasing
distance behind walls, with ARF rate adaptation and SNR-driven loss.
The paper's headline observations: WS-2 carries >30 % of bytes below
11 Mbps, and EXP-1 carries >50 % of bytes at 1 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.channel.loss import SnrLoss
from repro.channel.propagation import LogDistancePathLoss, RadioEnvironment
from repro.experiments.common import fmt_table
from repro.node.cell import Cell
from repro.node.rate_control import ArfController
from repro.traces.analyze import rate_fractions
from repro.traces.records import TraceRecord
from repro.traces.sniffer import ChannelSniffer
from repro.traces.synthetic import (
    PAPER_WORKSHOP_MIXES,
    WorkshopTraceConfig,
    generate_workshop_trace,
)

RATE_ORDER = (1.0, 2.0, 5.5, 11.0)

#: EXP-1 receiver placement (paper: ~4 ft; 12 ft + 1 thin wall;
#: 26 ft + 2 thin walls; 30 ft + 2 thick walls).  Distances in metres;
#: the 12-ft link carries extra measured shadowing (indoor reality per
#: Kotz et al.), calibrated so the settled rates are 11/5.5/1/1.
EXP1_PLACEMENT = (
    ("r1", 1.2, 0.0, 0.0),   # (name, distance_m, walls, shadowing_db)
    ("r2", 3.7, 1.0, 16.0),
    ("r3", 7.9, 2.0, 4.7),
    ("r4", 9.1, 2.0, 2.1),
)


@dataclass
class Fig1Result:
    #: session label -> {rate: byte fraction}
    fractions: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def below_11_fraction(self, session: str) -> float:
        return sum(
            frac for rate, frac in self.fractions[session].items() if rate < 11.0
        )

    def at_1_fraction(self, session: str) -> float:
        return self.fractions[session].get(1.0, 0.0)


def build_exp1_cell(seed: int = 1) -> Cell:
    """The EXP-1 office: AP + four UDP receivers behind walls."""
    import random as _random

    env = RadioEnvironment(
        LogDistancePathLoss(
            reference_loss_db=40.0, exponent=4.2, wall_loss_db=6.0
        ),
        tx_power_dbm=2.0,
        noise_floor_dbm=-92.0,
    )
    env.place("ap", 0.0, 0.0)
    for name, dist, walls, shadow in EXP1_PLACEMENT:
        env.place(name, dist, 0.0)
        env.set_walls("ap", name, walls)
        if shadow:
            env.set_shadowing("ap", name, shadow)

    cell = Cell(
        seed=seed,
        scheduler="rr",
        loss_model=SnrLoss(env, rng=_random.Random(f"exp1/{seed}")),
        ap_rate_controller=ArfController(),
    )
    for name, _, _, _ in EXP1_PLACEMENT:
        cell.add_station(name, rate_mbps=11.0)
        cell.udp_flow(cell.stations[name], direction="down", rate_mbps=3.0)
    return cell


def run_exp1(seed: int = 1, seconds: float = 20.0) -> Dict[float, float]:
    """Simulate EXP-1 and return the sniffed byte-per-rate fractions."""
    cell = build_exp1_cell(seed)
    sniffer = ChannelSniffer(cell.channel)
    cell.run(seconds=seconds)
    downlink = [r for r in sniffer.records if r.direction == "down"]
    return rate_fractions(downlink)


SESSIONS = ("WS-1", "WS-2", "WS-3")

WORKSHOP_EXECUTOR = "repro.experiments.fig1:execute_workshop"
EXP1_EXECUTOR = "repro.experiments.fig1:execute_exp1"


def execute_workshop(params: Dict) -> Dict[float, float]:
    """Job executor: synthesize one workshop session's byte mix."""
    config = WorkshopTraceConfig(
        session=params["session"],
        total_bytes=params["total_bytes"],
        n_users=params["n_users"],
    )
    return rate_fractions(generate_workshop_trace(config, seed=params["seed"]))


def execute_exp1(params: Dict) -> Dict[float, float]:
    """Job executor: simulate EXP-1 and sniff its downlink byte mix."""
    return run_exp1(params["seed"], params["seconds"])


def jobs(seed: int = 1, seconds: float = 20.0) -> List[Job]:
    out = [
        make_job(
            "fig1", session, WORKSHOP_EXECUTOR,
            {
                "session": session,
                "total_bytes": 30_000_000,
                "n_users": 20,
                "seed": seed,
            },
        )
        for session in SESSIONS
    ]
    out.append(
        make_job(
            "fig1", "EXP-1", EXP1_EXECUTOR, {"seed": seed, "seconds": seconds}
        )
    )
    return out


def reduce(results: Mapping[str, Dict[float, float]]) -> Fig1Result:
    result = Fig1Result()
    for session in (*SESSIONS, "EXP-1"):
        result.fractions[session] = results[session]
    return result


def run(seed: int = 1, seconds: float = 20.0) -> Fig1Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig1Result) -> str:
    headers = ["rate (Mbps)"] + list(result.fractions)
    rows = []
    for rate in RATE_ORDER:
        row = [f"{rate:g}"]
        for session in result.fractions:
            frac = result.fractions[session].get(rate, 0.0)
            row.append(f"{frac * 100:5.1f}%")
        rows.append(row)
    table = fmt_table(
        headers, rows, title="Figure 1: fraction of bytes per data rate"
    )
    return (
        f"{table}\n"
        f"WS-2 below 11 Mbps: {result.below_11_fraction('WS-2') * 100:.0f}% "
        f"(paper: >30%)\n"
        f"EXP-1 at 1 Mbps: {result.at_1_fraction('EXP-1') * 100:.0f}% "
        f"(paper: >50%)"
    )
