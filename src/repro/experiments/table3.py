"""Table 3: four nodes (1, 2, 11, 11 Mbps) under RF and TF.

The paper computes this table analytically from the Table 2 baselines
(RF: every node 0.436 Mbps, total 1.742; TF: 0.202 / 0.373 / 1.30 /
1.30, total 3.175 — an 82 % aggregate improvement, and the 1 Mbps
node's TF throughput equals what it would get in an all-1-Mbps cell).
We reproduce both the analytic table and a live 4-station simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.analysis.baseline import PAPER_TABLE2_TCP_MBPS
from repro.analysis.model import FairnessPrediction, NodeSpec, predict
from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import CompetingResult, competing_job, fmt_table

NODE_RATES = {"n1": 1.0, "n2": 2.0, "n3": 11.0, "n4": 11.0}

PAPER_RF = {"n1": 0.436, "n2": 0.436, "n3": 0.436, "n4": 0.436}
PAPER_TF = {"n1": 0.202, "n2": 0.373, "n3": 1.30, "n4": 1.30}
PAPER_RF_TOTAL = 1.742
PAPER_TF_TOTAL = 3.175


@dataclass
class Table3Result:
    prediction: FairnessPrediction
    simulated_rf: CompetingResult
    simulated_tf: CompetingResult


def jobs(seed: int = 1, seconds: float = 20.0) -> List[Job]:
    return [
        competing_job(
            "table3", notion, NODE_RATES, direction="up",
            scheduler=scheduler, seconds=seconds, seed=seed,
        )
        for notion, scheduler in (("rf", "fifo"), ("tf", "tbr"))
    ]


def reduce(results: Mapping[str, CompetingResult]) -> Table3Result:
    nodes = [
        NodeSpec(name, rate, beta_mbps=PAPER_TABLE2_TCP_MBPS[rate])
        for name, rate in NODE_RATES.items()
    ]
    return Table3Result(predict(nodes), results["rf"], results["tf"])


def run(seed: int = 1, seconds: float = 20.0) -> Table3Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Table3Result) -> str:
    rows = []
    pred = result.prediction
    for name, rate in NODE_RATES.items():
        rows.append(
            [
                f"{name} ({rate:g})",
                f"{pred.rf_per_node[name]:.3f}",
                f"{PAPER_RF[name]:.3f}",
                f"{result.simulated_rf.throughput_mbps[name]:.3f}",
                f"{pred.tf_per_node[name]:.3f}",
                f"{PAPER_TF[name]:.3f}",
                f"{result.simulated_tf.throughput_mbps[name]:.3f}",
            ]
        )
    rows.append(
        [
            "total",
            f"{pred.rf_total:.3f}",
            f"{PAPER_RF_TOTAL:.3f}",
            f"{result.simulated_rf.total_mbps:.3f}",
            f"{pred.tf_total:.3f}",
            f"{PAPER_TF_TOTAL:.3f}",
            f"{result.simulated_tf.total_mbps:.3f}",
        ]
    )
    table = fmt_table(
        [
            "node",
            "RF model",
            "RF paper",
            "RF sim",
            "TF model",
            "TF paper",
            "TF sim",
        ],
        rows,
        title="Table 3: four competing nodes (1, 2, 11, 11 Mbps), TCP uplink",
    )
    return (
        f"{table}\n"
        f"TF aggregate improvement: model {pred.improvement * 100:.0f}%, "
        f"simulated "
        f"{(result.simulated_tf.total_mbps / result.simulated_rf.total_mbps - 1) * 100:.0f}% "
        f"(paper 82%)"
    )
