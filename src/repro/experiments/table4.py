"""Table 4: TBR under unequal demand (the rate-adjustment check).

Two stations at 11 Mbps; n2's application is paced at 2.1 Mbps while
n1 sends as fast as TCP allows.  DCF's expected behaviour is to give n2
its 2.1 Mbps and n1 the rest; the paper shows TBR matches this
(Exp-Normal 2.943/2.128, Exp-TBR 2.954/2.119 — "no significant
difference"), demonstrating that the token-rate adjustment keeps the
channel fully utilized instead of idling n1 at a hard 50 % cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.core.tbr import TbrConfig
from repro.node.cell import Cell
from repro.experiments.common import fmt_table

PAPER = {
    "normal": {"n1": 2.9434, "n2": 2.1276, "total": 5.071},
    "tbr": {"n1": 2.9542, "n2": 2.1193, "total": 5.061},
}

PACED_MBPS = 2.1


@dataclass
class Table4Result:
    throughput: Dict[str, Dict[str, float]]

    def total(self, which: str) -> float:
        return sum(self.throughput[which].values())


def _run_one(
    scheduler: str, seed: int, seconds: float, tbr_config: Optional[TbrConfig]
) -> Dict[str, float]:
    cell = Cell(seed=seed, scheduler=scheduler, tbr_config=tbr_config)
    n1 = cell.add_station("n1", rate_mbps=11.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    cell.tcp_flow(n1, direction="up")
    cell.tcp_flow(n2, direction="up", app="paced", paced_mbps=PACED_MBPS)
    cell.run(seconds=seconds, warmup_seconds=3.0)
    return cell.station_throughputs_mbps()


PAIR_EXECUTOR = "repro.experiments.table4:execute_run"


def execute_run(params: Dict) -> Dict[str, float]:
    """Job executor: one paced-vs-greedy pair under one scheduler."""
    return _run_one(
        params["scheduler"], params["seed"], params["seconds"],
        params["tbr_config"],
    )


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        make_job(
            "table4", label, PAIR_EXECUTOR,
            {
                "scheduler": scheduler,
                "seed": seed,
                "seconds": seconds,
                "tbr_config": None,
            },
        )
        for label, scheduler in (("normal", "fifo"), ("tbr", "tbr"))
    ]


def reduce(results: Mapping[str, Dict[str, float]]) -> Table4Result:
    return Table4Result(
        throughput={label: results[label] for label in ("normal", "tbr")}
    )


def run(seed: int = 1, seconds: float = 15.0) -> Table4Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Table4Result) -> str:
    rows = []
    for which in ("normal", "tbr"):
        thr = result.throughput[which]
        paper = PAPER[which]
        rows.append(
            [
                which,
                f"{thr['n1']:.3f}",
                f"{paper['n1']:.3f}",
                f"{thr['n2']:.3f}",
                f"{paper['n2']:.3f}",
                f"{sum(thr.values()):.3f}",
                f"{paper['total']:.3f}",
            ]
        )
    return fmt_table(
        ["config", "n1", "n1 paper", "n2 (paced)", "n2 paper", "total", "total paper"],
        rows,
        title=f"Table 4: n2 app-limited to {PACED_MBPS} Mbps, both at 11 Mbps",
    )
