"""Fairness across an AP blackout: occupancy re-convergence after outage.

The harshest membership change a cell can see is not one station
leaving — it is the AP itself going dark: every association drops at
once, queued downlink packets flush back to the pool, an in-flight
frame is cut mid-air, and on recovery the whole population
re-associates in a seeded, jittered stampede.  The paper's fairness
claim has to survive that: once the dust settles, each station's share
of the attributed channel time must return to 1/n_active, and under
TBR each re-associating station receives its initial token grant
exactly once (the ``fairness-outage`` scenario family drives the
re-association through the same lifecycle path as a first join).

The run splits into three phases — *before* the outage, *down* (AP
dark plus the rejoin jitter window), and *after* — and the reduction
probes the after phase in windows of FILLEVENTs for the first in which
every station's share sits within tolerance of fair.  TBR re-converges
within a bounded number of FILLEVENTs; the FIFO baseline re-associates
just as fast but re-converges to the *anomaly* (the slow station's
share balloons), which is exactly the contrast worth pinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.core.tbr import TbrConfig
from repro.experiments.common import fmt_frac, fmt_table
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.registry import build_spec, fairness_outage_phases
from repro.scenario.spec import ApOutageEvent, ScenarioSpec
from repro.sim import us_from_s

FAMILY = "fairness-outage"
PHASES = ("before", "down", "after")
SCHEDULERS = ("fifo", "tbr")

#: A phase share within this distance of 1/n_active counts as fair.
SHARE_TOLERANCE = 0.12
#: Width of the post-recovery convergence probe window, in FILLEVENTs.
CONVERGE_WINDOW_FILLS = 25

#: Executor address for :func:`execute_outage` (what workers import).
OUTAGE_EXECUTOR = "repro.experiments.fairness_outage:execute_outage"


@dataclass
class OutagePhaseRun:
    """One scheduler's run, reduced to per-phase occupancy shares."""

    scheduler: str
    seed: int
    seconds: float
    #: phase -> station -> share of the phase's attributed airtime.
    shares: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: number of stations associated outside the outage window.
    n_active: int = 0
    #: total airtime attributed during the *down* phase.  The cell is
    #: silent while the AP is dark; what shows up here is the rejoin
    #: stampede in the jitter tail (re-association and the first
    #: post-recovery exchanges).
    down_airtime_us: float = 0.0
    #: FILLEVENTs after recovery until every station's windowed share
    #: is within SHARE_TOLERANCE of 1/n_active (``None`` = never).
    converge_fills: Optional[int] = None


@dataclass
class FairnessOutageResult:
    runs: Dict[str, OutagePhaseRun]  # scheduler -> reduced run

    @property
    def tbr(self) -> OutagePhaseRun:
        return self.runs["tbr"]

    @property
    def fifo(self) -> OutagePhaseRun:
        return self.runs["fifo"]


def _phase_of(time_us: float, down_us: float, up_us: float) -> str:
    if time_us < down_us:
        return "before"
    if time_us < up_us:
        return "down"
    return "after"


def _shares(occupancy: Mapping[str, float]) -> Dict[str, float]:
    total = sum(occupancy.values())
    if total <= 0:
        return {station: 0.0 for station in occupancy}
    return {station: used / total for station, used in occupancy.items()}


def execute_outage(params: Dict[str, object]) -> OutagePhaseRun:
    """Job executor: ``params`` carries the (thawed) fairness-outage spec.

    Phase boundaries, population and scheduler are all read off the
    spec, so the campaign cache digest covers the full configuration.
    """
    spec = params["spec"]
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"fairness-outage job params must carry a ScenarioSpec, "
            f"got {type(spec).__name__}"
        )
    outage = next(
        e for e in spec.timeline if isinstance(e, ApOutageEvent)
    )
    down_us = us_from_s(outage.at_s)
    up_us = us_from_s(
        outage.at_s + outage.duration_s + outage.rejoin_jitter_s
    )

    runtime = ScenarioRuntime(spec)
    cell = runtime.cell
    cell.usage.keep_records = True
    runtime.run()

    stations = [s.name for s in spec.stations]
    phase_occupancy: Dict[str, Dict[str, float]] = {
        phase: {station: 0.0 for station in stations} for phase in PHASES
    }
    for record in cell.usage.records:
        phase_occupancy[_phase_of(record.time, down_us, up_us)][
            record.station
        ] += record.airtime_us

    run = OutagePhaseRun(
        scheduler=spec.scheduler,
        seed=spec.seed,
        seconds=spec.seconds,
        shares={
            phase: _shares(phase_occupancy[phase]) for phase in PHASES
        },
        n_active=len(stations),
        down_airtime_us=sum(phase_occupancy["down"].values()),
    )

    # Post-recovery convergence: walk contiguous windows of
    # CONVERGE_WINDOW_FILLS fill intervals through the after phase and
    # find the first whose shares are all within tolerance of fair.
    fill_us = (spec.tbr_config or TbrConfig()).fill_interval_us
    window_us = CONVERGE_WINDOW_FILLS * fill_us
    horizon_us = us_from_s(spec.warmup_seconds + spec.seconds)
    after = [r for r in cell.usage.records if r.time >= up_us]
    fair = 1.0 / len(stations)
    window = 1
    while up_us + window * window_us <= horizon_us:
        lo = up_us + (window - 1) * window_us
        hi = lo + window_us
        occupancy = {station: 0.0 for station in stations}
        for record in after:
            if lo <= record.time < hi and record.station in occupancy:
                occupancy[record.station] += record.airtime_us
        shares = _shares(occupancy)
        if all(
            abs(shares[s] - fair) <= SHARE_TOLERANCE for s in stations
        ):
            run.converge_fills = window * CONVERGE_WINDOW_FILLS
            break
        window += 1
    return run


def jobs(seed: int = 1, seconds: float = 9.0) -> List[Job]:
    # The frozen spec IS the job config (same pattern as fairness-
    # churn): its content digest covers every knob, including the
    # family defaults resolved here at job-build time.
    return [
        make_job(
            "fairness-outage",
            scheduler,
            OUTAGE_EXECUTOR,
            {
                "spec": build_spec(
                    FAMILY, scheduler=scheduler, seed=seed, seconds=seconds
                )
            },
        )
        for scheduler in SCHEDULERS
    ]


def reduce(results: Mapping[str, OutagePhaseRun]) -> FairnessOutageResult:
    return FairnessOutageResult(runs={s: results[s] for s in SCHEDULERS})


def run(seed: int = 1, seconds: float = 9.0) -> FairnessOutageResult:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: FairnessOutageResult) -> str:
    blocks: List[str] = []
    for scheduler in SCHEDULERS:
        reduced = result.runs[scheduler]
        stations = sorted(reduced.shares["before"])
        rows = []
        for station in stations:
            rows.append(
                [station]
                + [
                    fmt_frac(reduced.shares[p].get(station, 0.0))
                    for p in PHASES
                ]
            )
        fair = 1.0 / reduced.n_active
        rows.append(
            ["1/n_active", fmt_frac(fair), "-", fmt_frac(fair)]
        )
        table = fmt_table(
            ["station", "before", "down", "after"],
            rows,
            title=(
                f"Fairness across an AP outage ({scheduler}, seed "
                f"{reduced.seed}, {reduced.seconds:g} s): occupancy "
                "share per phase"
            ),
        )
        if reduced.converge_fills is None:
            note = (
                "post-recovery shares never settled within "
                f"{SHARE_TOLERANCE:g} of 1/n_active"
            )
        else:
            note = (
                "post-recovery shares within "
                f"{SHARE_TOLERANCE:g} of 1/n_active after "
                f"{reduced.converge_fills} FILLEVENTs"
            )
        blocks.append(f"{table}\n{note}")
    return "\n\n".join(blocks)


__all__ = [
    "FAMILY",
    "PHASES",
    "SCHEDULERS",
    "FairnessOutageResult",
    "OutagePhaseRun",
    "execute_outage",
    "fairness_outage_phases",
    "jobs",
    "reduce",
    "render",
    "run",
]
