"""Ablations and extensions around TBR's design choices.

These regenerate the paper's Section 4/5 discussion points that have no
dedicated figure:

* **retry accounting** — the paper's prototype cannot see uplink
  retransmissions and slightly biases slow/lossy stations (the
  Exp-TBR-vs-Eq12 gap); the oracle mode reads true attempt counts;
* **bucket depth** — deeper buckets allow longer bursts and worsen
  short-term fairness (Section 4.5);
* **adjust cadence** — how fast ADJUSTRATEEVENT reclaims idle share;
* **weighted shares** — the QoS extension (unequal rate_i);
* **work conservation** — strict Figure 6 dequeue vs an immediate
  borrowing fallback (which defeats uplink regulation);
* **802.11g coexistence** — the paper's motivation: a 54 Mbps client
  dragged down by an 802.11b peer, and what TBR restores.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.fairness import jain_index
from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.channel.loss import PerLinkLoss
from repro.core.tbr import TbrConfig
from repro.experiments.common import competing_job, fmt_table
from repro.node.cell import Cell
from repro.sim import us_from_s


# ----------------------------------------------------------------------
# retry accounting
# ----------------------------------------------------------------------
@dataclass
class RetryAccountingResult:
    loss_rate: float
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def slow_node_bias(self) -> float:
        """How much extra throughput the lossy slow node keeps when its
        retries are invisible (paper: TBR 'slightly biased the node
        sending at a lower data rate')."""
        blind = self.throughput["blind"]["n1"]
        oracle = self.throughput["oracle"]["n1"]
        if oracle <= 0:
            return 0.0
        return blind / oracle - 1.0


RETRY_EXECUTOR = "repro.experiments.ablations:execute_retry_accounting"


def execute_retry_accounting(params: Dict) -> Dict[str, float]:
    """Job executor: lossy 1-vs-11 uplink under TBR, one accounting mode."""
    loss = PerLinkLoss({("n1", "ap"): params["loss_rate"]})
    cell = Cell(
        seed=params["seed"],
        scheduler="tbr",
        loss_model=loss,
        oracle_retry_accounting=params["oracle"],
    )
    n1 = cell.add_station("n1", rate_mbps=1.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    cell.tcp_flow(n1, direction="up")
    cell.tcp_flow(n2, direction="up")
    cell.run(seconds=params["seconds"], warmup_seconds=3.0)
    return cell.station_throughputs_mbps()


def jobs_retry_accounting(
    seed: int = 1, seconds: float = 15.0, loss_rate: float = 0.08
) -> List[Job]:
    return [
        make_job(
            "abl-retry", label, RETRY_EXECUTOR,
            {
                "oracle": oracle,
                "loss_rate": loss_rate,
                "seed": seed,
                "seconds": seconds,
            },
        )
        for label, oracle in (("blind", False), ("oracle", True))
    ]


def reduce_retry_accounting(
    results: Mapping[str, Dict[str, float]], loss_rate: float = 0.08
) -> RetryAccountingResult:
    return RetryAccountingResult(
        loss_rate=loss_rate,
        throughput={label: results[label] for label in ("blind", "oracle")},
    )


def run_retry_accounting(
    seed: int = 1, seconds: float = 15.0, loss_rate: float = 0.08
) -> RetryAccountingResult:
    """1 Mbps lossy uplink vs clean 11 Mbps uplink, TBR with and
    without retransmission information."""
    return reduce_retry_accounting(
        serial_results(
            jobs_retry_accounting(seed=seed, seconds=seconds, loss_rate=loss_rate)
        ),
        loss_rate=loss_rate,
    )


def render_retry_accounting(result: RetryAccountingResult) -> str:
    rows = [
        [
            label,
            f"{thr['n1']:.3f}",
            f"{thr['n2']:.3f}",
            f"{sum(thr.values()):.3f}",
        ]
        for label, thr in result.throughput.items()
    ]
    table = fmt_table(
        ["accounting", "n1 (1 Mbps, lossy)", "n2 (11 Mbps)", "total"],
        rows,
        title=(
            f"Retry accounting ablation ({result.loss_rate * 100:.0f}% uplink "
            f"loss on n1)"
        ),
    )
    return (
        f"{table}\n"
        f"slow-node bias without retry info: "
        f"{result.slow_node_bias() * 100:+.1f}% (paper: small positive)"
    )


# ----------------------------------------------------------------------
# bucket depth (short-term fairness)
# ----------------------------------------------------------------------
@dataclass
class BucketDepthResult:
    #: depth_us -> (long-term Jain over station occupancy,
    #:              mean short-window Jain)
    fairness: Dict[float, Tuple[float, float]] = field(default_factory=dict)


BUCKET_DEPTH_EXECUTOR = "repro.experiments.ablations:execute_bucket_depth"

DEFAULT_DEPTHS_US = (20_000.0, 100_000.0, 500_000.0, 2_000_000.0)


def execute_bucket_depth(params: Dict) -> Tuple[float, float]:
    """Job executor: one bucket depth's (long-term, short-window) Jain."""
    depth = params["depth_us"]
    window_s = params["window_s"]
    seconds = params["seconds"]
    config = TbrConfig(bucket_depth_us=depth, initial_tokens_us=depth / 5.0)
    cell = Cell(seed=params["seed"], scheduler="tbr", tbr_config=config)
    n1 = cell.add_station("n1", rate_mbps=1.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    cell.tcp_flow(n1, direction="down")
    cell.tcp_flow(n2, direction="down")
    cell.run(seconds=2.0)  # warm-up
    cell.reset_measurements()

    window_jains: List[float] = []
    usage = cell.usage
    prev = {s: 0.0 for s in cell.stations}
    steps = int(seconds / window_s)
    for _ in range(steps):
        cell.sim.run(until=cell.sim.now + us_from_s(window_s))
        current = {s: usage.occupancy_us(s) for s in cell.stations}
        deltas = [current[s] - prev[s] for s in cell.stations]
        prev = current
        if sum(deltas) > 0:
            window_jains.append(jain_index(deltas))
    long_term = jain_index([usage.occupancy_us(s) for s in cell.stations])
    short_term = statistics.mean(window_jains) if window_jains else 0.0
    return (long_term, short_term)


def jobs_bucket_depth(
    seed: int = 1,
    seconds: float = 12.0,
    depths_us: Tuple[float, ...] = DEFAULT_DEPTHS_US,
    window_s: float = 0.5,
) -> List[Job]:
    return [
        make_job(
            "abl-bucket-depth", depth, BUCKET_DEPTH_EXECUTOR,
            {
                "depth_us": depth,
                "window_s": window_s,
                "seed": seed,
                "seconds": seconds,
            },
        )
        for depth in depths_us
    ]


def reduce_bucket_depth(
    results: Mapping[float, Tuple[float, float]]
) -> BucketDepthResult:
    return BucketDepthResult(fairness=dict(results))


def run_bucket_depth(
    seed: int = 1,
    seconds: float = 12.0,
    depths_us: Tuple[float, ...] = DEFAULT_DEPTHS_US,
    window_s: float = 0.5,
) -> BucketDepthResult:
    """Sweep bucket depth; measure occupancy fairness long-term and over
    short windows (deep buckets allow long one-station bursts)."""
    return reduce_bucket_depth(
        serial_results(
            jobs_bucket_depth(
                seed=seed, seconds=seconds, depths_us=depths_us,
                window_s=window_s,
            )
        )
    )


def render_bucket_depth(result: BucketDepthResult) -> str:
    rows = [
        [f"{depth / 1000:.0f} ms", f"{lt:.3f}", f"{st:.3f}"]
        for depth, (lt, st) in result.fairness.items()
    ]
    return fmt_table(
        ["bucket depth", "long-term Jain", "short-window Jain"],
        rows,
        title="Bucket depth vs occupancy fairness (1vs11 downlink, TBR)",
    )


# ----------------------------------------------------------------------
# weighted shares (QoS extension)
# ----------------------------------------------------------------------
@dataclass
class WeightedSharesResult:
    weights: Dict[str, float]
    occupancy: Dict[str, float] = field(default_factory=dict)
    throughput: Dict[str, float] = field(default_factory=dict)

    def occupancy_ratio(self) -> float:
        return (
            self.occupancy["n1"] / self.occupancy["n2"]
            if self.occupancy.get("n2")
            else 0.0
        )


WEIGHTED_EXECUTOR = "repro.experiments.ablations:execute_weighted_shares"


def execute_weighted_shares(params: Dict) -> WeightedSharesResult:
    """Job executor: weighted TBR shares on two same-rate stations."""
    weights = params["weights"]
    config = TbrConfig(weights=weights, adjust_interval_us=0)
    cell = Cell(seed=params["seed"], scheduler="tbr", tbr_config=config)
    n1 = cell.add_station("n1", rate_mbps=11.0)
    n2 = cell.add_station("n2", rate_mbps=11.0)
    cell.tcp_flow(n1, direction="down")
    cell.tcp_flow(n2, direction="down")
    cell.run(seconds=params["seconds"], warmup_seconds=3.0)
    return WeightedSharesResult(
        weights=weights,
        occupancy=cell.occupancy_fractions(),
        throughput=cell.station_throughputs_mbps(),
    )


def jobs_weighted_shares(
    seed: int = 1, seconds: float = 15.0, weights: Optional[Dict[str, float]] = None
) -> List[Job]:
    weights = weights if weights is not None else {"n1": 3.0, "n2": 1.0}
    return [
        make_job(
            "abl-weighted", "weighted", WEIGHTED_EXECUTOR,
            {"weights": weights, "seed": seed, "seconds": seconds},
        )
    ]


def reduce_weighted_shares(
    results: Mapping[str, WeightedSharesResult]
) -> WeightedSharesResult:
    return results["weighted"]


def run_weighted_shares(
    seed: int = 1, seconds: float = 15.0, weights: Optional[Dict[str, float]] = None
) -> WeightedSharesResult:
    """Two same-rate stations with a 3:1 channel-time weighting."""
    return reduce_weighted_shares(
        serial_results(
            jobs_weighted_shares(seed=seed, seconds=seconds, weights=weights)
        )
    )


def render_weighted_shares(result: WeightedSharesResult) -> str:
    rows = [
        [
            name,
            f"{result.weights.get(name, 1.0):g}",
            f"{result.occupancy[name]:.3f}",
            f"{result.throughput[name]:.3f}",
        ]
        for name in sorted(result.occupancy)
    ]
    table = fmt_table(
        ["station", "weight", "occupancy", "throughput (Mbps)"],
        rows,
        title="Weighted TBR shares (Section 4.5 QoS extension)",
    )
    target = result.weights["n1"] / result.weights["n2"]
    return (
        f"{table}\n"
        f"occupancy ratio n1/n2: {result.occupancy_ratio():.2f} "
        f"(target {target:g})"
    )


# ----------------------------------------------------------------------
# work conservation
# ----------------------------------------------------------------------
@dataclass
class WorkConservationResult:
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)


def jobs_work_conservation(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        competing_job(
            "abl-work-conservation", label,
            [1.0, 11.0], direction="up", scheduler="tbr",
            tbr_config=TbrConfig(work_conserving=wc),
            seconds=seconds, seed=seed,
        )
        for label, wc in (("strict", False), ("borrowing", True))
    ]


def reduce_work_conservation(results: Mapping) -> WorkConservationResult:
    return WorkConservationResult(
        throughput={
            label: results[label].throughput_mbps
            for label in ("strict", "borrowing")
        }
    )


def run_work_conservation(seed: int = 1, seconds: float = 15.0) -> WorkConservationResult:
    """Strict Figure 6 dequeue vs immediate borrowing, uplink 1vs11.

    The borrowing fallback re-releases the slow station's withheld TCP
    acks whenever no eligible queue is backlogged, which collapses TBR
    back to throughput fairness on uplink traffic.
    """
    return reduce_work_conservation(
        serial_results(jobs_work_conservation(seed=seed, seconds=seconds))
    )


def render_work_conservation(result: WorkConservationResult) -> str:
    rows = [
        [label, f"{thr['n1']:.3f}", f"{thr['n2']:.3f}", f"{sum(thr.values()):.3f}"]
        for label, thr in result.throughput.items()
    ]
    return fmt_table(
        ["dequeue policy", "n1 (1 Mbps)", "n2 (11 Mbps)", "total"],
        rows,
        title="Work conservation ablation (uplink 1vs11, TBR)",
    )


# ----------------------------------------------------------------------
# polling MAC + TBR (Section 4.1's PCF remark)
# ----------------------------------------------------------------------
@dataclass
class PollingTbrResult:
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)
    charged_time_ratio: Dict[str, float] = field(default_factory=dict)


POLLING_EXECUTOR = "repro.experiments.ablations:execute_polling_tbr"


def execute_polling_tbr(params: Dict) -> Dict[str, object]:
    """Job executor: saturated polled uplink under one poll policy.

    Returns ``{"throughput": {...}, "charged_time_ratio": float|None}``
    (the ratio only exists for the token-driven policy).
    """
    from repro.channel.medium import Channel
    from repro.mac.polling import (
        PolledStation,
        PollingCoordinator,
        RoundRobinPollPolicy,
        TokenPollPolicy,
    )
    from repro.phy.phy import DOT11B_LONG_PREAMBLE
    from repro.queueing.round_robin import RoundRobinScheduler
    from repro.core.tbr import TbrScheduler
    from repro.sim import Simulator, us_from_s

    class _Pkt:
        def __init__(self):
            self.size_bytes = 1500
            self.mac_dst = "ap"
            self.station = None

    label = params["policy"]
    seed = params["seed"]
    seconds = params["seconds"]
    sim = Simulator(seed=seed)
    channel = Channel(sim)
    if label == "rr-poll":
        scheduler = RoundRobinScheduler()
        policy = RoundRobinPollPolicy()
    else:
        scheduler = TbrScheduler(sim)
        policy = TokenPollPolicy(scheduler)
    coordinator = PollingCoordinator(
        sim, channel, scheduler, DOT11B_LONG_PREAMBLE, policy
    )
    rx: Dict[str, int] = {}
    coordinator.rx_handler = lambda f, rx=rx: rx.__setitem__(
        f.src, rx.get(f.src, 0) + f.size_bytes
    )
    for name, rate in (("n1", 1.0), ("n2", 11.0)):
        station = PolledStation(
            sim, channel, name, DOT11B_LONG_PREAMBLE,
            rate_mbps=rate, queue_capacity=20_000,
        )
        policy.register(name)
        scheduler.associate(name)
        for _ in range(20_000):
            station.enqueue(_Pkt())
    sim.run(until=us_from_s(seconds))
    throughput = {
        name: rx.get(name, 0) * 8.0 / us_from_s(seconds)
        for name in ("n1", "n2")
    }
    ratio = None
    if label == "tbr-poll":
        buckets = scheduler.buckets
        ratio = buckets["n1"].spent_us / max(1.0, buckets["n2"].spent_us)
    return {"throughput": throughput, "charged_time_ratio": ratio}


def jobs_polling_tbr(seed: int = 1, seconds: float = 5.0) -> List[Job]:
    return [
        make_job(
            "abl-polling", label, POLLING_EXECUTOR,
            {"policy": label, "seed": seed, "seconds": seconds},
        )
        for label in ("rr-poll", "tbr-poll")
    ]


def reduce_polling_tbr(results: Mapping[str, Dict]) -> PollingTbrResult:
    result = PollingTbrResult()
    for label in ("rr-poll", "tbr-poll"):
        entry = results[label]
        result.throughput[label] = entry["throughput"]
        if entry["charged_time_ratio"] is not None:
            result.charged_time_ratio[label] = entry["charged_time_ratio"]
    return result


def run_polling_tbr(seed: int = 1, seconds: float = 5.0) -> PollingTbrResult:
    """Saturated uplink 1vs11 under a polling MAC, with the poll order
    driven by plain round robin vs TBR token state.

    The paper: "if the underlying MAC protocol employs a polling
    mechanism (such as 802.11's PCF), no explicit communication is
    necessary since TBR can dictate which node gets polled."
    """
    return reduce_polling_tbr(
        serial_results(jobs_polling_tbr(seed=seed, seconds=seconds))
    )


def render_polling_tbr(result: PollingTbrResult) -> str:
    rows = [
        [label, f"{thr['n1']:.3f}", f"{thr['n2']:.3f}", f"{sum(thr.values()):.3f}"]
        for label, thr in result.throughput.items()
    ]
    table = fmt_table(
        ["poll order", "n1 (1M)", "n2 (11M)", "total"],
        rows,
        title="Polling MAC (PCF-style) x poll policy, saturated uplink UDP",
    )
    ratio = result.charged_time_ratio.get("tbr-poll", 0.0)
    return (
        f"{table}\n"
        f"TBR-polled charged-time ratio n1/n2: {ratio:.2f} (target 1.0); "
        "no client modification involved."
    )


# ----------------------------------------------------------------------
# OAR baseline (related work [23], Sadeghi et al.)
# ----------------------------------------------------------------------
@dataclass
class OarComparisonResult:
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)
    occupancy: Dict[str, Dict[str, float]] = field(default_factory=dict)


OAR_EXECUTOR = "repro.experiments.ablations:execute_oar_case"

OAR_CASES = (
    ("dcf", "fifo", 0.0),
    ("oar", "fifo", 1.0),
    ("tbr", "tbr", 0.0),
)


def execute_oar_case(params: Dict) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Job executor: one MAC/AP case of the OAR comparison."""
    from repro.mac.dcf import MacConfig

    scheduler = params["scheduler"]
    config = TbrConfig(notify_clients=True) if scheduler == "tbr" else None
    cell = Cell(seed=params["seed"], scheduler=scheduler, tbr_config=config)
    mac_config = MacConfig(burst_base_rate_mbps=params["burst_base"])
    cooperate = scheduler == "tbr"
    n1 = cell.add_station(
        "n1", rate_mbps=1.0, mac_config=mac_config,
        cooperate_with_tbr=cooperate,
    )
    n2 = cell.add_station(
        "n2", rate_mbps=11.0, mac_config=mac_config,
        cooperate_with_tbr=cooperate,
    )
    cell.udp_flow(n1, direction="up", rate_mbps=2.0)
    cell.udp_flow(n2, direction="up", rate_mbps=8.0)
    cell.run(seconds=params["seconds"], warmup_seconds=3.0)
    return cell.station_throughputs_mbps(), cell.occupancy_fractions()


def jobs_oar_comparison(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        make_job(
            "abl-oar", label, OAR_EXECUTOR,
            {
                "scheduler": scheduler,
                "burst_base": burst_base,
                "seed": seed,
                "seconds": seconds,
            },
        )
        for label, scheduler, burst_base in OAR_CASES
    ]


def reduce_oar_comparison(results: Mapping[str, Tuple]) -> OarComparisonResult:
    result = OarComparisonResult()
    for label, _, _ in OAR_CASES:
        throughput, occupancy = results[label]
        result.throughput[label] = throughput
        result.occupancy[label] = occupancy
    return result


def run_oar_comparison(seed: int = 1, seconds: float = 15.0) -> OarComparisonResult:
    """DCF vs OAR vs TBR on uplink UDP, 1 Mbps vs 11 Mbps.

    OAR (Opportunistic Auto Rate) reaches temporal fairness inside the
    MAC: a station that wins contention at rate d sends d/base frames
    back-to-back.  It needs every *client* modified, whereas TBR only
    changes the AP (the paper's deployment argument); OAR's aggregate
    is higher because bursting also amortizes contention overhead.
    """
    return reduce_oar_comparison(
        serial_results(jobs_oar_comparison(seed=seed, seconds=seconds))
    )


def render_oar_comparison(result: OarComparisonResult) -> str:
    rows = []
    for label in result.throughput:
        thr = result.throughput[label]
        occ = result.occupancy[label]
        rows.append(
            [
                label,
                f"{thr['n1']:.3f}",
                f"{thr['n2']:.3f}",
                f"{sum(thr.values()):.3f}",
                f"{occ['n1']:.2f}/{occ['n2']:.2f}",
            ]
        )
    table = fmt_table(
        ["MAC/AP", "n1 (1M)", "n2 (11M)", "total", "time n1/n2"],
        rows,
        title="OAR baseline vs TBR (uplink UDP, 1vs11)",
    )
    return (
        f"{table}\n"
        "OAR modifies every client MAC; TBR changes only the AP "
        "(the paper's deployment argument)."
    )


# ----------------------------------------------------------------------
# client cooperation (uplink UDP, paper Section 4.1)
# ----------------------------------------------------------------------
@dataclass
class ClientCooperationResult:
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)
    occupancy: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def slow_occupancy(self, label: str) -> float:
        return self.occupancy[label]["n1"]


COOPERATION_EXECUTOR = "repro.experiments.ablations:execute_client_cooperation"


def execute_client_cooperation(
    params: Dict,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Job executor: uplink UDP under TBR, one cooperation mode."""
    cooperate = params["cooperate"]
    config = TbrConfig(notify_clients=cooperate, defer_hint_us=8_000.0)
    cell = Cell(seed=params["seed"], scheduler="tbr", tbr_config=config)
    n1 = cell.add_station("n1", rate_mbps=1.0, cooperate_with_tbr=cooperate)
    n2 = cell.add_station("n2", rate_mbps=11.0, cooperate_with_tbr=cooperate)
    cell.udp_flow(n1, direction="up", rate_mbps=2.0)
    cell.udp_flow(n2, direction="up", rate_mbps=8.0)
    cell.run(seconds=params["seconds"], warmup_seconds=3.0)
    return cell.station_throughputs_mbps(), cell.occupancy_fractions()


def jobs_client_cooperation(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        make_job(
            "abl-cooperation", label, COOPERATION_EXECUTOR,
            {"cooperate": cooperate, "seed": seed, "seconds": seconds},
        )
        for label, cooperate in (("no-agent", False), ("client-agent", True))
    ]


def reduce_client_cooperation(
    results: Mapping[str, Tuple]
) -> ClientCooperationResult:
    result = ClientCooperationResult()
    for label in ("no-agent", "client-agent"):
        throughput, occupancy = results[label]
        result.throughput[label] = throughput
        result.occupancy[label] = occupancy
    return result


def run_client_cooperation(
    seed: int = 1, seconds: float = 15.0
) -> ClientCooperationResult:
    """Uplink *UDP* 1vs11 under TBR, with and without the client agent.

    Uplink UDP has no ack stream the AP can withhold, so TBR needs the
    notification bit + client-side defer (Section 4.1).  Without it the
    slow station's occupancy stays near DCF's; with it, TBR's hints
    piggybacked on MAC ACKs bring both stations toward equal time.
    """
    return reduce_client_cooperation(
        serial_results(jobs_client_cooperation(seed=seed, seconds=seconds))
    )


def render_client_cooperation(result: ClientCooperationResult) -> str:
    rows = []
    for label in result.throughput:
        thr = result.throughput[label]
        occ = result.occupancy[label]
        rows.append(
            [
                label,
                f"{thr['n1']:.3f}",
                f"{thr['n2']:.3f}",
                f"{occ['n1']:.3f}",
                f"{occ['n2']:.3f}",
            ]
        )
    return fmt_table(
        ["config", "thr n1 (1M)", "thr n2 (11M)", "time n1", "time n2"],
        rows,
        title="Client cooperation for uplink UDP (TBR notification bit)",
    )


# ----------------------------------------------------------------------
# 802.11b/g coexistence (the paper's motivation)
# ----------------------------------------------------------------------
@dataclass
class BgCoexistenceResult:
    throughput: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def g_recovery(self) -> float:
        """How much of its throughput the g client regains under TBR."""
        normal = self.throughput["normal"]["g1"]
        tbr = self.throughput["tbr"]["g1"]
        return tbr / normal if normal > 0 else 0.0


BG_EXECUTOR = "repro.experiments.ablations:execute_bg_coexistence"


def execute_bg_coexistence(params: Dict) -> Dict[str, float]:
    """Job executor: mixed b/g cell under one AP scheduler."""
    cell = Cell(seed=params["seed"], scheduler=params["scheduler"])
    g1 = cell.add_station("g1", rate_mbps=54.0)
    b1 = cell.add_station("b1", rate_mbps=1.0)
    cell.tcp_flow(g1, direction="down")
    cell.tcp_flow(b1, direction="down")
    cell.run(seconds=params["seconds"], warmup_seconds=3.0)
    return cell.station_throughputs_mbps()


def jobs_bg_coexistence(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        make_job(
            "abl-bg", label, BG_EXECUTOR,
            {"scheduler": sched, "seed": seed, "seconds": seconds},
        )
        for label, sched in (("normal", "fifo"), ("tbr", "tbr"))
    ]


def reduce_bg_coexistence(
    results: Mapping[str, Dict[str, float]]
) -> BgCoexistenceResult:
    return BgCoexistenceResult(
        throughput={label: results[label] for label in ("normal", "tbr")}
    )


def run_bg_coexistence(seed: int = 1, seconds: float = 15.0) -> BgCoexistenceResult:
    """A 54 Mbps (802.11g) client sharing a protection-mode cell with a
    1 Mbps 802.11b client, with and without TBR.

    Mixed-mode timing is modelled conservatively: b-compatible PLCP and
    slots with the payload at the OFDM rate (CTS-to-self protection
    overhead folded into the long preamble).
    """
    return reduce_bg_coexistence(
        serial_results(jobs_bg_coexistence(seed=seed, seconds=seconds))
    )


def render_bg_coexistence(result: BgCoexistenceResult) -> str:
    rows = [
        [
            label,
            f"{thr['g1']:.3f}",
            f"{thr['b1']:.3f}",
            f"{sum(thr.values()):.3f}",
        ]
        for label, thr in result.throughput.items()
    ]
    table = fmt_table(
        ["config", "g client (54M)", "b client (1M)", "total"],
        rows,
        title="802.11b/g coexistence (downlink TCP, protection-mode timing)",
    )
    return (
        f"{table}\n"
        f"g client keeps {result.g_recovery():.1f}x more throughput under TBR"
    )


# ----------------------------------------------------------------------
# campaign registry
# ----------------------------------------------------------------------
#: ``name -> (jobs, reduce, render)``; names match the ``experiment``
#: field each ``jobs_*`` factory stamps on its jobs, so the campaign
#: CLI can mix ablations with the figure/table experiments.
CAMPAIGNS = {
    "abl-retry": (
        jobs_retry_accounting, reduce_retry_accounting, render_retry_accounting
    ),
    "abl-bucket-depth": (
        jobs_bucket_depth, reduce_bucket_depth, render_bucket_depth
    ),
    "abl-weighted": (
        jobs_weighted_shares, reduce_weighted_shares, render_weighted_shares
    ),
    "abl-work-conservation": (
        jobs_work_conservation, reduce_work_conservation,
        render_work_conservation,
    ),
    "abl-polling": (jobs_polling_tbr, reduce_polling_tbr, render_polling_tbr),
    "abl-oar": (
        jobs_oar_comparison, reduce_oar_comparison, render_oar_comparison
    ),
    "abl-cooperation": (
        jobs_client_cooperation, reduce_client_cooperation,
        render_client_cooperation,
    ),
    "abl-bg": (
        jobs_bg_coexistence, reduce_bg_coexistence, render_bg_coexistence
    ),
}
