"""Fairness under churn: occupancy shares across a true leave/rejoin.

The paper's Figure-8-style claim is that each competing station's
channel-time share converges to its fair share 1/n — but n is the
number of *currently associated* stations.  This experiment exercises
exactly that regime: the ``fairness-churn`` scenario family runs
``n_peers`` fast TCP uploaders plus one slow station that truly
disassociates a third of the way into the measurement window and
re-associates at two thirds.  The run splits into three phases
(*before*, *away*, *after*), and within each phase every associated
station's share of the attributed channel time should sit at
1/n_active — 1/(n_peers+1) while the leaver is present, 1/n_peers
while it is away.

Under TBR the shares re-converge after each membership change within a
bounded number of FILLEVENTs (the disassociation path redistributes
the leaver's token rate instead of stranding it at ``min_rate``); the
FIFO baseline shows the anomaly instead — the slow station hogs the
channel whenever it is present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.core.tbr import TbrConfig
from repro.experiments.common import fmt_frac, fmt_table
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.registry import build_spec
from repro.scenario.spec import LeaveEvent, RejoinEvent, ScenarioSpec
from repro.sim import us_from_s

FAMILY = "fairness-churn"
PHASES = ("before", "away", "after")
SCHEDULERS = ("fifo", "tbr")

#: A phase share within this distance of 1/n_active counts as fair.
SHARE_TOLERANCE = 0.12
#: Width of the post-leave convergence probe window, in FILLEVENTs.
CONVERGE_WINDOW_FILLS = 25

#: Executor address for :func:`execute_churn` (what workers import).
CHURN_EXECUTOR = "repro.experiments.fairness_churn:execute_churn"


@dataclass
class ChurnPhaseRun:
    """One scheduler's run, reduced to per-phase occupancy shares."""

    scheduler: str
    seed: int
    seconds: float
    #: phase -> station -> share of the phase's attributed airtime.
    shares: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: phase -> number of associated stations during the phase.
    n_active: Dict[str, int] = field(default_factory=dict)
    #: FILLEVENTs after the leave until every remaining station's
    #: windowed share is within SHARE_TOLERANCE of 1/n_active (``None``
    #: when the away phase never converges).  Counted in FILLEVENT
    #: units for every scheduler so the columns compare.
    converge_fills: Optional[int] = None


@dataclass
class FairnessChurnResult:
    runs: Dict[str, ChurnPhaseRun]  # scheduler -> reduced run

    @property
    def tbr(self) -> ChurnPhaseRun:
        return self.runs["tbr"]

    @property
    def fifo(self) -> ChurnPhaseRun:
        return self.runs["fifo"]


def _phase_of(time_us: float, leave_us: float, rejoin_us: float) -> str:
    if time_us < leave_us:
        return "before"
    if time_us < rejoin_us:
        return "away"
    return "after"


def _shares(occupancy: Mapping[str, float]) -> Dict[str, float]:
    total = sum(occupancy.values())
    if total <= 0:
        return {station: 0.0 for station in occupancy}
    return {station: used / total for station, used in occupancy.items()}


def execute_churn(params: Dict[str, object]) -> ChurnPhaseRun:
    """Job executor: ``params`` carries the (thawed) fairness-churn spec.

    Everything — topology, phase boundaries, scheduler, seed — is read
    off the spec, so the campaign cache digest covers the full run
    configuration (a family-default change in the registry reaches the
    digest through the spec content and invalidates stale entries).
    """
    spec = params["spec"]
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(
            f"fairness-churn job params must carry a ScenarioSpec, "
            f"got {type(spec).__name__}"
        )
    leave_event = next(
        e for e in spec.timeline if isinstance(e, LeaveEvent)
    )
    leave_s, leaver = leave_event.at_s, leave_event.station
    rejoin_s = next(
        e.at_s for e in spec.timeline if isinstance(e, RejoinEvent)
    )
    n_peers = len(spec.stations) - 1  # everyone but the leaver
    if n_peers < 1:
        raise ValueError(
            "fairness-churn needs at least one peer besides the leaver "
            "(the away phase would have no stations to share the channel)"
        )

    runtime = ScenarioRuntime(spec)
    cell = runtime.cell
    cell.usage.keep_records = True
    runtime.run()

    stations = [s.name for s in spec.stations]
    leave_us, rejoin_us = us_from_s(leave_s), us_from_s(rejoin_s)
    phase_occupancy: Dict[str, Dict[str, float]] = {
        phase: {station: 0.0 for station in stations} for phase in PHASES
    }
    for record in cell.usage.records:
        phase_occupancy[_phase_of(record.time, leave_us, rejoin_us)][
            record.station
        ] += record.airtime_us

    run = ChurnPhaseRun(
        scheduler=spec.scheduler,
        seed=spec.seed,
        seconds=spec.seconds,
        shares={
            phase: _shares(phase_occupancy[phase]) for phase in PHASES
        },
        n_active={
            "before": n_peers + 1, "away": n_peers, "after": n_peers + 1
        },
    )

    # Post-leave convergence: walk contiguous windows of
    # CONVERGE_WINDOW_FILLS fill intervals through the away phase and
    # find the first whose shares are all within tolerance of fair.
    fill_us = (spec.tbr_config or TbrConfig()).fill_interval_us
    window_us = CONVERGE_WINDOW_FILLS * fill_us
    away = [r for r in cell.usage.records if leave_us <= r.time < rejoin_us]
    fair = 1.0 / n_peers
    peers = [s for s in stations if s != leaver]
    window = 1
    while leave_us + window * window_us <= rejoin_us:
        lo = leave_us + (window - 1) * window_us
        hi = lo + window_us
        occupancy = {station: 0.0 for station in peers}
        for record in away:
            if lo <= record.time < hi and record.station in occupancy:
                occupancy[record.station] += record.airtime_us
        shares = _shares(occupancy)
        if all(abs(shares[p] - fair) <= SHARE_TOLERANCE for p in peers):
            run.converge_fills = window * CONVERGE_WINDOW_FILLS
            break
        window += 1
    return run


def jobs(seed: int = 1, seconds: float = 9.0) -> List[Job]:
    # The frozen spec IS the job config (like repro.scenario.scenario_
    # job): its content digest covers every knob, including the family
    # defaults resolved here at job-build time.
    return [
        make_job(
            "fairness-churn",
            scheduler,
            CHURN_EXECUTOR,
            {
                "spec": build_spec(
                    FAMILY, scheduler=scheduler, seed=seed, seconds=seconds
                )
            },
        )
        for scheduler in SCHEDULERS
    ]


def reduce(results: Mapping[str, ChurnPhaseRun]) -> FairnessChurnResult:
    return FairnessChurnResult(runs={s: results[s] for s in SCHEDULERS})


def run(seed: int = 1, seconds: float = 9.0) -> FairnessChurnResult:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: FairnessChurnResult) -> str:
    blocks: List[str] = []
    for scheduler in SCHEDULERS:
        reduced = result.runs[scheduler]
        stations = sorted(reduced.shares["before"])
        rows = []
        for station in stations:
            rows.append(
                [station]
                + [fmt_frac(reduced.shares[p].get(station, 0.0)) for p in PHASES]
            )
        rows.append(
            ["1/n_active"]
            + [fmt_frac(1.0 / reduced.n_active[p]) for p in PHASES]
        )
        table = fmt_table(
            ["station", "before", "away", "after"],
            rows,
            title=(
                f"Fairness under churn ({scheduler}, seed {reduced.seed}, "
                f"{reduced.seconds:g} s in equal thirds): occupancy share "
                "per phase"
            ),
        )
        if reduced.converge_fills is None:
            note = (
                "post-leave shares never settled within "
                f"{SHARE_TOLERANCE:g} of 1/n_active"
            )
        else:
            note = (
                "post-leave shares within "
                f"{SHARE_TOLERANCE:g} of 1/n_active after "
                f"{reduced.converge_fills} FILLEVENTs"
            )
        blocks.append(f"{table}\n{note}")
    return "\n\n".join(blocks)
