"""Figure 3: throughput and channel time under RF vs TF.

Three rate combinations (11vs11, 1vs11, 1vs1), two fairness notions:
RF = plain DCF + FIFO AP (throughput-based), TF = TBR (time-based).
The paper's claims:

* same-rate cases are identical under both notions;
* in 1vs11, RF equalizes throughput (and the slow node hogs the
  channel) while TF equalizes channel time (n2 gets ~β(11)/2, n1 gets
  ~β(1)/2 — the baseline property);
* TF's 1vs11 aggregate is roughly double RF's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import (
    CompetingResult,
    competing_job,
    fmt_frac,
    fmt_mbps,
    fmt_table,
)

COMBOS: List[Tuple[float, float]] = [(11.0, 11.0), (1.0, 11.0), (1.0, 1.0)]

NOTIONS = (("rf", "fifo"), ("tf", "tbr"))

#: Paper Figure 3(a) approximate bar values (Mbps): per combo, per
#: notion, (n1, n2).
PAPER_THROUGHPUT = {
    (11.0, 11.0): {"rf": (2.54, 2.54), "tf": (2.54, 2.54)},
    (1.0, 11.0): {"rf": (0.67, 0.67), "tf": (0.40, 2.52)},
    (1.0, 1.0): {"rf": (0.39, 0.39), "tf": (0.39, 0.39)},
}


@dataclass
class Fig3Result:
    cases: Dict[Tuple[float, float], Dict[str, CompetingResult]] = field(
        default_factory=dict
    )


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        competing_job(
            "fig3", (combo, notion),
            list(combo), direction="up", scheduler=scheduler,
            seconds=seconds, seed=seed,
        )
        for combo in COMBOS
        for notion, scheduler in NOTIONS
    ]


def reduce(results: Mapping[Tuple, CompetingResult]) -> Fig3Result:
    result = Fig3Result()
    for combo in COMBOS:
        result.cases[combo] = {
            notion: results[(combo, notion)] for notion, _ in NOTIONS
        }
    return result


def run(seed: int = 1, seconds: float = 15.0) -> Fig3Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig3Result) -> str:
    thr_rows = []
    occ_rows = []
    for combo, runs in result.cases.items():
        label = f"{combo[0]:g}vs{combo[1]:g}"
        for notion in ("rf", "tf"):
            res = runs[notion]
            paper = PAPER_THROUGHPUT[combo][notion]
            thr_rows.append(
                [
                    label,
                    notion.upper(),
                    fmt_mbps(res.throughput_mbps["n1"]),
                    fmt_mbps(res.throughput_mbps["n2"]),
                    fmt_mbps(res.total_mbps),
                    f"({paper[0]:.2f}, {paper[1]:.2f})",
                ]
            )
            occ_rows.append(
                [
                    label,
                    notion.upper(),
                    fmt_frac(res.occupancy["n1"]),
                    fmt_frac(res.occupancy["n2"]),
                ]
            )
    out = fmt_table(
        ["combo", "notion", "thr n1", "thr n2", "total", "paper (n1, n2)"],
        thr_rows,
        title="Figure 3(a): achieved TCP throughput",
    )
    out += "\n\n"
    out += fmt_table(
        ["combo", "notion", "time n1", "time n2"],
        occ_rows,
        title="Figure 3(b): channel occupancy fraction",
    )
    return out
