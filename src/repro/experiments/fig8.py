"""Figure 8: TBR adds no overhead in same-rate cells.

Two stations at the same rate (1, 2, 5.5 or 11 Mbps), TCP in one
direction, AP with and without TBR.  The paper: "Exp-TBR and Exp-Normal
yield almost identical results, showing that TBR incurs little
overhead."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import CompetingResult, competing_job, fmt_table

RATES = (1.0, 2.0, 5.5, 11.0)
DIRECTIONS = ("down", "up")
SCHEDULERS = (("normal", "fifo"), ("tbr", "tbr"))


@dataclass
class Fig8Result:
    #: keyed by (direction, rate) -> {"normal": ..., "tbr": ...}
    runs: Dict[Tuple[str, float], Dict[str, CompetingResult]] = field(
        default_factory=dict
    )

    def overhead_fraction(self, direction: str, rate: float) -> float:
        """Relative total-throughput change TBR introduces (should ~ 0)."""
        pair = self.runs[(direction, rate)]
        normal = pair["normal"].total_mbps
        if normal <= 0:
            return 0.0
        return pair["tbr"].total_mbps / normal - 1.0


def jobs(seed: int = 1, seconds: float = 12.0) -> List[Job]:
    """One sim per (direction, rate, scheduler)."""
    return [
        competing_job(
            "fig8", (direction, rate, label),
            [rate, rate], direction=direction, scheduler=scheduler,
            seconds=seconds, seed=seed,
        )
        for direction in DIRECTIONS
        for rate in RATES
        for label, scheduler in SCHEDULERS
    ]


def reduce(results: Mapping[Tuple, CompetingResult]) -> Fig8Result:
    result = Fig8Result()
    for direction in DIRECTIONS:
        for rate in RATES:
            result.runs[(direction, rate)] = {
                label: results[(direction, rate, label)]
                for label, _ in SCHEDULERS
            }
    return result


def run(seed: int = 1, seconds: float = 12.0) -> Fig8Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig8Result) -> str:
    rows = []
    for (direction, rate), pair in result.runs.items():
        rows.append(
            [
                direction,
                f"{rate:g}vs{rate:g}",
                f"{pair['normal'].total_mbps:.3f}",
                f"{pair['tbr'].total_mbps:.3f}",
                f"{result.overhead_fraction(direction, rate) * 100:+.1f}%",
            ]
        )
    return fmt_table(
        ["direction", "rates", "Exp-Normal", "Exp-TBR", "TBR delta"],
        rows,
        title="Figure 8: same-rate pairs with and without TBR (total Mbps)",
    )
