"""Figure 5: busy intervals are rarely single-user.

A day of synthetic residence-hall traffic at one busy AP (the
Whittemore capture is not redistributable) analyzed with the paper's
statistic: for each 1-second interval whose total throughput exceeds
4 Mbps, the byte share of that interval's heaviest user.

Paper's reading: the heaviest user carries the majority of bytes on
average, yet "the heaviest user alone rarely saturated the channel" —
in most busy seconds other users also moved significant data.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.experiments.common import fmt_table
from repro.traces.analyze import BusyInterval, busy_intervals
from repro.traces.synthetic import DormTraceConfig, generate_dorm_trace


@dataclass
class Fig5Result:
    intervals: List[BusyInterval] = field(default_factory=list)

    @property
    def fractions(self) -> List[float]:
        return [i.heaviest_fraction for i in self.intervals]

    @property
    def mean_heaviest_fraction(self) -> float:
        return statistics.mean(self.fractions) if self.intervals else 0.0

    @property
    def solo_fraction(self) -> float:
        """Share of busy intervals fully carried by one user."""
        if not self.intervals:
            return 0.0
        solo = sum(1 for f in self.fractions if f > 0.999)
        return solo / len(self.intervals)

    @property
    def multi_user_fraction(self) -> float:
        if not self.intervals:
            return 0.0
        multi = sum(1 for i in self.intervals if i.active_stations > 1)
        return multi / len(self.intervals)


DORM_EXECUTOR = "repro.experiments.fig5:execute_dorm"


def execute_dorm(params: Dict) -> List[BusyInterval]:
    """Job executor: a day of dorm traffic reduced to busy intervals."""
    config = DormTraceConfig(duration_s=params["duration_s"])
    records = generate_dorm_trace(config, seed=params["seed"])
    return busy_intervals(records, threshold_mbps=params["threshold_mbps"])


def jobs(seed: int = 1, duration_s: float = 24.0 * 3600.0) -> List[Job]:
    return [
        make_job(
            "fig5", "dorm", DORM_EXECUTOR,
            {"duration_s": duration_s, "threshold_mbps": 4.0, "seed": seed},
        )
    ]


def reduce(results: Mapping[str, List[BusyInterval]]) -> Fig5Result:
    return Fig5Result(intervals=results["dorm"])


def run(seed: int = 1, duration_s: float = 24.0 * 3600.0) -> Fig5Result:
    return reduce(serial_results(jobs(seed=seed, duration_s=duration_s)))


def render(result: Fig5Result) -> str:
    fracs = result.fractions
    buckets = [(0.0, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0), (1.0, 1.01)]
    rows = []
    for lo, hi in buckets:
        count = sum(1 for f in fracs if lo <= f < hi)
        label = "= 100%" if lo >= 1.0 else f"{lo * 100:.0f}-{hi * 100:.0f}%"
        pct = count / len(fracs) * 100 if fracs else 0.0
        rows.append([label, str(count), f"{pct:.1f}%"])
    table = fmt_table(
        ["heaviest-user share", "busy intervals", "fraction"],
        rows,
        title="Figure 5: heaviest user's share of busy 1-second intervals",
    )
    return (
        f"{table}\n"
        f"busy intervals: {len(result.intervals)}; "
        f"mean heaviest share {result.mean_heaviest_fraction * 100:.0f}% "
        f"(majority, as in the paper); "
        f"solo-saturated {result.solo_fraction * 100:.1f}% (rare); "
        f"multi-user {result.multi_user_fraction * 100:.0f}%"
    )
