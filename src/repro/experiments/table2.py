"""Table 2: baseline throughputs β(d, 1500, 2).

Two same-rate stations upload over TCP; the aggregate is the baseline
throughput for that rate.  The paper measures 5.189 / 3.327 / 1.493 /
0.806 Mbps for 11 / 5.5 / 2 / 1; we report simulated values alongside
the analytic timing model's prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.analysis.baseline import PAPER_TABLE2_TCP_MBPS, analytic_baseline_mbps
from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import CompetingResult, competing_job, fmt_table

RATES = (1.0, 2.0, 5.5, 11.0)


@dataclass
class Table2Result:
    measured_mbps: Dict[float, float] = field(default_factory=dict)
    analytic_mbps: Dict[float, float] = field(default_factory=dict)

    @property
    def paper_mbps(self) -> Dict[float, float]:
        return dict(PAPER_TABLE2_TCP_MBPS)


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    return [
        competing_job(
            "table2", rate, [rate, rate], direction="up",
            seconds=seconds, seed=seed,
        )
        for rate in RATES
    ]


def reduce(results: Mapping[float, CompetingResult]) -> Table2Result:
    result = Table2Result()
    for rate in RATES:
        result.measured_mbps[rate] = results[rate].total_mbps
        result.analytic_mbps[rate] = analytic_baseline_mbps(rate)
    return result


def run(seed: int = 1, seconds: float = 15.0) -> Table2Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Table2Result) -> str:
    rows = []
    for rate in RATES:
        measured = result.measured_mbps[rate]
        paper = PAPER_TABLE2_TCP_MBPS[rate]
        rows.append(
            [
                f"{rate:g}",
                f"{measured:.3f}",
                f"{result.analytic_mbps[rate]:.3f}",
                f"{paper:.3f}",
                f"{measured / paper:.2f}x",
            ]
        )
    return fmt_table(
        ["rate (Mbps)", "simulated", "analytic", "paper", "sim/paper"],
        rows,
        title="Table 2: baseline throughput beta(d, 1500B, 2 nodes), TCP",
    )
