"""Table 1: fairness/efficiency measures under RF vs TF.

Task-model experiment: a 1 Mbps and an 11 Mbps station each upload an
equal-sized file; we measure per-criterion outcomes under RF (plain
DCF+FIFO) and TF (TBR) and check the paper's qualitative table:

====================  ===========  ==========
criterion             RF           TF
====================  ===========  ==========
|thr_i - thr_j|       better (~0)  worse
|time_i - time_j|     worse        better (~0)
FinalTaskTime         same         same
AvgTaskTime           worse        better
AggrThruput (fluid)   worse        better
====================  ===========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.analysis.efficiency import Task, task_model_metrics
from repro.campaign.executor import serial_results
from repro.campaign.job import Job, make_job
from repro.analysis.model import NodeSpec
from repro.analysis.baseline import PAPER_TABLE2_TCP_MBPS
from repro.experiments.common import fmt_table
from repro.node.cell import Cell
from repro.sim import us_from_s

TASK_BYTES = 1_500_000
RATE_SLOW = 1.0
RATE_FAST = 11.0


@dataclass
class NotionOutcome:
    """Measured quantities for one fairness notion."""

    completion_s: Dict[str, float] = field(default_factory=dict)
    throughput_mbps: Dict[str, float] = field(default_factory=dict)
    occupancy: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_task_time_s(self) -> float:
        times = list(self.completion_s.values())
        return sum(times) / len(times) if times else 0.0

    @property
    def final_task_time_s(self) -> float:
        return max(self.completion_s.values()) if self.completion_s else 0.0

    @property
    def throughput_gap(self) -> float:
        thr = list(self.throughput_mbps.values())
        return abs(thr[0] - thr[1])

    @property
    def time_gap(self) -> float:
        occ = list(self.occupancy.values())
        return abs(occ[0] - occ[1])


@dataclass
class Table1Result:
    rf: NotionOutcome
    tf: NotionOutcome
    analytic: Dict[str, object] = field(default_factory=dict)


def _run_tasks(scheduler: str, seed: int, max_seconds: float) -> NotionOutcome:
    cell = Cell(seed=seed, scheduler=scheduler)
    slow = cell.add_station("slow", rate_mbps=RATE_SLOW)
    fast = cell.add_station("fast", rate_mbps=RATE_FAST)
    flows = [
        cell.tcp_flow(slow, direction="up", app="task", task_bytes=TASK_BYTES),
        cell.tcp_flow(fast, direction="up", app="task", task_bytes=TASK_BYTES),
    ]
    # Run until both tasks complete (chunked so we can snapshot the
    # occupancy shares while both nodes are still competing — the
    # paper's fairness measure applies to the contention interval).
    deadline = us_from_s(max_seconds)
    contention_shares = None
    while cell.sim.now < deadline and not all(f.stats.completed for f in flows):
        cell.sim.run(until=min(deadline, cell.sim.now + us_from_s(0.1)))
        if contention_shares is None and any(f.stats.completed for f in flows):
            contention_shares = cell.occupancy_shares()
    outcome = NotionOutcome()
    for flow in flows:
        name = flow.station.address
        done = flow.stats.completion_time_us()
        outcome.completion_s[name] = (
            done / 1e6 if done is not None else max_seconds
        )
        outcome.throughput_mbps[name] = (
            TASK_BYTES * 8.0 / us_from_s(outcome.completion_s[name])
        )
    outcome.occupancy = (
        contention_shares if contention_shares is not None
        else cell.occupancy_shares()
    )
    return outcome


TASKS_EXECUTOR = "repro.experiments.table1:execute_tasks"


def execute_tasks(params: Dict) -> NotionOutcome:
    """Job executor: the task-model run for one fairness notion."""
    return _run_tasks(params["scheduler"], params["seed"], params["max_seconds"])


def jobs(seed: int = 1, max_seconds: float = 120.0) -> List[Job]:
    return [
        make_job(
            "table1", notion, TASKS_EXECUTOR,
            {"scheduler": scheduler, "seed": seed, "max_seconds": max_seconds},
        )
        for notion, scheduler in (("rf", "fifo"), ("tf", "tbr"))
    ]


def reduce(results: Mapping[str, NotionOutcome]) -> Table1Result:
    nodes = [
        NodeSpec("slow", RATE_SLOW, beta_mbps=PAPER_TABLE2_TCP_MBPS[RATE_SLOW]),
        NodeSpec("fast", RATE_FAST, beta_mbps=PAPER_TABLE2_TCP_MBPS[RATE_FAST]),
    ]
    tasks = [Task(n, TASK_BYTES * 8.0) for n in nodes]
    analytic = task_model_metrics(tasks)
    return Table1Result(rf=results["rf"], tf=results["tf"], analytic=analytic)


def run(seed: int = 1, max_seconds: float = 120.0) -> Table1Result:
    return reduce(serial_results(jobs(seed=seed, max_seconds=max_seconds)))


def render(result: Table1Result) -> str:
    rf, tf = result.rf, result.tf
    rows = [
        [
            "|thr_i - thr_j| (Mbps)",
            f"{rf.throughput_gap:.3f}",
            f"{tf.throughput_gap:.3f}",
            "RF better",
        ],
        [
            "|time_i - time_j| (share)",
            f"{rf.time_gap:.3f}",
            f"{tf.time_gap:.3f}",
            "TF better",
        ],
        [
            "FinalTaskTime (s)",
            f"{rf.final_task_time_s:.1f}",
            f"{tf.final_task_time_s:.1f}",
            "same",
        ],
        [
            "AvgTaskTime (s)",
            f"{rf.avg_task_time_s:.1f}",
            f"{tf.avg_task_time_s:.1f}",
            "TF better",
        ],
    ]
    table = fmt_table(
        ["measure", "RF (DCF+FIFO)", "TF (TBR)", "paper says"],
        rows,
        title=(
            f"Table 1: task model, equal {TASK_BYTES / 1e6:.1f} MB uploads at "
            f"{RATE_SLOW:g} and {RATE_FAST:g} Mbps"
        ),
    )
    analytic_rf = result.analytic["rf"]
    analytic_tf = result.analytic["tf"]
    return (
        f"{table}\n"
        f"analytic (fluid) AvgTaskTime: RF {analytic_rf.avg_task_time_us / 1e6:.1f}s, "
        f"TF {analytic_tf.avg_task_time_us / 1e6:.1f}s; "
        f"FinalTaskTime: RF {analytic_rf.final_task_time_us / 1e6:.1f}s, "
        f"TF {analytic_tf.final_task_time_us / 1e6:.1f}s"
    )
