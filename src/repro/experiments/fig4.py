"""Figure 4: equal sharing among three same-rate nodes.

Three stations at 11 Mbps exchange data with the AP in four
configurations (UDP/TCP x up/down).  The paper's observations:

* per-node throughputs are approximately equal in every configuration
  (DCF uplink, AP queue downlink);
* TCP totals are below UDP totals (TCP-ack overhead);
* uplink totals exceed downlink totals (a single sender — the AP —
  pays a mandatory post-transmission backoff per frame and cannot
  saturate the channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import (
    CompetingResult,
    competing_job,
    fmt_mbps,
    fmt_table,
)

CONFIGS = ("udp_down", "udp_up", "tcp_down", "tcp_up")

#: Paper Figure 4, approximate per-node bars (Mbps).
PAPER_PER_NODE = {
    "udp_down": 1.85,
    "udp_up": 2.20,
    "tcp_down": 1.40,
    "tcp_up": 1.70,
}


@dataclass
class Fig4Result:
    runs: Dict[str, CompetingResult] = field(default_factory=dict)


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    out = []
    for config in CONFIGS:
        transport, direction = config.split("_")
        # The paper attributes downlink equality to the AP "usually
        # transmitting to wireless clients in a round-robin manner".
        scheduler = "rr" if direction == "down" else "fifo"
        out.append(
            competing_job(
                "fig4", config,
                [11.0, 11.0, 11.0],
                direction=direction,
                transport=transport,
                udp_rate_mbps=4.0,
                scheduler=scheduler,
                seconds=seconds,
                seed=seed,
            )
        )
    return out


def reduce(results: Mapping[str, CompetingResult]) -> Fig4Result:
    result = Fig4Result()
    for config in CONFIGS:
        result.runs[config] = results[config]
    return result


def run(seed: int = 1, seconds: float = 15.0) -> Fig4Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig4Result) -> str:
    rows = []
    for config in CONFIGS:
        res = result.runs[config]
        thr = res.throughput_mbps
        rows.append(
            [
                config,
                fmt_mbps(thr["n1"]),
                fmt_mbps(thr["n2"]),
                fmt_mbps(thr["n3"]),
                fmt_mbps(res.total_mbps),
                f"{PAPER_PER_NODE[config]:.2f}",
            ]
        )
    return fmt_table(
        ["config", "node1", "node2", "node3", "total", "paper/node"],
        rows,
        title="Figure 4: three 11 Mbps nodes, UDP/TCP x up/down",
    )
