"""Figure 9: the headline result — TBR in multi-rate cells.

Two stations (1, 2 or 5.5 Mbps versus 11 Mbps), TCP up or down, AP with
and without TBR, overlaid with the model predictions Eq 6 (RF) and
Eq 12 (TF) evaluated on the paper's measured baselines.

Paper's downlink aggregate improvements: +103 % (1vs11), +35 % (2vs11),
+6 % (5.5vs11); similar uplink.  Exp-Normal tracks Eq 6 and Exp-TBR
tracks Eq 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.analysis.baseline import PAPER_TABLE2_TCP_MBPS
from repro.analysis.model import NodeSpec, rf_throughputs, tf_throughputs
from repro.campaign.executor import serial_results
from repro.campaign.job import Job
from repro.experiments.common import CompetingResult, competing_job, fmt_table

PAIRS = ((1.0, 11.0), (2.0, 11.0), (5.5, 11.0))
DIRECTIONS = ("down", "up")
SCHEDULERS = (("normal", "fifo"), ("tbr", "tbr"))

#: Paper's approximate aggregate improvement of Exp-TBR over Exp-Normal.
PAPER_IMPROVEMENT = {(1.0, 11.0): 1.03, (2.0, 11.0): 0.35, (5.5, 11.0): 0.06}


def model_predictions(pair: Tuple[float, float]) -> Dict[str, Dict[str, float]]:
    """Eq 6 and Eq 12 for the pair, using the paper's Table 2 betas."""
    nodes = [
        NodeSpec("n1", pair[0], beta_mbps=PAPER_TABLE2_TCP_MBPS[pair[0]]),
        NodeSpec("n2", pair[1], beta_mbps=PAPER_TABLE2_TCP_MBPS[pair[1]]),
    ]
    return {"eq6": rf_throughputs(nodes), "eq12": tf_throughputs(nodes)}


@dataclass
class Fig9Result:
    #: keyed by (direction, pair) -> {"normal", "tbr"} results.
    runs: Dict[Tuple[str, Tuple[float, float]], Dict[str, CompetingResult]] = field(
        default_factory=dict
    )

    def improvement(self, direction: str, pair: Tuple[float, float]) -> float:
        entry = self.runs[(direction, pair)]
        normal = entry["normal"].total_mbps
        if normal <= 0:
            return 0.0
        return entry["tbr"].total_mbps / normal - 1.0


def jobs(seed: int = 1, seconds: float = 15.0) -> List[Job]:
    """One sim per (direction, rate pair, scheduler)."""
    return [
        competing_job(
            "fig9", (direction, pair, label),
            list(pair), direction=direction, scheduler=scheduler,
            seconds=seconds, seed=seed,
        )
        for direction in DIRECTIONS
        for pair in PAIRS
        for label, scheduler in SCHEDULERS
    ]


def reduce(results: Mapping[Tuple, CompetingResult]) -> Fig9Result:
    result = Fig9Result()
    for direction in DIRECTIONS:
        for pair in PAIRS:
            result.runs[(direction, pair)] = {
                label: results[(direction, pair, label)]
                for label, _ in SCHEDULERS
            }
    return result


def run(seed: int = 1, seconds: float = 15.0) -> Fig9Result:
    return reduce(serial_results(jobs(seed=seed, seconds=seconds)))


def render(result: Fig9Result) -> str:
    rows = []
    for (direction, pair), entry in result.runs.items():
        models = model_predictions(pair)
        eq6 = sum(models["eq6"].values())
        eq12 = sum(models["eq12"].values())
        gain = result.improvement(direction, pair)
        rows.append(
            [
                direction,
                f"{pair[0]:g}vs{pair[1]:g}",
                f"{eq6:.2f}",
                f"{entry['normal'].total_mbps:.2f}",
                f"{entry['tbr'].total_mbps:.2f}",
                f"{eq12:.2f}",
                f"{gain * 100:+.0f}%",
                f"+{PAPER_IMPROVEMENT[pair] * 100:.0f}%",
            ]
        )
    return fmt_table(
        [
            "dir",
            "rates",
            "Eq6",
            "Exp-Normal",
            "Exp-TBR",
            "Eq12",
            "TBR gain",
            "paper gain",
        ],
        rows,
        title="Figure 9: multi-rate pairs, model vs simulation (total Mbps)",
    )
