"""Per-station channel occupancy accounting.

The paper defines a node's channel occupancy time as the total time used
to transmit *and* receive its packets, including the data airtime, the
synchronous ACK, inter-frame spacings and every retransmission (Section
2.3 / 4.2).  The MAC reports each completed exchange here, tagged with
the *owning station* (for downlink frames the destination; for uplink
the source), so occupancy fractions per competing node fall out
directly — this regenerates the right-hand bars of the paper's Figures
2 and 3(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim import Simulator


@dataclass
class UsageRecord:
    """One completed MAC exchange (possibly several retries)."""

    time: float
    station: str
    airtime_us: float
    attempts: int
    success: bool
    payload_bytes: int
    rate_mbps: float
    direction: str  # "up" | "down"


class ChannelUsageMonitor:
    """Accumulates per-station channel occupancy time."""

    def __init__(self, sim: Simulator, *, keep_records: bool = False) -> None:
        self.sim = sim
        self.keep_records = keep_records
        self.records: List[UsageRecord] = []
        self._occupancy_us: Dict[str, float] = {}
        self._exchanges: Dict[str, int] = {}
        self._origin = sim.now

    def record_exchange(
        self,
        station: str,
        airtime_us: float,
        *,
        attempts: int = 1,
        success: bool = True,
        payload_bytes: int = 0,
        rate_mbps: float = 0.0,
        direction: str = "up",
    ) -> None:
        """Attribute ``airtime_us`` of channel time to ``station``."""
        if airtime_us < 0:
            raise ValueError("airtime must be non-negative")
        self._occupancy_us[station] = self._occupancy_us.get(station, 0.0) + airtime_us
        self._exchanges[station] = self._exchanges.get(station, 0) + 1
        if self.keep_records:
            self.records.append(
                UsageRecord(
                    time=self.sim.now,
                    station=station,
                    airtime_us=airtime_us,
                    attempts=attempts,
                    success=success,
                    payload_bytes=payload_bytes,
                    rate_mbps=rate_mbps,
                    direction=direction,
                )
            )

    def reset(self) -> None:
        """Clear accumulated occupancy (e.g. after warm-up)."""
        self._occupancy_us.clear()
        self._exchanges.clear()
        self.records.clear()
        self._origin = self.sim.now

    def credit(
        self, station: str, occupancy_us: float, exchanges: int
    ) -> None:
        """Fold a synthesized interval's usage into the accumulators.

        The fast-forward planner calls this with the skipped interval's
        modeled occupancy and exchange count; unlike
        :meth:`record_exchange` it never appends a per-exchange record
        (there was no individual exchange to describe).
        """
        if occupancy_us < 0 or exchanges < 0:
            raise ValueError("credited usage must be non-negative")
        self._occupancy_us[station] = (
            self._occupancy_us.get(station, 0.0) + occupancy_us
        )
        self._exchanges[station] = self._exchanges.get(station, 0) + exchanges

    # ------------------------------------------------------------------
    def occupancy_us(self, station: str) -> float:
        return self._occupancy_us.get(station, 0.0)

    def exchanges(self, station: str) -> int:
        return self._exchanges.get(station, 0)

    def exchange_counts(self) -> Dict[str, int]:
        """Snapshot of every station's exchange count."""
        return dict(self._exchanges)

    def total_occupancy_us(self) -> float:
        return sum(self._occupancy_us.values())

    def occupancies_us(self) -> Dict[str, float]:
        """Snapshot of every station's accumulated occupancy time."""
        return dict(self._occupancy_us)

    def stations(self) -> List[str]:
        return sorted(self._occupancy_us)

    def fraction_of_time(self, station: str, elapsed_us: Optional[float] = None) -> float:
        """Occupancy as a fraction of wall-clock simulation time."""
        if elapsed_us is None:
            elapsed_us = self.sim.now - self._origin
        if elapsed_us <= 0:
            return 0.0
        return self._occupancy_us.get(station, 0.0) / elapsed_us

    def fraction_of_busy(self, station: str) -> float:
        """Occupancy as a fraction of the summed attributed airtime."""
        total = self.total_occupancy_us()
        if total <= 0:
            return 0.0
        return self._occupancy_us.get(station, 0.0) / total

    def fractions(self) -> Dict[str, float]:
        """All stations' shares of the attributed airtime."""
        return {s: self.fraction_of_busy(s) for s in self.stations()}
