"""Single-cell wireless channel: medium, propagation and loss models.

The channel is a broadcast medium with zero propagation delay (a single
802.11 cell is a few tens of metres; propagation is nanoseconds against
20 us slots).  Any temporal overlap between two transmissions corrupts
both — collision behaviour therefore *emerges* from MAC timing rather
than being injected as a probability.
"""

from repro.channel.medium import Channel, Transmission, ChannelListener
from repro.channel.loss import (
    LossModel,
    NoLoss,
    BernoulliLoss,
    PerLinkLoss,
    SnrLoss,
    GilbertElliottLoss,
)
from repro.channel.propagation import (
    Position,
    LogDistancePathLoss,
    RadioEnvironment,
    distance,
)
from repro.channel.usage import ChannelUsageMonitor, UsageRecord

__all__ = [
    "Channel",
    "Transmission",
    "ChannelListener",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "PerLinkLoss",
    "SnrLoss",
    "GilbertElliottLoss",
    "Position",
    "LogDistancePathLoss",
    "RadioEnvironment",
    "distance",
    "ChannelUsageMonitor",
    "UsageRecord",
]
