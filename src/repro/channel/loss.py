"""Per-link frame loss models.

A loss model answers one question: *given this frame, does the intended
receiver fail to decode it?*  Collisions are handled by the medium; loss
models cover channel noise, fading and interference floors.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame


class LossModel:
    """Base class; subclasses override :meth:`loss_probability`."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng if rng is not None else random.Random(0)

    def loss_probability(self, frame: "Frame") -> float:
        raise NotImplementedError

    def is_lost(self, frame: "Frame") -> bool:
        p = self.loss_probability(frame)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.rng.random() < p


class NoLoss(LossModel):
    """The ideal channel."""

    def __init__(self) -> None:
        super().__init__(random.Random(0))

    def loss_probability(self, frame: "Frame") -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Uniform i.i.d. loss probability for every frame."""

    def __init__(self, probability: float, rng: Optional[random.Random] = None) -> None:
        super().__init__(rng)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        self.probability = probability

    def loss_probability(self, frame: "Frame") -> float:
        return self.probability


class PerLinkLoss(LossModel):
    """Explicit per-(src, dst) loss probabilities; default for others.

    The paper's controlled experiments hold loss under 2 %; this model is
    how scenarios express "node 3 has a 2 % frame loss rate".
    """

    def __init__(
        self,
        links: Optional[Dict[Tuple[str, str], float]] = None,
        default: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(rng)
        self.links: Dict[Tuple[str, str], float] = dict(links or {})
        self.default = default

    def set_link(self, src: str, dst: str, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        self.links[(src, dst)] = probability

    def loss_probability(self, frame: "Frame") -> float:
        return self.links.get((frame.src, frame.dst), self.default)


class SnrLoss(LossModel):
    """SNR-driven loss: PER from the modulation curves and a radio map.

    ``environment`` must expose ``snr_db(src, dst)`` (see
    :class:`repro.channel.propagation.RadioEnvironment`).
    """

    def __init__(self, environment, rng: Optional[random.Random] = None) -> None:
        super().__init__(rng)
        self.environment = environment

    def loss_probability(self, frame: "Frame") -> float:
        from repro.phy.modulation import frame_error_probability

        snr = self.environment.snr_db(frame.src, frame.dst)
        return frame_error_probability(frame.rate_mbps, snr, frame.size_bytes)


class GilbertElliottLoss(LossModel):
    """Two-state burst-loss model (per link).

    Each link is an independent Gilbert-Elliott chain: a GOOD state with
    low loss and a BAD state with high loss; state transitions are
    sampled per frame.  Used by robustness tests and the burst-loss
    ablation, not by the headline reproductions.
    """

    def __init__(
        self,
        p_good_to_bad: float = 0.01,
        p_bad_to_good: float = 0.1,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(rng)
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._state_bad: Dict[Tuple[str, str], bool] = {}

    def loss_probability(self, frame: "Frame") -> float:
        key = (frame.src, frame.dst)
        bad = self._state_bad.get(key, False)
        # Advance the chain one step for this frame.
        if bad:
            if self.rng.random() < self.p_bad_to_good:
                bad = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                bad = True
        self._state_bad[key] = bad
        return self.loss_bad if bad else self.loss_good
