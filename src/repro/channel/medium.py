"""The broadcast medium.

All attached listeners (MAC entities) share one carrier.  The channel
tracks the set of in-flight transmissions:

* it is *busy* whenever at least one transmission is active;
* two transmissions that overlap in time corrupt each other (no capture
  by default; an optional capture callback can rescue the stronger
  frame);
* at the end of each transmission every listener is told about the
  frame (``on_frame_end``), with per-listener corruption flags — the
  intended receiver additionally samples the link loss model.

Timestamp conventions: ``on_busy(busy_start)`` is invoked synchronously
when the medium transitions idle->busy.  A MAC whose own transmit event
is scheduled for exactly ``busy_start`` is already committed to that slot
and must not treat the notification as carrier (slot-synchronous
collision, see ``repro.mac.dcf``).

Notification fan-out is the hot path of a large cell: every busy/idle
transition used to call into all N listeners even though only the
stations with an armed backoff do anything with it.  Transitions are now
delivered from a precomputed snapshot of *carrier-subscribed* listeners
(bound methods, rebuilt lazily when the subscription set changes), and a
listener that does not currently contend can unsubscribe from carrier
transitions entirely via :meth:`carrier_unsubscribe` — it can still read
:attr:`carrier_busy` / :attr:`idle_start` at decision time.  Listeners
are subscribed by default, so implementations unaware of the
subscription API keep the historical behavior.  Delivery order is
always attachment order, regardless of subscription churn, which keeps
simulations byte-for-byte deterministic.

Frame-end delivery similarly runs off a snapshot of
``(attach_index, address, on_frame_end)`` triples rebuilt on attach.
A MAC that only needs frame-end notifications when it is *involved* can
opt into filtered delivery (:meth:`frame_end_filtered`): a clean
unicast frame is then delivered to its destination (O(1) address
lookup) and to the listeners whose EIFS state must be cleared
(:meth:`eifs_mark`), instead of to all N listeners.  Corrupted
(collided) and broadcast frames are always delivered to everyone,
because every observer's EIFS/receive state depends on them.  Delivery
order remains attachment order in every case.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple, TYPE_CHECKING

from repro.sim import EventCategory, Simulator, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame

#: Broadcast destination address (== repro.mac.frames.BROADCAST; kept
#: literal here so the channel does not import the MAC package).
_BROADCAST = "*"


class ChannelListener(Protocol):
    """Interface a MAC exposes to the channel."""

    address: str

    def on_busy(self, busy_start: float) -> None:
        """Medium went idle -> busy at ``busy_start`` (== sim.now)."""

    def on_idle(self, idle_start: float) -> None:
        """Medium went busy -> idle at ``idle_start`` (== sim.now)."""

    def on_frame_end(self, frame: "Frame", corrupted: bool) -> None:
        """A transmission finished; ``corrupted`` is this listener's view."""


class Transmission:
    """One in-flight frame."""

    __slots__ = ("frame", "sender", "start", "end", "collided")

    def __init__(self, frame: "Frame", sender: str, start: float, end: float) -> None:
        self.frame = frame
        self.sender = sender
        self.start = start
        self.end = end
        self.collided = False


class Channel:
    """Zero-delay broadcast medium with overlap collisions."""

    def __init__(self, sim: Simulator, loss_model=None, *, sniffers=None) -> None:
        from repro.channel.loss import NoLoss

        self.sim = sim
        self.loss = loss_model if loss_model is not None else NoLoss()
        self.listeners: List[ChannelListener] = []
        self.active: List[Transmission] = []
        self._last_tx_end: dict = {}
        self.busy_start: Optional[float] = None
        #: when the medium last became idle (0.0 at t=0: born idle).
        self.idle_start: float = 0.0
        self._busy_accum = 0.0
        self._sniffers: List[Callable] = list(sniffers or [])
        #: optional capture: callable(winner_candidates) -> Transmission or
        #: None; invoked on overlap, may spare one frame from collision.
        self.capture_rule: Optional[Callable] = None

        # --- notification snapshots -----------------------------------
        #: attach index per listener (delivery order is attach order).
        #: Indices are a monotonically increasing sequence, never
        #: reused, so detaching a listener leaves every other
        #: listener's delivery position untouched.
        self._attach_index: Dict[int, int] = {}
        self._attach_seq = 0
        #: carrier-subscribed listeners keyed by attach index.
        self._carrier_subs: Dict[int, ChannelListener] = {}
        self._carrier_snapshot: Tuple[Tuple[Callable, Callable], ...] = ()
        self._carrier_dirty = False
        #: (index, address, on_frame_end) for every attached listener.
        self._frame_end_entries: Dict[int, Tuple[int, str, Callable]] = {}
        #: same entries as a tuple in attach order (corrupted/broadcast
        #: frames are delivered to everyone).
        self._frame_end_snapshot: Tuple[Tuple[int, str, Callable], ...] = ()
        #: listeners receiving *every* frame end, keyed by attach index
        #: (those that did not opt into filtered delivery).
        self._frame_end_always: Dict[int, Tuple[int, str, Callable]] = {}
        self._frame_end_always_snapshot: Tuple[Tuple[int, str, Callable], ...] = ()
        #: filtered listeners by MAC address (clean-unicast fast path).
        self._by_address: Dict[str, Tuple[int, str, Callable]] = {}
        #: filtered listeners currently in EIFS state: they must hear
        #: about the next clean frame to clear it.
        self._eifs_dirty: Dict[int, Tuple[int, str, Callable]] = {}
        #: True while on_frame_end notifications for a just-finished
        #: transmission are being delivered and the idle notification is
        #: still outstanding; carrier_busy stays True for that window so
        #: unsubscribed listeners observe the same "busy until told
        #: otherwise" state the per-listener on_idle callbacks provide.
        self._idle_pending = False
        #: co-channel neighbours (see :meth:`couple`): media that hear
        #: every transmission started here as foreign interference.
        self._coupled: List["Channel"] = []

    # ------------------------------------------------------------------
    def attach(self, listener: ChannelListener) -> None:
        if listener in self.listeners:
            raise ValueError(f"listener {listener!r} already attached")
        index = self._attach_seq
        self._attach_seq += 1
        self.listeners.append(listener)
        self._attach_index[id(listener)] = index
        self._carrier_subs[index] = listener
        self._carrier_dirty = True
        entry = (index, listener.address, listener.on_frame_end)
        self._frame_end_entries[index] = entry
        self._frame_end_always[index] = entry
        self._rebuild_frame_end_snapshots()

    def detach(self, listener: ChannelListener) -> None:
        """Remove ``listener`` from every notification structure.

        The inverse of :meth:`attach` (station disassociation): carrier
        transitions, frame-end deliveries and EIFS bookkeeping all stop.
        Remaining listeners keep their original delivery positions; a
        listener attached later (re-association) goes to the end of the
        delivery order.  A transmission the listener already put on the
        air still ends normally.  No-op when not attached.
        """
        index = self._attach_index.pop(id(listener), None)
        if index is None:
            return
        self.listeners.remove(listener)
        if self._carrier_subs.pop(index, None) is not None:
            self._carrier_dirty = True
        self._frame_end_entries.pop(index, None)
        self._frame_end_always.pop(index, None)
        self._eifs_dirty.pop(index, None)
        entry = self._by_address.get(listener.address)
        if entry is not None and entry[0] == index:
            del self._by_address[listener.address]
        self._rebuild_frame_end_snapshots()

    def is_attached(self, listener: ChannelListener) -> bool:
        return id(listener) in self._attach_index

    def _rebuild_frame_end_snapshots(self) -> None:
        self._frame_end_snapshot = tuple(
            entry for _, entry in sorted(self._frame_end_entries.items())
        )
        self._frame_end_always_snapshot = tuple(
            entry for _, entry in sorted(self._frame_end_always.items())
        )

    def frame_end_filtered(self, listener: ChannelListener) -> None:
        """Opt ``listener`` into filtered frame-end delivery.

        The listener then hears about a frame end only when it is the
        destination, the frame was corrupted or broadcast, or it asked
        for the next clean frame via :meth:`eifs_mark`.  Only safe for
        MACs (like :class:`repro.mac.dcf.DcfMac`) whose handler is a
        pure no-op for clean unicast frames addressed elsewhere once
        their EIFS flag is clear.
        """
        index = self._attach_index[id(listener)]
        entry = self._frame_end_always.pop(index, None)
        if entry is not None:
            self._by_address[listener.address] = entry
            self._rebuild_frame_end_snapshots()

    def eifs_mark(self, listener: ChannelListener) -> None:
        """A filtered listener entered EIFS state: deliver the next
        clean frame to it so it can observe the medium recovering."""
        index = self._attach_index[id(listener)]
        self._eifs_dirty[index] = (
            index, listener.address, listener.on_frame_end
        )

    def eifs_unmark(self, listener: ChannelListener) -> None:
        """A filtered listener cleared its EIFS state."""
        self._eifs_dirty.pop(self._attach_index[id(listener)], None)

    def carrier_subscribe(self, listener: ChannelListener) -> None:
        """(Re)enable busy/idle notifications for ``listener``."""
        index = self._attach_index[id(listener)]
        if index not in self._carrier_subs:
            self._carrier_subs[index] = listener
            self._carrier_dirty = True

    def carrier_unsubscribe(self, listener: ChannelListener) -> None:
        """Stop busy/idle notifications for ``listener``.

        For nodes that are not currently contending: they can read
        :attr:`carrier_busy` and :attr:`idle_start` on demand instead of
        paying for every transition.  ``on_frame_end`` is unaffected.
        """
        index = self._attach_index[id(listener)]
        if self._carrier_subs.pop(index, None) is not None:
            self._carrier_dirty = True

    def _carrier_callbacks(self) -> Tuple[Tuple[Callable, Callable], ...]:
        if self._carrier_dirty:
            self._carrier_snapshot = tuple(
                (sub.on_busy, sub.on_idle)
                for _, sub in sorted(self._carrier_subs.items())
            )
            self._carrier_dirty = False
        return self._carrier_snapshot

    def add_sniffer(self, sniffer: Callable) -> None:
        """Register ``sniffer(frame, corrupted, start, end)`` observers."""
        self._sniffers.append(sniffer)

    @property
    def busy(self) -> bool:
        return bool(self.active)

    @property
    def carrier_busy(self) -> bool:
        """The carrier state an unsubscribed listener should act on.

        Identical to :attr:`busy` except during the frame-end broadcast
        of the transmission that empties the medium, where it stays True
        until the idle notifications have gone out — matching what a
        subscribed listener believes at that point in the event.
        """
        return bool(self.active) or self._idle_pending

    def busy_fraction(self) -> float:
        """Fraction of elapsed simulation time the medium was busy."""
        total = self.sim.now
        if total <= 0:
            return 0.0
        accum = self._busy_accum
        if self.busy and self.busy_start is not None:
            accum += self.sim.now - self.busy_start
        return accum / total

    def fast_forward(self, delta_us: float) -> None:
        """Shift the medium's absolute-time state after a kernel jump.

        Busy/idle transition marks, per-sender last-transmission ends
        (the deaf-after-transmit window) and any in-flight transmission
        boundaries all move with the clock, so a jump taken mid-exchange
        resumes with identical relative timing.  ``_busy_accum`` is an
        accumulator, not a timestamp — the fast-forward planner credits
        the skipped interval's busy time into it separately.
        """
        if self.busy_start is not None:
            self.busy_start += delta_us
        self.idle_start += delta_us
        last = self._last_tx_end
        for sender in last:
            last[sender] += delta_us
        for tx in self.active:
            tx.start += delta_us
            tx.end += delta_us

    # ------------------------------------------------------------------
    def couple(self, other: "Channel") -> None:
        """Make ``other`` overhear every transmission started here.

        Co-channel interference between cells on the same RF channel: a
        frame put on this medium also *begins* on ``other`` — marking it
        busy, colliding with whatever is on the air there, and ending at
        the same instant — without this medium hearing anything back.
        Couple both directions for symmetric interference (the campus
        layer does).  Addresses must be unique across coupled media: a
        foreign clean unicast finds no local destination, so it costs
        carrier time but delivers nothing.
        """
        if other is self:
            raise ValueError("a channel cannot couple to itself")
        if other.sim is not self.sim:
            raise ValueError("coupled channels must share one simulator")
        if other not in self._coupled:
            self._coupled.append(other)

    def transmit(self, frame: "Frame", duration: float) -> Transmission:
        """Begin transmitting ``frame``; it ends ``duration`` us from now.

        Called by a MAC that has decided to transmit *this instant*.
        Collision marking and busy notification happen synchronously; the
        frame-end event is scheduled at PHY priority.  Coupled co-channel
        media (see :meth:`couple`) each begin their own copy of the
        transmission — one extra PHY frame-end event per neighbour.
        """
        tx = self._begin(frame, duration)
        for other in self._coupled:
            other._begin(frame, duration)
        return tx

    def _begin(self, frame: "Frame", duration: float) -> Transmission:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        now = self.sim.now
        tx = Transmission(frame, frame.src, now, now + duration)
        prev_end = self._last_tx_end.get(frame.src, 0.0)
        self._last_tx_end[frame.src] = max(prev_end, tx.end)
        was_idle = not self.active
        if not was_idle:
            # Overlap: everyone still in the air (and the newcomer) collides.
            survivors = self._apply_capture(tx)
            for other in self.active:
                if other not in survivors:
                    other.collided = True
            if tx not in survivors:
                tx.collided = True
        self.active.append(tx)
        if was_idle:
            self.busy_start = now
            for on_busy, _ in self._carrier_callbacks():
                on_busy(now)
        # Frame-end events are fire-and-forget (never cancelled), so the
        # kernel may recycle the event objects.
        self.sim.schedule_transient(
            duration, self._end, tx,
            priority=EventPriority.PHY, category=EventCategory.PHY,
        )
        return tx

    def _apply_capture(self, newcomer: Transmission) -> List[Transmission]:
        if self.capture_rule is None:
            return []
        winner = self.capture_rule(list(self.active) + [newcomer])
        return [winner] if winner is not None else []

    # ------------------------------------------------------------------
    def abort(self, tx: Transmission) -> None:
        """Corrupt an in-flight transmission (its sender died mid-TX).

        The carrier keeps occupying the medium until the scheduled
        frame end — the energy is already on the air — but the frame is
        marked collided, so it delivers to no destination and observers
        see a corrupted frame end (EIFS recovery), exactly as if the
        transmitter's PLL had dropped out.  No-op for a transmission
        that already ended.
        """
        if tx in self.active:
            tx.collided = True

    def _end(self, tx: Transmission) -> None:
        self.active.remove(tx)
        now = self.sim.now
        went_idle = not self.active
        if went_idle:
            if self.busy_start is not None:
                self._busy_accum += now - self.busy_start
                self.busy_start = None
            self.idle_start = now
            self._idle_pending = True

        frame = tx.frame
        collided = tx.collided
        dest_corrupted = collided or self.loss.is_lost(frame)

        for sniffer in self._sniffers:
            sniffer(frame, dest_corrupted, collided, tx.start, tx.end)

        # Deliver frame-end notifications.  Non-destination observers
        # see collision corruption (they could not decode either) but not
        # the destination's private link loss.  A listener whose own
        # transmission overlapped this frame was half-duplex deaf and
        # receives nothing (in particular, a collided sender does not
        # observe the peer's corrupted frame and retries after DIFS, not
        # EIFS, exactly as a real station that decoded no energy).
        #
        # Corrupted and broadcast frames concern every listener.  A
        # clean unicast frame only matters to its destination, to the
        # unfiltered listeners, and to filtered listeners in EIFS state
        # (their handler for it is "clear EIFS and return") — delivering
        # to just those turns the O(listeners) loop into O(involved).
        src = frame.src
        dst = frame.dst
        deaf_after = tx.start + 1e-9
        last_end = self._last_tx_end.get
        if collided or dst == _BROADCAST:
            targets = self._frame_end_snapshot
        else:
            always = self._frame_end_always_snapshot
            dirty = self._eifs_dirty
            dst_entry = self._by_address.get(dst)
            if not dirty:
                # Common case in all-DCF cells: no EIFS stragglers and
                # (usually) no unfiltered listeners — deliver straight
                # to the destination without building a merged dict.
                if dst_entry is None:
                    targets = always
                elif not always:
                    targets = (dst_entry,)
                else:
                    merged = {entry[0]: entry for entry in always}
                    merged[dst_entry[0]] = dst_entry
                    targets = [e for _, e in sorted(merged.items())]
            else:
                merged = {entry[0]: entry for entry in always}
                if dst_entry is not None:
                    merged[dst_entry[0]] = dst_entry
                merged.update(dirty)
                targets = [entry for _, entry in sorted(merged.items())]
        for _, address, on_frame_end in targets:
            if address == src:
                continue
            if last_end(address, 0.0) > deaf_after:
                continue
            on_frame_end(frame, dest_corrupted if address == dst else collided)

        if went_idle:
            self._idle_pending = False
            for _, on_idle in self._carrier_callbacks():
                on_idle(now)
