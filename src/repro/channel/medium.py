"""The broadcast medium.

All attached listeners (MAC entities) share one carrier.  The channel
tracks the set of in-flight transmissions:

* it is *busy* whenever at least one transmission is active;
* two transmissions that overlap in time corrupt each other (no capture
  by default; an optional capture callback can rescue the stronger
  frame);
* at the end of each transmission every listener is told about the
  frame (``on_frame_end``), with per-listener corruption flags — the
  intended receiver additionally samples the link loss model.

Timestamp conventions: ``on_busy(busy_start)`` is invoked synchronously
when the medium transitions idle->busy.  A MAC whose own transmit event
is scheduled for exactly ``busy_start`` is already committed to that slot
and must not treat the notification as carrier (slot-synchronous
collision, see ``repro.mac.dcf``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, TYPE_CHECKING

from repro.sim import Simulator, EventPriority

if TYPE_CHECKING:  # pragma: no cover
    from repro.mac.frames import Frame


class ChannelListener(Protocol):
    """Interface a MAC exposes to the channel."""

    address: str

    def on_busy(self, busy_start: float) -> None:
        """Medium went idle -> busy at ``busy_start`` (== sim.now)."""

    def on_idle(self, idle_start: float) -> None:
        """Medium went busy -> idle at ``idle_start`` (== sim.now)."""

    def on_frame_end(self, frame: "Frame", corrupted: bool) -> None:
        """A transmission finished; ``corrupted`` is this listener's view."""


class Transmission:
    """One in-flight frame."""

    __slots__ = ("frame", "sender", "start", "end", "collided")

    def __init__(self, frame: "Frame", sender: str, start: float, end: float) -> None:
        self.frame = frame
        self.sender = sender
        self.start = start
        self.end = end
        self.collided = False


class Channel:
    """Zero-delay broadcast medium with overlap collisions."""

    def __init__(self, sim: Simulator, loss_model=None, *, sniffers=None) -> None:
        from repro.channel.loss import NoLoss

        self.sim = sim
        self.loss = loss_model if loss_model is not None else NoLoss()
        self.listeners: List[ChannelListener] = []
        self.active: List[Transmission] = []
        self._last_tx_end: dict = {}
        self.busy_start: Optional[float] = None
        self._busy_accum = 0.0
        self._sniffers: List[Callable] = list(sniffers or [])
        #: optional capture: callable(winner_candidates) -> Transmission or
        #: None; invoked on overlap, may spare one frame from collision.
        self.capture_rule: Optional[Callable] = None

    # ------------------------------------------------------------------
    def attach(self, listener: ChannelListener) -> None:
        if listener in self.listeners:
            raise ValueError(f"listener {listener!r} already attached")
        self.listeners.append(listener)

    def add_sniffer(self, sniffer: Callable) -> None:
        """Register ``sniffer(frame, corrupted, start, end)`` observers."""
        self._sniffers.append(sniffer)

    @property
    def busy(self) -> bool:
        return bool(self.active)

    def busy_fraction(self) -> float:
        """Fraction of elapsed simulation time the medium was busy."""
        total = self.sim.now
        if total <= 0:
            return 0.0
        accum = self._busy_accum
        if self.busy and self.busy_start is not None:
            accum += self.sim.now - self.busy_start
        return accum / total

    # ------------------------------------------------------------------
    def transmit(self, frame: "Frame", duration: float) -> Transmission:
        """Begin transmitting ``frame``; it ends ``duration`` us from now.

        Called by a MAC that has decided to transmit *this instant*.
        Collision marking and busy notification happen synchronously; the
        frame-end event is scheduled at PHY priority.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        now = self.sim.now
        tx = Transmission(frame, frame.src, now, now + duration)
        prev_end = self._last_tx_end.get(frame.src, 0.0)
        self._last_tx_end[frame.src] = max(prev_end, tx.end)
        was_idle = not self.active
        if self.active:
            # Overlap: everyone still in the air (and the newcomer) collides.
            survivors = self._apply_capture(tx)
            for other in self.active:
                if other not in survivors:
                    other.collided = True
            if tx not in survivors:
                tx.collided = True
        self.active.append(tx)
        if was_idle:
            self.busy_start = now
            for listener in self.listeners:
                listener.on_busy(now)
        self.sim.schedule(duration, self._end, tx, priority=EventPriority.PHY)
        return tx

    def _apply_capture(self, newcomer: Transmission) -> List[Transmission]:
        if self.capture_rule is None:
            return []
        winner = self.capture_rule(list(self.active) + [newcomer])
        return [winner] if winner is not None else []

    # ------------------------------------------------------------------
    def _end(self, tx: Transmission) -> None:
        self.active.remove(tx)
        now = self.sim.now
        went_idle = not self.active
        if went_idle and self.busy_start is not None:
            self._busy_accum += now - self.busy_start
            self.busy_start = None

        dest_corrupted = tx.collided
        if not dest_corrupted:
            dest_corrupted = self.loss.is_lost(tx.frame)

        for sniffer in self._sniffers:
            sniffer(tx.frame, dest_corrupted, tx.collided, tx.start, tx.end)

        # Deliver frame-end to every listener.  Non-destination observers
        # see collision corruption (they could not decode either) but not
        # the destination's private link loss.  A listener whose own
        # transmission overlapped this frame was half-duplex deaf and
        # receives nothing (in particular, a collided sender does not
        # observe the peer's corrupted frame and retries after DIFS, not
        # EIFS, exactly as a real station that decoded no energy).
        for listener in self.listeners:
            if listener.address == tx.frame.src:
                continue
            if self._last_tx_end.get(listener.address, 0.0) > tx.start + 1e-9:
                continue
            if listener.address == tx.frame.dst:
                listener.on_frame_end(tx.frame, dest_corrupted)
            else:
                listener.on_frame_end(tx.frame, tx.collided)

        if went_idle:
            for listener in self.listeners:
                listener.on_idle(now)
