"""Indoor propagation: log-distance path loss with wall attenuation.

This module supplies the SNR map that drives rate adaptation in the
EXP-1 reproduction (an AP in an office sending to four receivers at
increasing distances behind 0-2 walls, paper Section 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Position:
    """A point in metres."""

    x: float
    y: float


def distance(a: Position, b: Position) -> float:
    """Euclidean distance in metres."""
    return math.hypot(a.x - b.x, a.y - b.y)


class LogDistancePathLoss:
    """PL(d) = PL(d0) + 10 n log10(d / d0), plus per-wall attenuation.

    Defaults model a 2.4 GHz office: PL(1 m) ~ 40 dB, exponent 3.0
    (obstructed indoor), 4 dB per thin wall.
    """

    def __init__(
        self,
        reference_loss_db: float = 40.0,
        exponent: float = 3.0,
        reference_distance_m: float = 1.0,
        wall_loss_db: float = 4.0,
    ) -> None:
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        self.reference_loss_db = reference_loss_db
        self.exponent = exponent
        self.reference_distance_m = reference_distance_m
        self.wall_loss_db = wall_loss_db

    def path_loss_db(self, dist_m: float, walls: float = 0.0) -> float:
        dist_m = max(dist_m, self.reference_distance_m)
        spread = 10.0 * self.exponent * math.log10(dist_m / self.reference_distance_m)
        return self.reference_loss_db + spread + walls * self.wall_loss_db


class RadioEnvironment:
    """Maps node addresses to positions and computes link SNRs.

    ``snr_db(src, dst) = tx_power - path_loss(src, dst) - noise_floor``.
    Wall counts are symmetric and set per pair (the EXP-1 scenario knows
    how many walls separate the AP from each receiver).
    """

    def __init__(
        self,
        path_loss: Optional[LogDistancePathLoss] = None,
        tx_power_dbm: float = 15.0,
        noise_floor_dbm: float = -92.0,
    ) -> None:
        self.path_loss = path_loss if path_loss is not None else LogDistancePathLoss()
        self.tx_power_dbm = tx_power_dbm
        self.noise_floor_dbm = noise_floor_dbm
        self.positions: Dict[str, Position] = {}
        self._walls: Dict[Tuple[str, str], float] = {}
        self._shadowing: Dict[Tuple[str, str], float] = {}
        self._snr_override: Dict[Tuple[str, str], float] = {}

    def place(self, address: str, x: float, y: float) -> None:
        self.positions[address] = Position(x, y)

    def set_walls(self, a: str, b: str, walls: float) -> None:
        """Set the wall count between two nodes (symmetric)."""
        self._walls[(a, b)] = walls
        self._walls[(b, a)] = walls

    def set_shadowing(self, a: str, b: str, loss_db: float) -> None:
        """Extra per-link shadowing loss in dB (symmetric).

        Log-distance models capture only the distance trend; real indoor
        links deviate by tens of dB (the paper cites Kotz et al.'s
        "mistaken axioms" measurements).  Scenario builders use this to
        calibrate specific links.
        """
        self._shadowing[(a, b)] = loss_db
        self._shadowing[(b, a)] = loss_db

    def override_snr(self, src: str, dst: str, snr_db: float) -> None:
        """Pin the SNR of a directed link (tests, controlled scenarios)."""
        self._snr_override[(src, dst)] = snr_db

    def snr_db(self, src: str, dst: str) -> float:
        override = self._snr_override.get((src, dst))
        if override is not None:
            return override
        try:
            a = self.positions[src]
            b = self.positions[dst]
        except KeyError as missing:
            raise KeyError(f"no position for node {missing.args[0]!r}") from None
        walls = self._walls.get((src, dst), 0.0)
        loss = self.path_loss.path_loss_db(distance(a, b), walls)
        loss += self._shadowing.get((src, dst), 0.0)
        return self.tx_power_dbm - loss - self.noise_floor_dbm
