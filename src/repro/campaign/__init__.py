"""Campaign subsystem: declarative sim jobs, parallel execution, caching.

A *campaign* is a batch of independent simulation jobs drawn from any
mix of experiment modules, executed across worker processes and merged
deterministically by job key.  The building blocks:

* :mod:`repro.campaign.job` — hashable, picklable job descriptors with
  a content-addressed digest (config hash + schema salt);
* :mod:`repro.campaign.cache` — on-disk result cache keyed by digest,
  so re-running a campaign never recomputes a finished job;
* :mod:`repro.campaign.executor` — serial and ``multiprocessing``
  execution with cache lookups, duplicate-config coalescing and
  completion-order-independent merging;
* :mod:`repro.campaign.registry` — the experiment modules' ``jobs()`` /
  ``reduce()`` pairs wired up for the ``python -m repro campaign`` CLI
  (:mod:`repro.campaign.cli`).

The registry and CLI import the experiment modules, so they are *not*
re-exported here — ``repro.experiments.common`` depends on this package
for :class:`Job` and importing them eagerly would be circular.
"""

from repro.campaign.job import (
    CACHE_SCHEMA,
    Job,
    execute_job,
    freeze,
    job_params,
    make_job,
    resolve_executor,
    thaw,
)
from repro.campaign.cache import ResultCache
from repro.campaign.executor import (
    CampaignOutcome,
    CampaignStats,
    run_jobs,
    serial_results,
)

__all__ = [
    "CACHE_SCHEMA",
    "CampaignOutcome",
    "CampaignStats",
    "Job",
    "ResultCache",
    "execute_job",
    "freeze",
    "job_params",
    "make_job",
    "resolve_executor",
    "run_jobs",
    "serial_results",
    "thaw",
]
