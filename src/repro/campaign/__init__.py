"""Campaign subsystem: declarative sim jobs, parallel execution, caching.

A *campaign* is a batch of independent simulation jobs drawn from any
mix of experiment modules, executed across worker processes and merged
deterministically by job key.  The building blocks:

* :mod:`repro.campaign.job` — hashable, picklable job descriptors with
  a content-addressed digest (config hash + schema salt);
* :mod:`repro.campaign.cache` — on-disk result cache keyed by digest
  with checksummed entries, so re-running a campaign never recomputes a
  finished job and silent corruption reads as a miss, not a result;
* :mod:`repro.campaign.store` — the cache promoted to a queryable
  :class:`ResultStore`: a crash-safe on-disk index over (experiment,
  family, seed, digest), incremental-sweep planning
  (:meth:`ResultStore.plan`) and index rebuild from the raw entries;
* :mod:`repro.campaign.executor` — serial and supervised-parallel
  execution with cache lookups, duplicate-config coalescing and
  completion-order-independent merging;
* :mod:`repro.campaign.queue` — the :class:`WorkQueue` seam between
  the executor and its workers: the in-process supervised pool, or a
  filesystem spool that independent ``repro campaign worker``
  processes drain cooperatively (atomic-rename job leases,
  heartbeat-based crash reclaim);
* :mod:`repro.campaign.pool` — the supervised worker pool: crash
  isolation, per-job timeouts, checksum-verified replies, degradation
  to serial when the pool itself keeps dying;
* :mod:`repro.campaign.policy` — the failure taxonomy and
  :class:`RetryPolicy` (bounded attempts, seeded exponential backoff);
* :mod:`repro.campaign.manifest` — per-campaign checkpoints behind
  ``repro campaign --resume``;
* :mod:`repro.campaign.faults` — deterministic fault injection for the
  chaos test suite;
* :mod:`repro.campaign.registry` — the experiment modules' ``jobs()`` /
  ``reduce()`` pairs wired up for the ``python -m repro campaign`` CLI
  (:mod:`repro.campaign.cli`).

The registry and CLI import the experiment modules, so they are *not*
re-exported here — ``repro.experiments.common`` depends on this package
for :class:`Job` and importing them eagerly would be circular.
"""

from repro.campaign.job import (
    CACHE_SCHEMA,
    Job,
    execute_job,
    freeze,
    job_params,
    make_job,
    resolve_executor,
    thaw,
)
from repro.campaign.cache import CacheCorruption, ResultCache
from repro.campaign.store import (
    ResultStore,
    StoreIndex,
    SweepPlan,
    default_store_root,
)
from repro.campaign.queue import (
    PoolQueue,
    SpoolQueue,
    WorkQueue,
    worker_loop,
)
from repro.campaign.executor import (
    CampaignOutcome,
    CampaignStats,
    quarantine_report,
    run_jobs,
    serial_results,
)
from repro.campaign.faults import Fault, FaultPlan
from repro.campaign.manifest import RunManifest, campaign_digest
from repro.campaign.policy import (
    AttemptRecord,
    JobFailure,
    RetryPolicy,
)

__all__ = [
    "CACHE_SCHEMA",
    "AttemptRecord",
    "CacheCorruption",
    "CampaignOutcome",
    "CampaignStats",
    "Fault",
    "FaultPlan",
    "Job",
    "JobFailure",
    "PoolQueue",
    "ResultCache",
    "ResultStore",
    "RetryPolicy",
    "RunManifest",
    "SpoolQueue",
    "StoreIndex",
    "SweepPlan",
    "WorkQueue",
    "campaign_digest",
    "default_store_root",
    "execute_job",
    "worker_loop",
    "freeze",
    "job_params",
    "make_job",
    "quarantine_report",
    "resolve_executor",
    "run_jobs",
    "serial_results",
    "thaw",
]
