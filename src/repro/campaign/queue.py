"""Pluggable work queues: the scheduling layer of the campaign stack.

The executor used to be welded to one backend — the in-process
:class:`~repro.campaign.pool.SupervisedPool`.  This module puts a thin
:class:`WorkQueue` interface in front of scheduling and provides two
backends with identical failure semantics (same
:class:`~repro.campaign.policy.RetryPolicy` backoff schedule, same
permanent/transient taxonomy, same quarantine records, same
:class:`~repro.campaign.faults.FaultPlan` injection inside worker
processes):

* :class:`PoolQueue` — the existing supervised pool, unchanged: one
  coordinating process, long-lived worker children on pipes;
* :class:`SpoolQueue` — a **filesystem spool**: jobs are pickled
  envelopes in a shared directory, claimed by atomic ``os.rename`` (the
  rename either succeeds for exactly one claimant or raises — no locks,
  works over a shared filesystem), executed by any number of
  *independent* worker processes (``repro campaign worker``) that write
  results straight into the shared
  :class:`~repro.campaign.store.ResultStore`.

Spool liveness is lease-based: a claim is accompanied by a heartbeat
file the owner touches while working.  A worker that dies — SIGKILL,
OOM, power loss — stops heartbeating, and after ``lease_s`` any other
participant *reclaims* the job: the lost lease costs one ``crash``
attempt under the shared retry policy, exactly like a pool worker
death.  Retry state (the per-digest attempt log) and quarantine records
(``failed/<digest>.json``) live in the spool directory itself, so
policy is enforced identically no matter which process picks the job up
next; the enqueuer freezes the policy into ``policy.json`` so every
worker applies the same backoff schedule and fault plan.

Spool layout, under one root directory::

    policy.json            frozen RetryPolicy/timeout/fault plan/store
    jobs/<digest>.job      ready envelopes (pickle: digest, Job, ready_at)
    claims/<digest>.job    leased envelopes (atomic rename from jobs/)
    claims/<digest>.hb     heartbeat (mtime = lease freshness)
    attempts/<digest>.jsonl  one line per failed attempt
    failed/<digest>.json   quarantine record (attempts exhausted)

Results never pass through the spool: workers write them to the result
store (checksummed, atomic), and the coordinator detects completion by
digest presence — which also makes enqueue/execute idempotent.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign import faults as faults_mod
from repro.campaign.faults import FaultPlan
from repro.campaign.job import Job
from repro.campaign.manifest import _failure_from_dict, _failure_to_dict
from repro.campaign.policy import (
    AttemptRecord,
    JobFailure,
    RetryPolicy,
    is_permanent,
)
from repro.campaign.store import ResultStore, job_meta

OnResult = Callable[[str, Any], None]
OnRetry = Callable[[str, Job, AttemptRecord], None]
OnFailure = Callable[[str, Job, JobFailure], None]

SPOOL_VERSION = 1
CONFIG_NAME = "policy.json"

#: Default lease: how long a claim may go without a heartbeat before
#: any participant may reclaim it as a crashed attempt.
DEFAULT_LEASE_S = 30.0

#: Coordinator/worker poll interval when nothing is ready.
DEFAULT_POLL_S = 0.05


class WorkQueue:
    """Interface the executor drains pending work through.

    ``drain(items, ...)`` runs every ``(digest, job)`` item to a
    terminal state — ``on_result`` / ``on_failure`` exactly once per
    digest, ``on_retry`` per rescheduled attempt — and returns
    ``(degraded_reason, remaining)``: ``(None, [])`` on normal
    completion, or a reason string plus the deterministically-ordered
    unresolved items when the backend gave up and the caller should
    fall back to serial in-process execution.
    """

    backend = "abstract"

    def drain(
        self,
        items: List[Tuple[str, Job]],
        *,
        retry: RetryPolicy,
        timeout_s: Optional[float],
        fault_plan: Optional[FaultPlan],
        on_result: OnResult,
        on_retry: OnRetry,
        on_failure: OnFailure,
    ) -> Tuple[Optional[str], List[Tuple[str, Job]]]:
        raise NotImplementedError


class PoolQueue(WorkQueue):
    """The supervised in-process pool behind the queue interface."""

    backend = "pool"

    def __init__(self, workers: int) -> None:
        if workers < 2:
            raise ValueError("PoolQueue needs >= 2 workers")
        self.workers = workers

    def drain(
        self,
        items: List[Tuple[str, Job]],
        *,
        retry: RetryPolicy,
        timeout_s: Optional[float],
        fault_plan: Optional[FaultPlan],
        on_result: OnResult,
        on_retry: OnRetry,
        on_failure: OnFailure,
    ) -> Tuple[Optional[str], List[Tuple[str, Job]]]:
        from repro.campaign.pool import SupervisedPool

        pool = SupervisedPool(
            workers=self.workers,
            retry=retry,
            timeout_s=timeout_s,
            fault_plan=fault_plan,
            on_result=on_result,
            on_retry=on_retry,
            on_failure=on_failure,
        )
        return pool.run(list(items))


# ----------------------------------------------------------------------
# spool protocol: shared by SpoolQueue and standalone workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpoolConfig:
    """The policy every spool participant must apply identically."""

    store_root: str
    retry: RetryPolicy
    timeout_s: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None
    lease_s: float = DEFAULT_LEASE_S


def _dirs(root: Path) -> Dict[str, Path]:
    return {
        name: root / name for name in ("jobs", "claims", "failed", "attempts")
    }


def init_spool(root) -> Path:
    root = Path(root)
    for path in _dirs(root).values():
        path.mkdir(parents=True, exist_ok=True)
    return root


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def save_config(root, cfg: SpoolConfig) -> None:
    root = init_spool(root)
    payload = {
        "version": SPOOL_VERSION,
        "store_root": cfg.store_root,
        "retry": {
            "max_attempts": cfg.retry.max_attempts,
            "backoff_base_s": cfg.retry.backoff_base_s,
            "backoff_factor": cfg.retry.backoff_factor,
            "jitter_frac": cfg.retry.jitter_frac,
            "seed": cfg.retry.seed,
        },
        "timeout_s": cfg.timeout_s,
        "lease_s": cfg.lease_s,
        "fault_plan": (
            None
            if cfg.fault_plan is None
            else json.loads(cfg.fault_plan.to_json())
        ),
    }
    _atomic_write(
        root / CONFIG_NAME,
        (json.dumps(payload, indent=0, sort_keys=True) + "\n").encode(),
    )


def load_config(root) -> Optional[SpoolConfig]:
    """The spool's frozen policy, or ``None`` before the first enqueue."""
    try:
        data = json.loads((Path(root) / CONFIG_NAME).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("version") != SPOOL_VERSION:
        return None
    plan = data.get("fault_plan")
    return SpoolConfig(
        store_root=str(data["store_root"]),
        retry=RetryPolicy(**data.get("retry", {})),
        timeout_s=data.get("timeout_s"),
        fault_plan=None if plan is None else FaultPlan.from_json(
            json.dumps(plan)
        ),
        lease_s=float(data.get("lease_s", DEFAULT_LEASE_S)),
    )


def _write_envelope(
    path: Path, digest: str, job: Job, ready_at: float
) -> None:
    _atomic_write(
        path,
        pickle.dumps(
            {"digest": digest, "job": job, "ready_at": ready_at},
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )


def _read_envelope(path: Path) -> Optional[Dict[str, Any]]:
    try:
        data = pickle.loads(path.read_bytes())
    except Exception:
        return None
    if not isinstance(data, dict) or "digest" not in data:
        return None
    return data


def spool_drained(root) -> bool:
    """No job is queued or leased (backoff-delayed jobs still count).

    ``*.job*`` also matches in-flight/stranded ``*.job.reclaim.<pid>``
    files, which still hold a live envelope.
    """
    dirs = _dirs(Path(root))
    return not any(dirs["jobs"].glob("*.job")) and not any(
        dirs["claims"].glob("*.job*")
    )


def enqueue(root, cfg: SpoolConfig, items: List[Tuple[str, Job]]) -> int:
    """Write ``items`` into the spool, resetting their retry state.

    Re-enqueueing a digest clears its attempt log and any quarantine
    record (a fresh campaign re-attempts failed digests, matching
    ``run_jobs`` without ``--resume``) and sweeps an expired stale
    claim left by a dead participant of an earlier run.
    """
    root = init_spool(root)
    save_config(root, cfg)
    dirs = _dirs(root)
    now = time.time()
    queued = 0
    for digest, job in items:
        for stale in (
            dirs["failed"] / f"{digest}.json",
            dirs["attempts"] / f"{digest}.jsonl",
        ):
            try:
                stale.unlink()
            except OSError:
                pass
        claim = dirs["claims"] / f"{digest}.job"
        try:
            if now - claim.stat().st_mtime > cfg.lease_s:
                hb = claim.with_suffix(".hb")
                if not hb.exists() or now - hb.stat().st_mtime > cfg.lease_s:
                    claim.unlink()
                    try:
                        hb.unlink()
                    except OSError:
                        pass
        except OSError:
            pass
        _write_envelope(dirs["jobs"] / f"{digest}.job", digest, job, 0.0)
        queued += 1
    return queued


# ----------------------------------------------------------------------
# attempt log + quarantine records
# ----------------------------------------------------------------------
def _attempt_lines(root: Path, digest: str) -> List[Dict[str, Any]]:
    path = _dirs(root)["attempts"] / f"{digest}.jsonl"
    try:
        text = path.read_text()
    except OSError:
        return []
    lines = []
    for line in text.splitlines():
        try:
            data = json.loads(line)
        except ValueError:
            continue
        if isinstance(data, dict):
            lines.append(data)
    return lines


def _append_attempt(root: Path, digest: str, line: Dict[str, Any]) -> None:
    path = _dirs(root)["attempts"] / f"{digest}.jsonl"
    path.parent.mkdir(parents=True, exist_ok=True)
    # One O_APPEND write per line: concurrent workers interleave at
    # line granularity.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(line, sort_keys=True) + "\n")
        fh.flush()


def _record_from_line(line: Dict[str, Any]) -> AttemptRecord:
    return AttemptRecord(
        attempt=int(line.get("attempt", 0)),
        kind=str(line.get("kind", "crash")),
        detail=str(line.get("detail", "")),
        worker_pid=line.get("worker_pid"),
        backoff_s=line.get("backoff_s"),
    )


def _release(claim_path: Path) -> None:
    for path in (claim_path, claim_path.with_suffix(".hb")):
        try:
            path.unlink()
        except OSError:
            pass


def _fail_attempt(
    root: Path,
    cfg: SpoolConfig,
    digest: str,
    job: Job,
    attempt: int,
    *,
    kind: str,
    detail: str,
    pid: Optional[int],
    claim_path: Path,
    exc_type: Optional[str] = None,
    tb: str = "",
) -> str:
    """Book one failed attempt: requeue with backoff, or quarantine.

    The attempt line lands in the shared log *before* the claim is
    released, so a crash inside this function can at worst inflate the
    attempt count by one reclaim — never lose the failure.  Returns
    ``"requeued"`` or ``"failed"``.
    """
    record = AttemptRecord(
        attempt=attempt, kind=kind, detail=detail, worker_pid=pid
    )
    permanent = is_permanent(kind, exc_type)
    requeue = not permanent and attempt < cfg.retry.max_attempts
    if requeue:
        record.backoff_s = cfg.retry.backoff_s(digest, attempt)
    _append_attempt(
        root,
        digest,
        {
            "attempt": record.attempt,
            "kind": record.kind,
            "detail": record.detail,
            "worker_pid": record.worker_pid,
            "backoff_s": record.backoff_s,
            "requeued": requeue,
            "traceback": tb,
        },
    )
    if requeue:
        _write_envelope(
            _dirs(root)["jobs"] / f"{digest}.job",
            digest,
            job,
            time.time() + (record.backoff_s or 0.0),
        )
        _release(claim_path)
        return "requeued"
    lines = _attempt_lines(root, digest)
    tracebacks = [l.get("traceback", "") for l in lines if l.get("traceback")]
    failure = JobFailure(
        digest=digest,
        experiment=job.experiment,
        key=job.key,
        label=job.label,
        attempts=[_record_from_line(l) for l in lines],
        traceback=tracebacks[-1] if tracebacks else tb,
        permanent=permanent,
    )
    _atomic_write(
        _dirs(root)["failed"] / f"{digest}.json",
        (json.dumps(_failure_to_dict(failure), sort_keys=True) + "\n").encode(),
    )
    _release(claim_path)
    return "failed"


def load_failure(root, digest: str) -> Optional[JobFailure]:
    path = _dirs(Path(root))["failed"] / f"{digest}.json"
    try:
        return _failure_from_dict(json.loads(path.read_text()))
    except (OSError, ValueError, KeyError):
        return None


# ----------------------------------------------------------------------
# claiming and leases
# ----------------------------------------------------------------------
def claim_next(
    root: Path, now: Optional[float] = None
) -> Tuple[str, Optional[str], Optional[Job], Optional[Path]]:
    """Try to lease one ready job by atomic rename.

    Returns ``(status, digest, job, claim_path)`` with status
    ``"claimed"`` (lease acquired), ``"wait"`` (work exists but is
    backoff-delayed or leased elsewhere) or ``"empty"`` (spool
    drained).  Digest order makes concurrent workers start from the
    same end of the queue; the rename race resolves who wins.
    """
    now = time.time() if now is None else now
    dirs = _dirs(root)
    entries = sorted(dirs["jobs"].glob("*.job"))
    # "*.job*" counts leased claims AND stranded ".job.reclaim.<pid>"
    # files: an interrupted reclaim still holds a live envelope, so the
    # spool is not drained until reclaim_expired sweeps it back.
    saw_pending = bool(entries) or any(dirs["claims"].glob("*.job*"))
    for path in entries:
        env = _read_envelope(path)
        if env is None:
            continue
        if float(env.get("ready_at", 0.0)) > now:
            continue
        claim_path = dirs["claims"] / path.name
        try:
            os.rename(path, claim_path)
        except OSError:
            continue  # lost the race to another claimant
        try:
            # rename preserves mtime (= enqueue time); lease freshness
            # must start *now*, or a job that sat queued longer than
            # lease_s is reclaimable the instant it is claimed — before
            # the heartbeat file exists.
            os.utime(claim_path)
        except OSError:
            pass
        return "claimed", env["digest"], env["job"], claim_path
    return ("wait" if saw_pending else "empty"), None, None, None


class _Lease(threading.Thread):
    """Heartbeat for one claim, plus the job's wall-clock deadline.

    Touches the heartbeat file so other participants see the lease as
    live; if the spool policy has a ``timeout_s`` and the job overruns
    it, the lease books a ``timeout`` attempt (requeue or quarantine —
    same decision the pool supervisor would make) and, in a real worker
    process, hard-exits it — the only way to stop a hung simulation
    without an external killer.  A *coordinating* process (an
    in-process ``participate=True`` embedder, or ``repro serve``) must
    survive its jobs, so there the lease only books the attempt and
    releases the claim, leaving the overrunning call to finish in
    place (results are idempotent by digest, so a racing re-execution
    is harmless).
    """

    def __init__(
        self,
        root: Path,
        cfg: SpoolConfig,
        digest: str,
        job: Job,
        attempt: int,
        claim_path: Path,
    ) -> None:
        super().__init__(daemon=True, name=f"spool-lease-{digest[:8]}")
        self.root = root
        self.cfg = cfg
        self.digest = digest
        self.job = job
        self.attempt = attempt
        self.claim_path = claim_path
        self.hb_path = claim_path.with_suffix(".hb")
        self.interval = max(0.05, min(cfg.lease_s / 4.0, 2.0))
        self.stop_event = threading.Event()
        self.started_at = time.monotonic()
        self.hb_path.write_text(
            json.dumps({"pid": os.getpid(), "attempt": attempt})
        )

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            try:
                os.utime(self.hb_path)
            except OSError:
                pass
            timeout_s = self.cfg.timeout_s
            if (
                timeout_s is not None
                and time.monotonic() - self.started_at > timeout_s
            ):
                exiting = faults_mod.in_worker
                try:
                    if self.claim_path.exists():
                        _fail_attempt(
                            self.root,
                            self.cfg,
                            self.digest,
                            self.job,
                            self.attempt,
                            kind="timeout",
                            detail=(
                                f"exceeded {timeout_s:g}s wall clock; "
                                + (
                                    f"worker pid {os.getpid()} "
                                    "self-terminated"
                                    if exiting
                                    else f"coordinator pid {os.getpid()} "
                                    "released the claim"
                                )
                            ),
                            pid=os.getpid(),
                            claim_path=self.claim_path,
                        )
                finally:
                    if exiting:
                        # A hung simulation cannot be interrupted from
                        # a thread; exiting the process is the kill.
                        os._exit(124)
                return

    def release(self) -> None:
        self.stop_event.set()
        self.join(timeout=1.0)


def _take_for_reclaim(claim: Path) -> Optional[Path]:
    """Rename ``claim`` into this process's reclaim name, fresh-stamped.

    The rename either wins or loses to a concurrent reclaimer; the
    ``utime`` marks the reclaim-in-progress as live so nobody sweeps it
    out from under us while we book the attempt.
    """
    base = claim.name.split(".reclaim.")[0]
    taken = claim.with_name(f"{base}.reclaim.{os.getpid()}")
    try:
        os.rename(claim, taken)
    except OSError:
        return None  # another reclaimer won
    try:
        os.utime(taken)
    except OSError:
        pass
    return taken


def _book_expired(root: Path, cfg: SpoolConfig, taken: Path) -> bool:
    """Book the crashed attempt for a claim already renamed to ``taken``."""
    env = _read_envelope(taken)
    if env is None:
        _release(taken)
        return False
    digest, job = env["digest"], env["job"]
    hb = _dirs(root)["claims"] / f"{digest}.hb"
    owner_pid = None
    try:
        owner_pid = json.loads(hb.read_text()).get("pid")
    except (OSError, ValueError):
        pass
    attempt = len(_attempt_lines(root, digest)) + 1
    _fail_attempt(
        root,
        cfg,
        digest,
        job,
        attempt,
        kind="crash",
        detail=(
            f"lease expired after {cfg.lease_s:g}s without a "
            f"heartbeat (worker pid {owner_pid} presumed dead)"
        ),
        pid=owner_pid,
        claim_path=taken,
    )
    try:
        hb.unlink()
    except OSError:
        pass
    return True


def reclaim_expired(root, cfg: SpoolConfig) -> int:
    """Requeue (or quarantine) claims whose heartbeat went stale.

    Reclaim itself is claim-by-rename too, so concurrent reclaimers
    cannot double-book the crashed attempt.  A reclaimer that dies
    between its rename and the booking strands the envelope under
    ``<name>.job.reclaim.<pid>`` — a name no ``*.job`` glob matches —
    so stale reclaim files are themselves swept as expired claims.
    """
    root = Path(root)
    dirs = _dirs(root)
    now = time.time()
    reclaimed = 0
    for claim in sorted(dirs["claims"].glob("*.job")):
        hb = claim.with_suffix(".hb")
        try:
            ref = hb.stat().st_mtime
        except OSError:
            try:
                ref = claim.stat().st_mtime
            except OSError:
                continue
        if now - ref <= cfg.lease_s:
            continue
        taken = _take_for_reclaim(claim)
        if taken is not None and _book_expired(root, cfg, taken):
            reclaimed += 1
    for stranded in sorted(dirs["claims"].glob("*.job.reclaim.*")):
        try:
            if now - stranded.stat().st_mtime <= cfg.lease_s:
                continue  # its reclaimer may still be booking it
        except OSError:
            continue
        taken = _take_for_reclaim(stranded)
        if taken is not None and _book_expired(root, cfg, taken):
            reclaimed += 1
    return reclaimed


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _store_result(store, digest: str, job: Job, value: Any) -> None:
    if isinstance(store, ResultStore):
        store.put(digest, value, meta=job_meta(job))
    else:
        store.put(digest, value)


def process_one(root, cfg: SpoolConfig, store) -> str:
    """Claim and run one ready job; returns what happened.

    ``"done"`` / ``"requeued"`` / ``"failed"`` after holding a claim,
    ``"wait"`` when work exists but nothing is ready, ``"empty"`` when
    the spool is drained.  Execution goes through the pool's
    :func:`~repro.campaign.pool._execute_one`, so fault injection,
    result checksumming and the failure taxonomy are byte-identical to
    the supervised backend; faults still only fire when
    :data:`repro.campaign.faults.in_worker` is set, i.e. in real worker
    processes, never in a coordinating one.
    """
    from repro.campaign.pool import _execute_one

    root = Path(root)
    status, digest, job, claim_path = claim_next(root)
    if status != "claimed":
        return status
    attempt = len(_attempt_lines(root, digest)) + 1
    lease = _Lease(root, cfg, digest, job, attempt, claim_path)
    lease.start()
    try:
        reply = _execute_one(digest, job, attempt, cfg.fault_plan)
    finally:
        lease.release()
    if reply[0] == "ok":
        _, _, _, payload, checksum = reply
        if hashlib.sha256(payload).hexdigest() != checksum:
            return _fail_attempt(
                root, cfg, digest, job, attempt,
                kind="corrupt-result",
                detail=f"payload checksum mismatch ({len(payload)} bytes)",
                pid=os.getpid(), claim_path=claim_path,
            )
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            return _fail_attempt(
                root, cfg, digest, job, attempt,
                kind="corrupt-result",
                detail=(
                    f"payload failed to unpickle: "
                    f"{type(exc).__name__}: {exc}"
                ),
                pid=os.getpid(), claim_path=claim_path,
            )
        _store_result(store, digest, job, value)
        _release(claim_path)
        return "done"
    _, _, _, exc_type, message, tb = reply
    kind = "unpicklable" if exc_type == "UnpicklableResult" else "exception"
    return _fail_attempt(
        root, cfg, digest, job, attempt,
        kind=kind, detail=f"{exc_type}: {message}",
        pid=os.getpid(), claim_path=claim_path,
        exc_type=exc_type, tb=tb,
    )


def worker_loop(
    root,
    *,
    idle_exit_s: float = 5.0,
    poll_s: float = DEFAULT_POLL_S,
    as_worker: bool = True,
    max_jobs: Optional[int] = None,
    progress: Optional[Callable[[str, str], None]] = None,
) -> int:
    """Drain a spool: the body of ``repro campaign worker``.

    Claims ready jobs until the spool stays drained (or merely absent:
    a worker may start before the coordinator's first enqueue) for
    ``idle_exit_s`` seconds, reclaiming expired leases along the way.
    ``as_worker=True`` marks the process as a real worker so fault
    plans apply (and crash-style faults kill only this process — the
    lease reclaim turns that into a retried attempt).  Returns the
    number of claims this worker processed.
    """
    if as_worker:
        faults_mod.in_worker = True
    root = Path(root)
    processed = 0
    idle_since: Optional[float] = None
    store = None
    store_root = None
    while True:
        cfg = load_config(root)
        if cfg is None:
            status = "empty"  # not initialised yet — same grace period
        else:
            if store is None or store_root != cfg.store_root:
                store = ResultStore(cfg.store_root)
                store_root = cfg.store_root
            reclaim_expired(root, cfg)
            status = process_one(root, cfg, store)
        if status in ("done", "requeued", "failed"):
            processed += 1
            idle_since = None
            if progress is not None:
                progress(status, "")
            if max_jobs is not None and processed >= max_jobs:
                return processed
            continue
        if status == "empty":
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since >= idle_exit_s:
                return processed
        else:  # "wait": backoff-delayed or leased elsewhere — stay
            idle_since = None
        time.sleep(poll_s)


def _spawned_worker_main(root, idle_exit_s: float) -> None:
    """Entry point for coordinator-spawned spool worker processes."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker_loop(root, idle_exit_s=idle_exit_s, as_worker=True)


# ----------------------------------------------------------------------
# the coordinating side
# ----------------------------------------------------------------------
class SpoolQueue(WorkQueue):
    """Drain a campaign through a filesystem spool.

    The coordinator enqueues the items, optionally spawns ``workers``
    local worker processes, and then *observes*: results appear in the
    shared ``store``, quarantines in ``failed/``, retries in the
    attempt log.  Independent ``repro campaign worker`` processes —
    started by hand, by CI, or on other hosts sharing the directory —
    join the same drain at any time.  ``workers=0`` relies entirely on
    such external workers (set ``participate=True`` to have the
    coordinator claim jobs itself, with fault injection off, mirroring
    the pool's serial path).

    A storm of spawned-worker deaths with no progress (no result, no
    quarantine, no new attempt line) degrades exactly like the pool:
    remaining jobs are withdrawn from the spool and handed back for
    serial in-process execution.
    """

    backend = "spool"

    def __init__(
        self,
        root,
        store,
        *,
        workers: int = 1,
        participate: bool = False,
        lease_s: float = DEFAULT_LEASE_S,
        poll_s: float = DEFAULT_POLL_S,
        degrade_after: Optional[int] = None,
        worker_idle_exit_s: float = 0.5,
    ) -> None:
        if workers < 0:
            raise ValueError("SpoolQueue workers must be >= 0")
        self.root = Path(root)
        self.store = store
        self.workers = workers
        self.participate = participate
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.degrade_after = (
            degrade_after
            if degrade_after is not None
            else max(3, workers + 1)
        )
        self.worker_idle_exit_s = worker_idle_exit_s

    # ------------------------------------------------------------------
    def _spawn(self, ctx):
        proc = ctx.Process(
            target=_spawned_worker_main,
            args=(str(self.root), self.worker_idle_exit_s),
            daemon=True,
            name="repro-spool-worker",
        )
        proc.start()
        return proc

    def drain(
        self,
        items: List[Tuple[str, Job]],
        *,
        retry: RetryPolicy,
        timeout_s: Optional[float],
        fault_plan: Optional[FaultPlan],
        on_result: OnResult,
        on_retry: OnRetry,
        on_failure: OnFailure,
    ) -> Tuple[Optional[str], List[Tuple[str, Job]]]:
        import multiprocessing

        cfg = SpoolConfig(
            store_root=str(self.store.root),
            retry=retry,
            timeout_s=timeout_s,
            fault_plan=fault_plan,
            lease_s=self.lease_s,
        )
        order = [digest for digest, _ in items]
        pending: Dict[str, Job] = dict(items)
        enqueue(self.root, cfg, items)
        ctx = multiprocessing.get_context()
        procs = [self._spawn(ctx) for _ in range(self.workers)]
        retries_seen: Dict[str, int] = {digest: 0 for digest in pending}
        deaths = 0
        try:
            while pending:
                reclaim_expired(self.root, cfg)
                progressed = False
                for digest in list(pending):
                    job = pending[digest]
                    lines = _attempt_lines(self.root, digest)
                    requeued = [l for l in lines if l.get("requeued")]
                    for line in requeued[retries_seen[digest]:]:
                        on_retry(digest, job, _record_from_line(line))
                        progressed = True
                    retries_seen[digest] = len(requeued)
                    failure = load_failure(self.root, digest)
                    if failure is not None:
                        on_failure(digest, job, failure)
                        del pending[digest]
                        progressed = True
                        continue
                    if self.store.contains(digest):
                        hit, value = self.store.get(digest)
                        if hit:
                            on_result(digest, value)
                            del pending[digest]
                            progressed = True
                        else:
                            # Stored then corrupted on disk: the entry
                            # was dropped — put the job back in play.
                            enqueue(self.root, cfg, [(digest, job)])
                            retries_seen[digest] = 0
                if progressed:
                    deaths = 0
                if not pending:
                    break
                for index, proc in enumerate(procs):
                    if proc.is_alive():
                        continue
                    proc.join()
                    deaths += 1
                    procs[index] = self._spawn(ctx)
                if self.workers > 0 and deaths >= self.degrade_after:
                    remaining = self._withdraw(order, pending)
                    return (
                        f"spool degraded to serial after {deaths} "
                        "consecutive worker deaths without progress",
                        remaining,
                    )
                if self.participate and self.workers == 0:
                    process_one(self.root, cfg, self.store)
                    continue  # immediately re-check for the result
                time.sleep(self.poll_s)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join()
        return None, []

    # ------------------------------------------------------------------
    def _withdraw(
        self, order: List[str], pending: Dict[str, Job]
    ) -> List[Tuple[str, Job]]:
        """Pull unresolved jobs out of the spool for the serial fallback.

        Queued envelopes are removed outright; claims whose owner is
        dead are taken over (our spawned workers just died — an
        external worker with a live pid keeps its lease and the serial
        fallback simply races it to the store, harmlessly, since
        results are idempotent by digest).
        """
        from repro.campaign.cache import _pid_alive

        dirs = _dirs(self.root)
        for digest in pending:
            trash = dirs["jobs"] / f".{digest}.withdrawn.{os.getpid()}"
            try:
                os.rename(dirs["jobs"] / f"{digest}.job", trash)
                trash.unlink()
            except OSError:
                pass
            claim = dirs["claims"] / f"{digest}.job"
            hb = claim.with_suffix(".hb")
            owner = None
            try:
                owner = json.loads(hb.read_text()).get("pid")
            except (OSError, ValueError):
                pass
            if owner is None or not _pid_alive(int(owner)):
                _release(claim)
        return [(digest, pending[digest]) for digest in order if digest in pending]
