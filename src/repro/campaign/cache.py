"""On-disk, content-addressed result cache with integrity checking.

Each finished job's result is stored under its digest (see
:attr:`repro.campaign.job.Job.digest`), which already folds in the
schema salt — invalidation is therefore automatic when the job encoding
changes, and ``--force`` simply bypasses lookups while still refreshing
entries.

Entries are *checksummed*: a versioned header (magic line + SHA-256 of
the pickled payload) is verified on every read, so silent corruption —
a flipped bit, a truncated write, a partial disk — is detected
deterministically rather than by unpickle luck, and the damaged entry
is dropped so the next run refreshes it.  ``verify()`` walks the whole
store for the ``repro campaign verify-cache`` CLI.

Writes go through a temp file + :func:`os.replace` so a killed campaign
never leaves a truncated entry behind; temp files orphaned by a process
that died *between* ``write_bytes`` and ``os.replace`` are swept on
cache open (their embedded writer pid no longer exists).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from pathlib import Path
from typing import Any, Iterator, List, Tuple

#: First line of every entry; bump the version for incompatible layout
#: changes (old entries then read as corrupt -> miss -> refresh).
MAGIC = b"repro-cache/1\n"

#: Unparsable temp files older than this are swept regardless of pid.
STALE_TMP_AGE_S = 3600.0


def _encode(value: Any) -> bytes:
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    checksum = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + checksum + b"\n" + payload


class CacheCorruption(Exception):
    """An entry's header or checksum did not verify."""


def _decode(blob: bytes) -> Any:
    if not blob.startswith(MAGIC):
        raise CacheCorruption("missing or unknown header magic")
    rest = blob[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline != 64:  # sha256 hex digest length
        raise CacheCorruption("malformed checksum line")
    checksum, payload = rest[:newline], rest[newline + 1:]
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != checksum:
        raise CacheCorruption(
            f"payload checksum mismatch ({len(payload)} bytes)"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CacheCorruption(
            f"checksummed payload failed to unpickle: "
            f"{type(exc).__name__}: {exc}"
        )


class ResultCache:
    """Digest-keyed checksummed pickle store under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.swept_tmp = self._sweep_stale_tmp()

    def path_for(self, digest: str) -> Path:
        # Two-level fan-out keeps directory listings short even for
        # campaigns with thousands of jobs.
        return self.root / digest[:2] / f"{digest}.pkl"

    # ------------------------------------------------------------------
    # hygiene
    # ------------------------------------------------------------------
    def _sweep_stale_tmp(self) -> int:
        """Remove temp files whose writer died mid-``put``.

        Temp names embed the writer's pid (``.<name>.<pid>.tmp``); a
        temp whose pid is no longer alive is an orphan from a crashed
        process and can never be renamed into place.  Unparsable temps
        are only removed once they are clearly ancient, so a concurrent
        writer's live temp is never yanked out from under it.
        """
        removed = 0
        for tmp in self.root.glob("*/.*.tmp"):
            try:
                pid = int(tmp.name.rsplit(".", 2)[-2])
            except (ValueError, IndexError):
                pid = None
            if pid is not None:
                if pid == os.getpid() or _pid_alive(pid):
                    continue
            else:
                try:
                    age = time.time() - tmp.stat().st_mtime
                except OSError:
                    continue
                if age < STALE_TMP_AGE_S:
                    continue
            try:
                tmp.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # store
    # ------------------------------------------------------------------
    def get(self, digest: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupt or missing entries are misses."""
        path = self.path_for(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            return False, None
        try:
            return True, _decode(blob)
        except CacheCorruption:
            # Detected corruption: drop the entry so a rerun refreshes
            # it instead of serving damaged bytes.
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def put(self, digest: str, value: Any) -> Path:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(_encode(value))
        os.replace(tmp, path)
        return path

    def digests(self) -> Iterator[str]:
        yield from (p.stem for p in self.root.glob("??/*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("??/*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def verify(self) -> Iterator[Tuple[str, str, str]]:
        """Yield ``(digest, status, detail)`` per entry, sorted by
        digest; ``status`` is ``"ok"``, ``"corrupt"`` or
        ``"unreadable"``.  Read-only: damaged entries are *reported*,
        not dropped (``get`` drops them, ``verify --purge`` in the CLI
        does it in bulk)."""
        for path in sorted(self.root.glob("??/*.pkl")):
            digest = path.stem
            try:
                blob = path.read_bytes()
            except OSError as exc:
                yield digest, "unreadable", f"{type(exc).__name__}: {exc}"
                continue
            try:
                _decode(blob)
            except CacheCorruption as exc:
                yield digest, "corrupt", str(exc)
            else:
                yield digest, "ok", ""

    def verify_summary(self) -> Tuple[int, List[Tuple[str, str, str]]]:
        """``(total_entries, bad_entries)`` for the CLI."""
        total = 0
        bad: List[Tuple[str, str, str]] = []
        for digest, status, detail in self.verify():
            total += 1
            if status != "ok":
                bad.append((digest, status, detail))
        return total, bad


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True
