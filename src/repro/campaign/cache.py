"""On-disk, content-addressed result cache.

Each finished job's result is pickled under its digest (see
:attr:`repro.campaign.job.Job.digest`), which already folds in the
schema salt — invalidation is therefore automatic when the job encoding
changes, and ``--force`` simply bypasses lookups while still refreshing
entries.  Writes go through a temp file + :func:`os.replace` so a
killed campaign never leaves a truncated entry behind; unreadable
entries are treated as misses.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Iterator, Tuple


class ResultCache:
    """Digest-keyed pickle store under one root directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        # Two-level fan-out keeps directory listings short even for
        # campaigns with thousands of jobs.
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Tuple[bool, Any]:
        """``(hit, value)``; corrupt or missing entries are misses."""
        path = self.path_for(digest)
        try:
            payload = path.read_bytes()
        except OSError:
            return False, None
        try:
            return True, pickle.loads(payload)
        except Exception:
            # Truncated/corrupt entry: drop it so the rerun refreshes it.
            try:
                path.unlink()
            except OSError:
                pass
            return False, None

    def put(self, digest: str, value: Any) -> Path:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
        return path

    def digests(self) -> Iterator[str]:
        yield from (p.stem for p in self.root.glob("??/*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("??/*.pkl")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
