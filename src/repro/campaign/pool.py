"""Supervised worker pool: crash isolation, timeouts, retry scheduling.

``multiprocessing.Pool`` treats a dead worker as a protocol error: one
SIGKILL mid-job and ``imap_unordered`` hangs or raises, taking the whole
campaign with it.  This pool supervises instead of delegating:

* each worker is a long-lived daemon process fed **one item at a time**
  over its own pipe, so the supervisor always knows exactly which
  ``(digest, attempt)`` a dying worker was holding — a crash costs that
  one attempt, never the campaign;
* results come back as ``(payload_bytes, sha256)`` and are verified
  before unpickling, so a corrupted reply is an attempt failure, not a
  cache entry;
* every assignment carries a wall-clock deadline; a hung worker is
  SIGKILLed at its deadline, the item retried on the
  :class:`~repro.campaign.policy.RetryPolicy`'s seeded backoff
  schedule, and a fresh worker spawned in its place;
* repeated worker deaths with no intervening progress trip the
  *degradation* threshold: the pool shuts down and hands the remaining
  items back to the caller for serial in-process execution (the
  supervisor's own process is never at risk).

Scheduling is deterministic: ready items run in (ready-time, submission
sequence) order, retries re-enter the queue at ``now + backoff`` with a
fresh sequence number, and results are merged by digest upstream — so a
campaign that survives injected chaos is byte-identical to a fault-free
serial run.
"""

from __future__ import annotations

import hashlib
import heapq
import multiprocessing
import os
import pickle
import signal
import time
import traceback
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign import faults as faults_mod
from repro.campaign.faults import FaultPlan
from repro.campaign.job import Job, execute_job
from repro.campaign.policy import (
    AttemptRecord,
    JobFailure,
    RetryPolicy,
    is_permanent,
)

#: How long a worker may hang (seconds) when a fault plan says "hang";
#: far past any test timeout, and SIGKILL does not care either way.
_HANG_S = 3600.0

#: Seconds to wait for replies already in flight when shutting down on
#: interrupt, and for workers to exit voluntarily before SIGKILL.
_DRAIN_S = 0.25
_JOIN_S = 2.0


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _flip_last_byte(payload: bytes) -> bytes:
    if not payload:
        return b"\xff"
    return payload[:-1] + bytes([payload[-1] ^ 0xFF])


def _execute_one(
    digest: str, job: Job, attempt: int, plan: Optional[FaultPlan]
) -> Tuple:
    """Run one job in this worker; returns the reply tuple.

    Replies are primitive-only:
    ``("ok", digest, attempt, payload, sha256hex)`` or
    ``("error", digest, attempt, exc_type, message, traceback)``.
    """
    action = None
    if plan is not None and faults_mod.in_worker:
        action = plan.action_for(digest, attempt)
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "exit":
        os._exit(3)
    if action == "hang":
        time.sleep(_HANG_S)
    try:
        if action == "raise":
            raise RuntimeError(
                f"injected transient fault ({digest[:12]}, attempt {attempt})"
            )
        if action == "fail":
            raise ValueError(
                f"injected permanent fault ({digest[:12]}, attempt {attempt})"
            )
        value = execute_job(job)
    except Exception as exc:
        return (
            "error",
            digest,
            attempt,
            type(exc).__name__,
            str(exc),
            traceback.format_exc(),
        )
    try:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        return (
            "error",
            digest,
            attempt,
            "UnpicklableResult",
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )
    checksum = hashlib.sha256(payload).hexdigest()
    if action == "corrupt":
        payload = _flip_last_byte(payload)
    return ("ok", digest, attempt, payload, checksum)


def _worker_main(conn, plan: Optional[FaultPlan]) -> None:
    """Long-lived worker loop: recv item, execute, send reply.

    SIGINT is ignored — a ^C on the campaign belongs to the supervisor,
    which decides whether to drain, kill, or resume.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faults_mod.in_worker = True
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        digest, job, attempt = item
        reply = _execute_one(digest, job, attempt, plan)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------
class _Worker:
    """One supervised process plus its pipe and current assignment."""

    __slots__ = ("wid", "proc", "conn", "item", "deadline")

    def __init__(self, ctx, wid: int, plan: Optional[FaultPlan]) -> None:
        self.wid = wid
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, plan),
            daemon=True,
            name=f"repro-campaign-worker-{wid}",
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.item: Optional[Tuple[str, Job, int]] = None
        self.deadline: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def death_detail(self) -> str:
        code = self.proc.exitcode
        if code is None:
            return "died (no exit code)"
        if code < 0:
            try:
                name = signal.Signals(-code).name
            except ValueError:
                name = f"signal {-code}"
            return f"killed by {name}"
        return f"exited with status {code}"

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join()
        self.conn.close()

    def stop(self) -> None:
        """Polite shutdown: poison pill, bounded join, then SIGKILL."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=_JOIN_S)
        self.kill()


class PoolDegraded(Exception):
    """Internal signal: too many worker deaths, fall back to serial."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class SupervisedPool:
    """Drives a set of work items through supervised workers.

    Callbacks (all invoked in the supervising process, in completion
    order):

    * ``on_result(digest, value)`` — a digest resolved;
    * ``on_retry(digest, job, record)`` — an attempt failed, retry
      scheduled after ``record.backoff_s``;
    * ``on_failure(digest, job, failure)`` — a digest quarantined.

    :meth:`run` returns ``(degraded_reason, remaining)`` where
    ``remaining`` is the (deterministically ordered) list of
    ``(digest, job)`` items not yet resolved when the pool degraded —
    empty on a normal completion.  ``KeyboardInterrupt`` propagates
    after in-flight replies are drained and workers are killed.
    """

    def __init__(
        self,
        *,
        workers: int,
        retry: RetryPolicy,
        timeout_s: Optional[float],
        fault_plan: Optional[FaultPlan],
        on_result: Callable[[str, Any], None],
        on_retry: Callable[[str, Job, AttemptRecord], None],
        on_failure: Callable[[str, Job, JobFailure], None],
        degrade_after: Optional[int] = None,
    ) -> None:
        if workers < 2:
            raise ValueError("SupervisedPool needs >= 2 workers")
        self.workers_n = workers
        self.retry = retry
        self.timeout_s = timeout_s
        self.plan = fault_plan
        self.on_result = on_result
        self.on_retry = on_retry
        self.on_failure = on_failure
        #: consecutive worker deaths (not timeouts) with no intervening
        #: reply before the pool declares itself unusable.
        self.degrade_after = (
            degrade_after if degrade_after is not None else max(3, workers + 1)
        )
        self._ctx = multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._wid_seq = 0
        self._seq = 0
        #: (ready_at, seq, digest, job, attempt)
        self._heap: List[Tuple[float, int, str, Job, int]] = []
        self._attempts: Dict[str, List[AttemptRecord]] = {}
        self._last_tb: Dict[str, str] = {}
        self._consecutive_deaths = 0

    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._wid_seq, self.plan)
        self._wid_seq += 1
        self._workers.append(worker)
        return worker

    def _push(self, digest: str, job: Job, attempt: int, ready_at: float) -> None:
        heapq.heappush(self._heap, (ready_at, self._seq, digest, job, attempt))
        self._seq += 1

    # ------------------------------------------------------------------
    def run(self, items: List[Tuple[str, Job]]) -> Tuple[Optional[str], List[Tuple[str, Job]]]:
        for digest, job in items:
            self._push(digest, job, 1, 0.0)
        for _ in range(min(self.workers_n, len(items))):
            self._spawn()
        try:
            self._supervise()
        except PoolDegraded as degraded:
            remaining = self._reclaim_remaining()
            return degraded.reason, remaining
        except KeyboardInterrupt:
            self._drain_ready()
            raise
        finally:
            self._shutdown()
        return None, []

    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while self._heap or any(w.item is not None for w in self._workers):
            now = time.monotonic()
            self._assign(now)
            busy = [w for w in self._workers if w.item is not None]
            if not busy:
                if self._heap:
                    time.sleep(max(0.0, self._heap[0][0] - now))
                    continue
                break
            self._wait_and_collect(busy, now)
            self._expire_deadlines()

    def _assign(self, now: float) -> None:
        idle = [w for w in self._workers if w.item is None]
        idle.sort(key=lambda w: w.wid)
        while idle and self._heap and self._heap[0][0] <= now:
            ready_at, seq, digest, job, attempt = heapq.heappop(self._heap)
            worker = idle.pop(0)
            try:
                worker.conn.send((digest, job, attempt))
            except (BrokenPipeError, OSError):
                # Died while idle: no attempt consumed — requeue the
                # item and replace the worker.
                self._push(digest, job, attempt, ready_at)
                self._worker_died_idle(worker)
                continue
            worker.item = (digest, job, attempt)
            worker.deadline = (
                now + self.timeout_s if self.timeout_s is not None else None
            )

    def _wait_timeout(self, busy: List[_Worker], now: float) -> Optional[float]:
        candidates = [
            w.deadline - now for w in busy if w.deadline is not None
        ]
        if self._heap and any(w.item is None for w in self._workers):
            candidates.append(self._heap[0][0] - now)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _wait_and_collect(self, busy: List[_Worker], now: float) -> None:
        objects: List[Any] = [w.conn for w in busy]
        objects.extend(w.proc.sentinel for w in busy)
        ready = connection.wait(objects, timeout=self._wait_timeout(busy, now))
        ready_set = set(ready)
        for worker in busy:
            if worker.conn in ready_set:
                self._collect_reply(worker)
        for worker in busy:
            if worker.item is None or worker not in self._workers:
                continue
            if worker.proc.sentinel in ready_set:
                self._worker_crashed(worker)

    def _collect_reply(self, worker: _Worker) -> None:
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_crashed(worker)
            return
        digest, job, attempt = worker.item
        worker.item = None
        worker.deadline = None
        self._consecutive_deaths = 0
        if reply[0] == "ok":
            _, _, _, payload, checksum = reply
            if hashlib.sha256(payload).hexdigest() != checksum:
                self._attempt_failed(
                    digest, job, attempt, "corrupt-result",
                    f"payload checksum mismatch ({len(payload)} bytes)",
                    worker.pid,
                )
                return
            try:
                value = pickle.loads(payload)
            except Exception as exc:
                self._attempt_failed(
                    digest, job, attempt, "corrupt-result",
                    f"payload failed to unpickle: {type(exc).__name__}: {exc}",
                    worker.pid,
                )
                return
            self.on_result(digest, value)
            return
        _, _, _, exc_type, message, tb = reply
        kind = "unpicklable" if exc_type == "UnpicklableResult" else "exception"
        if tb:
            self._last_tb[digest] = tb
        self._attempt_failed(
            digest, job, attempt, kind, f"{exc_type}: {message}",
            worker.pid, exc_type=exc_type,
        )

    # ------------------------------------------------------------------
    def _worker_died_idle(self, worker: _Worker) -> None:
        self._remove_worker(worker)
        self._note_death()
        self._spawn()

    def _worker_crashed(self, worker: _Worker) -> None:
        digest, job, attempt = worker.item
        detail = f"worker pid {worker.pid} {worker.death_detail()}"
        pid = worker.pid
        self._remove_worker(worker)
        self._attempt_failed(digest, job, attempt, "crash", detail, pid)
        self._note_death()
        self._spawn()

    def _note_death(self) -> None:
        self._consecutive_deaths += 1
        if self._consecutive_deaths >= self.degrade_after:
            raise PoolDegraded(
                f"pool degraded to serial after {self._consecutive_deaths} "
                "consecutive worker deaths without progress"
            )

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.item is None or worker.deadline is None:
                continue
            if now < worker.deadline:
                continue
            digest, job, attempt = worker.item
            pid = worker.pid
            self._remove_worker(worker, kill=True)
            self._attempt_failed(
                digest, job, attempt, "timeout",
                f"exceeded {self.timeout_s:g}s wall clock; "
                f"worker pid {pid} killed",
                pid,
            )
            self._spawn()

    def _remove_worker(self, worker: _Worker, kill: bool = False) -> None:
        if kill:
            worker.kill()
        else:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.proc.join()
        if worker in self._workers:
            self._workers.remove(worker)

    # ------------------------------------------------------------------
    def _attempt_failed(
        self,
        digest: str,
        job: Job,
        attempt: int,
        kind: str,
        detail: str,
        pid: Optional[int],
        exc_type: Optional[str] = None,
    ) -> None:
        record = AttemptRecord(
            attempt=attempt, kind=kind, detail=detail, worker_pid=pid
        )
        self._attempts.setdefault(digest, []).append(record)
        permanent = is_permanent(kind, exc_type)
        if not permanent and attempt < self.retry.max_attempts:
            backoff = self.retry.backoff_s(digest, attempt)
            record.backoff_s = backoff
            self._push(digest, job, attempt + 1, time.monotonic() + backoff)
            self.on_retry(digest, job, record)
            return
        failure = JobFailure(
            digest=digest,
            experiment=job.experiment,
            key=job.key,
            label=job.label,
            attempts=list(self._attempts[digest]),
            traceback=self._last_tb.get(digest, ""),
            permanent=permanent,
        )
        self.on_failure(digest, job, failure)

    # ------------------------------------------------------------------
    def _reclaim_remaining(self) -> List[Tuple[str, Job]]:
        """Queued + in-flight items, in deterministic sequence order."""
        entries = list(self._heap)
        self._heap.clear()
        reclaimed = [
            (seq, digest, job) for (_, seq, digest, job, _) in entries
        ]
        for worker in self._workers:
            if worker.item is not None:
                digest, job, _ = worker.item
                # In-flight items keep their original relative order by
                # using the sequence the pool would assign next.
                reclaimed.append((self._seq, digest, job))
                self._seq += 1
                worker.item = None
        reclaimed.sort(key=lambda entry: entry[0])
        seen = set()
        remaining = []
        for _, digest, job in reclaimed:
            if digest not in seen:
                seen.add(digest)
                remaining.append((digest, job))
        return remaining

    def _drain_ready(self) -> None:
        """Collect replies already in the pipes (interrupt path)."""
        busy = [w for w in self._workers if w.item is not None]
        if not busy:
            return
        try:
            ready = connection.wait([w.conn for w in busy], timeout=_DRAIN_S)
        except OSError:
            return
        for worker in busy:
            if worker.conn in ready:
                try:
                    self._collect_reply(worker)
                except Exception:
                    pass

    def _shutdown(self) -> None:
        for worker in list(self._workers):
            if worker.item is None:
                worker.stop()
            else:
                worker.kill()
        self._workers.clear()
