"""Deterministic fault injection for the campaign executor.

A :class:`FaultPlan` tells *worker processes* to misbehave on chosen
``(digest, attempt)`` pairs: die without warning, hang until the
supervisor's timeout kills them, raise, or corrupt the result payload
on its way back over the pipe.  The chaos test suite drives the
supervised executor through every failure mode it claims to survive
with byte-for-byte reproducible runs — the plan is pure data, matched
by digest prefix and attempt number, with no randomness of its own.

Faults apply **only inside worker processes** (``repro.campaign.pool``
sets :data:`in_worker` after fork).  The serial in-process path and the
degraded-to-serial fallback never consult the plan: a ``crash`` fault
must never take down the supervising process, and "the pool keeps
dying, serial still completes the campaign" is exactly the degradation
contract under test.

Plans are normally passed straight to
:func:`repro.campaign.executor.run_jobs`; the ``REPRO_CAMPAIGN_FAULTS``
environment variable (JSON, same shape as :meth:`FaultPlan.to_json`)
reaches code paths that do not expose the parameter, e.g. CLI-level
chaos tests.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Tuple

#: Environment hook consulted when ``run_jobs`` is not given a plan.
FAULTS_ENV = "REPRO_CAMPAIGN_FAULTS"

#: Worker-side flag: ``pool._worker_main`` flips this after fork so
#: fault actions can never fire in a supervising (or serial) process.
in_worker = False

#: What an injected fault does to the worker:
#:
#: * ``kill``     — SIGKILL self mid-job (segfault/OOM-killer stand-in);
#: * ``exit``     — ``os._exit(3)`` without a reply (hard crash);
#: * ``hang``     — sleep far past any timeout (wedged simulation);
#: * ``raise``    — raise ``RuntimeError`` (transient, retried);
#: * ``fail``     — raise ``ValueError`` (permanent, straight to
#:   quarantine);
#: * ``corrupt``  — return the real result with its payload bytes
#:   flipped after checksumming (detected by the supervisor's integrity
#:   check, costs one attempt).
ACTIONS = ("kill", "exit", "hang", "raise", "fail", "corrupt")

#: Characters a job digest is made of (lowercase sha256 hexdigest) —
#: any prefix of one must stay inside this alphabet.
_HEX = frozenset("0123456789abcdef")


class FaultPlanError(ValueError):
    """A fault plan failed to parse or validate.

    Raised with a message that names what was wrong (bad JSON, missing
    key, unknown action, non-hex digest prefix) so a typo'd
    ``REPRO_CAMPAIGN_FAULTS`` produces a usage error, not a traceback
    from deep inside the executor.
    """


@dataclass(frozen=True)
class Fault:
    """One injected failure: ``action`` on ``digest_prefix`` at
    ``attempt`` (1-based; 0 matches every attempt)."""

    digest_prefix: str
    attempt: int
    action: str

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (one of {ACTIONS})"
            )
        if self.attempt < 0:
            raise ValueError("fault attempt must be >= 0 (0 = every attempt)")
        if not _HEX.issuperset(self.digest_prefix):
            # Job digests are lowercase sha256 hex; a prefix outside
            # that alphabet can never match and is always a typo.  The
            # empty prefix stays valid (matches every job).
            raise ValueError(
                f"fault digest_prefix {self.digest_prefix!r} is not a "
                "lowercase-hex digest prefix"
            )

    def matches(self, digest: str, attempt: int) -> bool:
        return digest.startswith(self.digest_prefix) and self.attempt in (
            0,
            attempt,
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`Fault` rules (first match wins)."""

    faults: Tuple[Fault, ...] = ()

    def action_for(self, digest: str, attempt: int) -> Optional[str]:
        for fault in self.faults:
            if fault.matches(digest, attempt):
                return fault.action
        return None

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "digest_prefix": f.digest_prefix,
                    "attempt": f.attempt,
                    "action": f.action,
                }
                for f in self.faults
            ]
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan, raising :class:`FaultPlanError` on anything
        malformed — invalid JSON, wrong shape, missing keys, bad
        attempt numbers, unknown actions, non-hex digest prefixes."""
        try:
            entries = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(entries, list):
            raise FaultPlanError(
                "fault plan must be a JSON array of fault objects, got "
                f"{type(entries).__name__}"
            )
        faults = []
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise FaultPlanError(
                    f"fault #{index} must be an object, got "
                    f"{type(entry).__name__}"
                )
            try:
                faults.append(
                    Fault(
                        digest_prefix=str(entry["digest_prefix"]),
                        attempt=int(entry.get("attempt", 0)),
                        action=str(entry["action"]),
                    )
                )
            except KeyError as exc:
                raise FaultPlanError(
                    f"fault #{index} is missing required key "
                    f"{exc.args[0]!r}"
                ) from exc
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(f"fault #{index}: {exc}") from exc
        return cls(faults=tuple(faults))

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by :data:`FAULTS_ENV`, or ``None``.

        A malformed plan raises :class:`FaultPlanError` naming the
        environment variable, so CLI entry points can turn it into a
        clean usage error instead of a traceback.
        """
        text = os.environ.get(FAULTS_ENV)
        if not text:
            return None
        try:
            return cls.from_json(text)
        except FaultPlanError as exc:
            raise FaultPlanError(f"{FAULTS_ENV}: {exc}") from exc


# ----------------------------------------------------------------------
# reference executors for the chaos suite
# ----------------------------------------------------------------------
def echo(params):
    """Cheap deterministic job executor for queue/store tests: returns
    its own params (optionally sleeping ``sleep_s`` first, so lease and
    timeout machinery has something to race).  Address it as
    ``"repro.campaign.faults:echo"``."""
    import time as _time

    sleep_s = params.get("sleep_s", 0.0)
    if sleep_s:
        _time.sleep(sleep_s)
    return {"echo": params.get("value"), "params": dict(params)}


def unpicklable_result(params):
    """Job executor that *succeeds* but returns something no pickle can
    carry across the worker pipe — the supervisor must book it as an
    ``unpicklable`` attempt, not hang or die.  Address it as
    ``"repro.campaign.faults:unpicklable_result"``."""
    return lambda: params  # a closure: deterministically unpicklable
