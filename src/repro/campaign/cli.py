"""``python -m repro campaign`` — run experiments as a parallel campaign.

Examples::

    python -m repro campaign                      # all figures + tables
    python -m repro campaign fig8 fig9 --jobs 4   # a subset, 4 workers
    python -m repro campaign --jobs 1             # serial, in-process
    python -m repro campaign --force              # ignore cached results
    python -m repro campaign --timeout 600        # kill hung jobs
    python -m repro campaign --resume             # finish an interrupted run
    python -m repro campaign --missing-only       # plan, then run only misses
    python -m repro campaign verify-cache         # integrity-check the store
    python -m repro campaign query --family fig9  # index lookups, no unpickle
    python -m repro campaign worker --spool-dir D # drain a shared spool
    python -m repro campaign --list               # selectable names

Results are cached on disk keyed by each job's config digest, so a
re-run only simulates what changed; ``--force`` recomputes everything
(and refreshes the cache).  Output is printed per experiment in the
order requested, independent of which worker finished first.

Failure semantics: a job that exhausts its ``--retries`` attempts is
*quarantined* — the campaign completes the rest, prints a quarantine
report (digest, attempts, worker pids, traceback), skips the affected
experiments' renders, and exits nonzero unless ``--partial``.  A ^C
flushes finished results to the cache and the run's manifest, and
``--resume`` then executes only the remainder (prior quarantined jobs
are reported without burning their retry budget again).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.executor import quarantine_report, run_jobs
from repro.campaign.faults import FaultPlanError
from repro.campaign.job import Job
from repro.campaign.manifest import RunManifest, campaign_digest
from repro.campaign.policy import RetryPolicy
from repro.campaign.registry import FIGURE_SUITE, campaign_registry
from repro.campaign.store import (
    DEFAULT_CACHE_DIRNAME,
    ResultStore,
    default_store_root,
)

#: Legacy name for the store directory relative to the resolved root.
#: The *actual* default is :func:`repro.campaign.store.default_store_root`
#: — ``REPRO_CACHE_DIR`` or the repo root, never the bare CWD.
DEFAULT_CACHE_DIR = DEFAULT_CACHE_DIRNAME

#: argparse help text for every ``--cache-dir`` flag in the repo.
CACHE_DIR_HELP = (
    "result store directory (default: $REPRO_CACHE_DIR, else "
    f"<repo root>/{DEFAULT_CACHE_DIRNAME})"
)

#: Exit code for an interrupted (^C) campaign, matching shell SIGINT.
EXIT_INTERRUPTED = 130


def manifest_path(cache_dir, digest: str) -> Path:
    """Where a campaign's resume checkpoint lives."""
    return Path(cache_dir) / "runs" / f"{digest[:16]}.json"


def verify_cache_main(
    cache_dir: Optional[str], purge: bool, reindex: bool = False
) -> int:
    """``repro campaign verify-cache``: payload and index integrity.

    Payload verification is unchanged from the plain cache (checksums,
    exit 1 on damage, ``--purge`` to drop).  On top of it the store's
    index is cross-checked against the entries on disk: dangling rows
    and unindexed entries are reported, and ``--reindex`` rebuilds the
    index to exactly match the surviving entries (always run after a
    purge, so the purge never leaves dangling rows behind).
    """
    store = ResultStore(
        default_store_root() if cache_dir is None else cache_dir
    )
    if store.swept_tmp:
        print(f"swept {store.swept_tmp} stale temp file(s)")
    total, bad = store.verify_summary()
    print(f"{total} entrie(s) under {store.root}: {total - len(bad)} ok")
    for digest, status, detail in bad:
        print(f"  {status:10} {digest[:16]}…  {detail}")
    if bad and purge:
        for digest, _, _ in bad:
            try:
                store.path_for(digest).unlink()
            except OSError:
                pass
        print(f"purged {len(bad)} bad entrie(s)")
    if store.index.corrupt_lines:
        print(
            f"index: skipped {store.index.corrupt_lines} corrupt "
            "line(s) (torn append from a crashed writer)"
        )
    dangling, unindexed = store.verify_index()
    if dangling or unindexed:
        print(
            f"index: {len(dangling)} dangling row(s), "
            f"{len(unindexed)} unindexed entrie(s)"
        )
    else:
        print("index: consistent with the entries on disk")
    if reindex or (purge and bad):
        entries, added, dropped = store.reindex()
        print(
            f"reindexed: {entries} entrie(s), {added} added, "
            f"{dropped} dropped"
        )
    elif dangling or unindexed or store.index.corrupt_lines:
        print("  (run verify-cache --reindex to rebuild the index)")
    return 1 if bad else 0


def query_main(argv: List[str]) -> int:
    """``repro campaign query``: index lookups, no payloads unpickled."""
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign query",
        description=(
            "Answer (experiment, family, seed, digest-prefix) lookups "
            "from the result store's index without unpickling any "
            "payloads."
        ),
    )
    parser.add_argument("--cache-dir", default=None, help=CACHE_DIR_HELP)
    parser.add_argument("--experiment", default=None)
    parser.add_argument("--family", default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--digest", default=None, metavar="PREFIX",
        help="match digests by prefix",
    )
    parser.add_argument(
        "--stat", action="store_true",
        help="include entry size and indexing state per row",
    )
    args = parser.parse_args(argv)
    store = ResultStore(
        default_store_root() if args.cache_dir is None else args.cache_dir
    )
    rows = store.query(
        experiment=args.experiment,
        family=args.family,
        seed=args.seed,
        digest_prefix=args.digest,
    )
    for digest, meta in rows:
        line = (
            f"{digest[:16]}  {meta.get('experiment', '?'):12} "
            f"family={meta.get('family', '?')} seed={meta.get('seed')} "
            f"key={meta.get('key', '?')}"
        )
        if args.stat:
            stat = store.stat(digest)
            if stat is not None:
                line += f"  {stat['size_bytes']} bytes"
        print(line)
    print(f"{len(rows)} entrie(s) under {store.root}")
    return 0


def worker_main(argv: List[str]) -> int:
    """``repro campaign worker``: drain a shared filesystem spool."""
    from repro.campaign.queue import worker_loop

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign worker",
        description=(
            "Claim and execute jobs from a filesystem spool until it "
            "stays drained.  Any number of workers — started by hand, "
            "by CI, or on other hosts sharing the directory — can "
            "drain one campaign; leases, retries and quarantine follow "
            "the policy the enqueuer froze into the spool."
        ),
    )
    parser.add_argument(
        "--spool-dir", required=True, metavar="DIR",
        help="spool directory shared with the enqueuing campaign",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=10.0, metavar="S",
        help="exit after the spool has stayed drained (or absent) this "
        "long (default: %(default)s)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="exit after processing N claims (mainly for tests)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-claim progress"
    )
    args = parser.parse_args(argv)
    if args.idle_exit <= 0:
        parser.error("--idle-exit must be positive")
    if args.max_jobs is not None and args.max_jobs < 1:
        parser.error("--max-jobs must be >= 1")

    def progress(status: str, _detail: str) -> None:
        if not args.quiet:
            print(f"  [{status}]", flush=True)

    processed = worker_loop(
        args.spool_dir,
        idle_exit_s=args.idle_exit,
        max_jobs=args.max_jobs,
        progress=progress,
    )
    print(f"worker pid {os.getpid()}: processed {processed} claim(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(argv) if argv is not None else sys.argv[1:]
    # Store/queue service commands have their own flag sets; hand over
    # before the campaign parser rejects them (same pattern as the
    # top-level CLI's subsystem routing).
    if argv and argv[0] == "query":
        return query_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Fan independent simulation jobs from any mix of experiments "
            "out across supervised worker processes, with retries, "
            "quarantine, checkpointed resume and an on-disk result cache."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "experiments to run (default: every figure and table; "
            "see --list for all names including abl-* ablations), or "
            "a special command: 'verify-cache', 'query', 'worker'"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes (default: one per CPU; 1 = serial, "
            "in-process)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=CACHE_DIR_HELP,
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cache (also disables "
        "the resume manifest)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="ignore cached results (they are refreshed afterwards)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock budget in seconds; a hung job is "
        "killed and retried (workers > 1 only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per job before quarantine (default: "
        f"{RetryPolicy.max_attempts})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume this campaign from its manifest: cached digests "
        "are reused and previously quarantined jobs are reported "
        "without re-running their attempts",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="exit 0 even when jobs were quarantined (the completed "
        "experiments still render)",
    )
    parser.add_argument(
        "--missing-only",
        action="store_true",
        help="plan against the store first, report cached/missing "
        "counts, execute only the missing jobs and skip the renders "
        "(fill-the-store mode for incremental sweeps)",
    )
    parser.add_argument(
        "--queue",
        choices=("pool", "spool"),
        default="pool",
        help="scheduling backend: the in-process supervised pool "
        "(default) or a filesystem spool shared with independent "
        "'repro campaign worker' processes",
    )
    parser.add_argument(
        "--spool-dir",
        default=None,
        metavar="DIR",
        help="spool directory for --queue spool",
    )
    parser.add_argument(
        "--spool-workers",
        type=int,
        default=None,
        metavar="N",
        help="local worker processes the spool coordinator spawns "
        "(default: --jobs; 0 = rely entirely on external workers)",
    )
    parser.add_argument(
        "--purge",
        action="store_true",
        help="with verify-cache: delete the entries that fail "
        "verification",
    )
    parser.add_argument(
        "--reindex",
        action="store_true",
        help="with verify-cache: rebuild the store index from the "
        "entries on disk",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="simulated duration override per run (experiment default "
        "if omitted)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list selectable experiments"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.seconds is not None and args.seconds <= 0:
        parser.error("--seconds must be positive")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries is not None and args.retries < 1:
        parser.error("--retries must be >= 1")

    if args.experiments and args.experiments[0] == "verify-cache":
        if len(args.experiments) > 1:
            parser.error("verify-cache takes no experiment names")
        return verify_cache_main(args.cache_dir, args.purge, args.reindex)
    if args.queue == "spool" and args.spool_dir is None:
        parser.error("--queue spool needs --spool-dir")
    if args.spool_workers is not None and args.spool_workers < 0:
        parser.error("--spool-workers must be >= 0")

    registry = campaign_registry()
    if args.list:
        for name in registry:
            print(f"  {name}")
        return 0

    selected = list(args.experiments) if args.experiments else list(FIGURE_SUITE)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        valid = ", ".join(registry)
        print(
            f"unknown experiment(s) {', '.join(unknown)}; valid: {valid}",
            file=sys.stderr,
        )
        return 2

    jobs: List[Job] = []
    for name in selected:
        jobs.extend(
            registry[name].build_jobs(seed=args.seed, seconds=args.seconds)
        )

    cache = (
        None
        if args.no_cache
        else ResultStore(
            default_store_root()
            if args.cache_dir is None
            else args.cache_dir
        )
    )
    manifest = None
    skip_failed = None
    if cache is not None:
        digest = campaign_digest(job.digest for job in jobs)
        manifest = RunManifest.load(manifest_path(cache.root, digest), digest)
        if args.resume:
            skip_failed = set(manifest.failed)
        else:
            # A fresh (non-resume) run re-attempts everything that is
            # not in the cache, including previously failed digests.
            manifest.failed.clear()
    elif args.resume:
        print("--resume needs the cache; drop --no-cache", file=sys.stderr)
        return 2

    if args.missing_only:
        if cache is None:
            print(
                "--missing-only needs the store; drop --no-cache",
                file=sys.stderr,
            )
            return 2
        plan = cache.plan(jobs)
        print(plan.summary())
        if not plan.missing:
            print("nothing to execute — the store already has every job")
            return 0
        jobs = plan.missing

    retry = (
        RetryPolicy(max_attempts=args.retries)
        if args.retries is not None
        else None
    )

    queue = None
    if args.queue == "spool":
        from repro.campaign.queue import SpoolQueue

        if cache is None:
            print(
                "--queue spool needs the shared store; drop --no-cache",
                file=sys.stderr,
            )
            return 2
        spool_workers = (
            args.spool_workers
            if args.spool_workers is not None
            else (args.jobs if args.jobs is not None else 1)
        )
        queue = SpoolQueue(args.spool_dir, cache, workers=spool_workers)

    def progress(event: str, job: Job, done: int, total: int) -> None:
        if not args.quiet:
            print(f"  [{done}/{total}] {job.label} ({event})")

    try:
        outcome = run_jobs(
            jobs,
            workers=args.jobs,
            cache=cache,
            force=args.force,
            progress=progress,
            retry=retry,
            timeout_s=args.timeout,
            manifest=manifest,
            skip_failed=skip_failed,
            queue=queue,
        )
    except FaultPlanError as exc:
        # A malformed REPRO_CAMPAIGN_FAULTS plan is a usage error — name
        # the problem and exit 2 instead of unwinding with a traceback.
        print(str(exc), file=sys.stderr)
        return 2

    failed_experiments = set(outcome.failed_experiments())
    incomplete = failed_experiments | (
        set(selected) if outcome.stats.interrupted else set()
    )
    if args.missing_only:
        # Fill-the-store mode: the cached majority was deliberately not
        # loaded, so experiment renders would be incomplete — report
        # execution stats only.
        selected = []
    for name in selected:
        if name in incomplete:
            why = (
                "interrupted"
                if name not in failed_experiments
                else "job(s) quarantined"
            )
            print(f"[{name}: not rendered — {why}]")
            print()
            continue
        spec = registry[name]
        result = spec.reduce(outcome.experiment_results(name))
        print(spec.render(result))
        print()

    report = quarantine_report(outcome)
    if report:
        print(report)
        print()
    print(outcome.stats.summary())

    if outcome.stats.interrupted:
        print(
            "interrupted — finished results are cached; rerun with "
            "--resume to execute only the remainder",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if outcome.failures and not args.partial:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
