"""``python -m repro campaign`` — run experiments as a parallel campaign.

Examples::

    python -m repro campaign                      # all figures + tables
    python -m repro campaign fig8 fig9 --jobs 4   # a subset, 4 workers
    python -m repro campaign --jobs 1             # serial, in-process
    python -m repro campaign --force              # ignore cached results
    python -m repro campaign --timeout 600        # kill hung jobs
    python -m repro campaign --resume             # finish an interrupted run
    python -m repro campaign verify-cache         # integrity-check the cache
    python -m repro campaign --list               # selectable names

Results are cached on disk keyed by each job's config digest, so a
re-run only simulates what changed; ``--force`` recomputes everything
(and refreshes the cache).  Output is printed per experiment in the
order requested, independent of which worker finished first.

Failure semantics: a job that exhausts its ``--retries`` attempts is
*quarantined* — the campaign completes the rest, prints a quarantine
report (digest, attempts, worker pids, traceback), skips the affected
experiments' renders, and exits nonzero unless ``--partial``.  A ^C
flushes finished results to the cache and the run's manifest, and
``--resume`` then executes only the remainder (prior quarantined jobs
are reported without burning their retry budget again).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.cache import ResultCache
from repro.campaign.executor import quarantine_report, run_jobs
from repro.campaign.faults import FaultPlanError
from repro.campaign.job import Job
from repro.campaign.manifest import RunManifest, campaign_digest
from repro.campaign.policy import RetryPolicy
from repro.campaign.registry import FIGURE_SUITE, campaign_registry

#: Default on-disk cache location (repo root when run from a checkout).
DEFAULT_CACHE_DIR = ".repro-cache/campaign"

#: Exit code for an interrupted (^C) campaign, matching shell SIGINT.
EXIT_INTERRUPTED = 130


def manifest_path(cache_dir, digest: str) -> Path:
    """Where a campaign's resume checkpoint lives."""
    return Path(cache_dir) / "runs" / f"{digest[:16]}.json"


def verify_cache_main(cache_dir: str, purge: bool) -> int:
    """``repro campaign verify-cache``: integrity-check every entry."""
    cache = ResultCache(cache_dir)
    if cache.swept_tmp:
        print(f"swept {cache.swept_tmp} stale temp file(s)")
    total, bad = cache.verify_summary()
    print(f"{total} entrie(s) under {cache.root}: {total - len(bad)} ok")
    for digest, status, detail in bad:
        print(f"  {status:10} {digest[:16]}…  {detail}")
    if bad and purge:
        for digest, _, _ in bad:
            try:
                cache.path_for(digest).unlink()
            except OSError:
                pass
        print(f"purged {len(bad)} bad entrie(s)")
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Fan independent simulation jobs from any mix of experiments "
            "out across supervised worker processes, with retries, "
            "quarantine, checkpointed resume and an on-disk result cache."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "experiments to run (default: every figure and table; "
            "see --list for all names including abl-* ablations), or "
            "the special command 'verify-cache'"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes (default: one per CPU; 1 = serial, "
            "in-process)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cache (also disables "
        "the resume manifest)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="ignore cached results (they are refreshed afterwards)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock budget in seconds; a hung job is "
        "killed and retried (workers > 1 only)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="max attempts per job before quarantine (default: "
        f"{RetryPolicy.max_attempts})",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume this campaign from its manifest: cached digests "
        "are reused and previously quarantined jobs are reported "
        "without re-running their attempts",
    )
    parser.add_argument(
        "--partial",
        action="store_true",
        help="exit 0 even when jobs were quarantined (the completed "
        "experiments still render)",
    )
    parser.add_argument(
        "--purge",
        action="store_true",
        help="with verify-cache: delete the entries that fail "
        "verification",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="simulated duration override per run (experiment default "
        "if omitted)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list selectable experiments"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.seconds is not None and args.seconds <= 0:
        parser.error("--seconds must be positive")
    if args.timeout is not None and args.timeout <= 0:
        parser.error("--timeout must be positive")
    if args.retries is not None and args.retries < 1:
        parser.error("--retries must be >= 1")

    if args.experiments and args.experiments[0] == "verify-cache":
        if len(args.experiments) > 1:
            parser.error("verify-cache takes no experiment names")
        return verify_cache_main(args.cache_dir, args.purge)

    registry = campaign_registry()
    if args.list:
        for name in registry:
            print(f"  {name}")
        return 0

    selected = list(args.experiments) if args.experiments else list(FIGURE_SUITE)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        valid = ", ".join(registry)
        print(
            f"unknown experiment(s) {', '.join(unknown)}; valid: {valid}",
            file=sys.stderr,
        )
        return 2

    jobs: List[Job] = []
    for name in selected:
        jobs.extend(
            registry[name].build_jobs(seed=args.seed, seconds=args.seconds)
        )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    manifest = None
    skip_failed = None
    if cache is not None:
        digest = campaign_digest(job.digest for job in jobs)
        manifest = RunManifest.load(
            manifest_path(args.cache_dir, digest), digest
        )
        if args.resume:
            skip_failed = set(manifest.failed)
        else:
            # A fresh (non-resume) run re-attempts everything that is
            # not in the cache, including previously failed digests.
            manifest.failed.clear()
    elif args.resume:
        print("--resume needs the cache; drop --no-cache", file=sys.stderr)
        return 2

    retry = (
        RetryPolicy(max_attempts=args.retries)
        if args.retries is not None
        else None
    )

    def progress(event: str, job: Job, done: int, total: int) -> None:
        if not args.quiet:
            print(f"  [{done}/{total}] {job.label} ({event})")

    try:
        outcome = run_jobs(
            jobs,
            workers=args.jobs,
            cache=cache,
            force=args.force,
            progress=progress,
            retry=retry,
            timeout_s=args.timeout,
            manifest=manifest,
            skip_failed=skip_failed,
        )
    except FaultPlanError as exc:
        # A malformed REPRO_CAMPAIGN_FAULTS plan is a usage error — name
        # the problem and exit 2 instead of unwinding with a traceback.
        print(str(exc), file=sys.stderr)
        return 2

    failed_experiments = set(outcome.failed_experiments())
    incomplete = failed_experiments | (
        set(selected) if outcome.stats.interrupted else set()
    )
    for name in selected:
        if name in incomplete:
            why = (
                "interrupted"
                if name not in failed_experiments
                else "job(s) quarantined"
            )
            print(f"[{name}: not rendered — {why}]")
            print()
            continue
        spec = registry[name]
        result = spec.reduce(outcome.experiment_results(name))
        print(spec.render(result))
        print()

    report = quarantine_report(outcome)
    if report:
        print(report)
        print()
    print(outcome.stats.summary())

    if outcome.stats.interrupted:
        print(
            "interrupted — finished results are cached; rerun with "
            "--resume to execute only the remainder",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if outcome.failures and not args.partial:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
