"""``python -m repro campaign`` — run experiments as a parallel campaign.

Examples::

    python -m repro campaign                      # all figures + tables
    python -m repro campaign fig8 fig9 --jobs 4   # a subset, 4 workers
    python -m repro campaign --jobs 1             # serial, in-process
    python -m repro campaign --force              # ignore cached results
    python -m repro campaign --list               # selectable names

Results are cached on disk keyed by each job's config digest, so a
re-run only simulates what changed; ``--force`` recomputes everything
(and refreshes the cache).  Output is printed per experiment in the
order requested, independent of which worker finished first.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_jobs
from repro.campaign.job import Job
from repro.campaign.registry import FIGURE_SUITE, campaign_registry

#: Default on-disk cache location (repo root when run from a checkout).
DEFAULT_CACHE_DIR = ".repro-cache/campaign"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Fan independent simulation jobs from any mix of experiments "
            "out across worker processes, with an on-disk result cache."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "experiments to run (default: every figure and table; "
            "see --list for all names including abl-* ablations)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes (default: one per CPU; 1 = serial, "
            "in-process)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the on-disk cache",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="ignore cached results (they are refreshed afterwards)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="simulated duration override per run (experiment default "
        "if omitted)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list selectable experiments"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress"
    )
    args = parser.parse_args(argv)

    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.seconds is not None and args.seconds <= 0:
        parser.error("--seconds must be positive")

    registry = campaign_registry()
    if args.list:
        for name in registry:
            print(f"  {name}")
        return 0

    selected = list(args.experiments) if args.experiments else list(FIGURE_SUITE)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        valid = ", ".join(registry)
        print(
            f"unknown experiment(s) {', '.join(unknown)}; valid: {valid}",
            file=sys.stderr,
        )
        return 2

    jobs: List[Job] = []
    for name in selected:
        jobs.extend(
            registry[name].build_jobs(seed=args.seed, seconds=args.seconds)
        )

    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(event: str, job: Job, done: int, total: int) -> None:
        if not args.quiet:
            print(f"  [{done}/{total}] {job.label} ({event})")

    outcome = run_jobs(
        jobs,
        workers=args.jobs,
        cache=cache,
        force=args.force,
        progress=progress,
    )

    for name in selected:
        spec = registry[name]
        result = spec.reduce(outcome.experiment_results(name))
        print(spec.render(result))
        print()
    print(outcome.stats.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
