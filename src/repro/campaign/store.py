"""Layered result store: the checksummed cache plus a queryable index.

:class:`ResultStore` is the campaign subsystem's storage layer.  It
keeps :class:`~repro.campaign.cache.ResultCache`'s on-disk payload
format byte-for-byte (versioned magic + SHA-256 + pickle, written via
temp file + rename) and adds what an opaque blob store cannot answer:

* a **crash-safe on-disk index** over ``(experiment, family, config
  digest, seed)`` — an append-only JSONL log replayed on open, so a
  killed writer costs at most its own un-flushed line, never the
  index.  A truncated or corrupt tail line is skipped on load (the
  payload files stay authoritative), and :meth:`reindex` rebuilds the
  whole index from the surviving entries;
* **query/list/stat** operations that answer "which results do I have
  for this experiment / family / seed?" from the index alone, without
  unpickling a single payload (``repro campaign query``);
* **incremental-sweep planning**: :meth:`plan` splits a batch of jobs
  into ``(cached, missing)`` by probing entry presence, so a
  10,000-config sweep enumerates everything but executes only the
  uncached remainder (``--missing-only``).

The index is *advisory*: entry files remain the source of truth.
Reads never trust the index (``get`` goes to the file), queries drop
dangling index rows lazily, and :meth:`verify_index` reports both
inconsistency directions for ``repro campaign verify-cache``.

This module also owns the store-root resolution rule that fixes the
old relative-path footgun: ``.repro-cache/campaign`` used to resolve
against the process CWD, silently growing a second cold cache when a
campaign ran from a subdirectory.  :func:`default_store_root` resolves
against the ``REPRO_CACHE_DIR`` environment variable when set, else
against the repository root found by walking up from the CWD.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.campaign.cache import ResultCache
from repro.campaign.job import Job, thaw

#: Environment override for the store root (absolute or CWD-relative).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Store directory relative to the resolved root (kept from PR 2, so an
#: existing checkout's warm cache stays warm after the refactor).
DEFAULT_CACHE_DIRNAME = ".repro-cache/campaign"

#: Files whose presence marks a directory as the repository root.
_ROOT_MARKERS = (".git", "setup.py", "pyproject.toml")

#: Index file name, under the store root.
INDEX_NAME = "index.jsonl"


def repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """The nearest enclosing repository root, or ``None``.

    Walks up from ``start`` (default: CWD) looking for a marker file —
    ``.git``, ``setup.py`` or ``pyproject.toml`` — so a campaign run
    from ``src/`` or ``tests/`` lands in the same store as one run from
    the checkout root.
    """
    here = (Path.cwd() if start is None else Path(start)).resolve()
    for candidate in (here, *here.parents):
        if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
            return candidate
    return None


def default_store_root() -> Path:
    """Where the result store lives when no ``--cache-dir`` is given.

    Resolution order: ``REPRO_CACHE_DIR`` (used verbatim), else
    ``<repo root>/.repro-cache/campaign``, else — outside any
    repository — the old CWD-relative default.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    root = repo_root()
    if root is not None:
        return root / DEFAULT_CACHE_DIRNAME
    return Path(DEFAULT_CACHE_DIRNAME)


def job_meta(job: Job) -> Dict[str, Any]:
    """Index metadata for one job: experiment, key, family, seed.

    ``family`` and ``seed`` come from the job's own config: a scenario
    job carries its :class:`~repro.scenario.spec.ScenarioSpec` (family
    is the spec name before any ``[overrides]`` suffix, seed is the
    spec seed); any other job falls back to its experiment name and a
    top-level ``seed`` param when present.  Pure metadata — nothing
    here feeds the digest.
    """
    family: Optional[str] = job.experiment
    seed: Optional[int] = None
    try:
        params = thaw(job.params)
    except Exception:
        params = None
    if isinstance(params, dict):
        raw_seed = params.get("seed")
        if isinstance(raw_seed, (int, float)):
            seed = int(raw_seed)
        spec = params.get("spec")
        # Duck-typed so the store never imports the scenario package
        # (which imports campaign right back).
        name = getattr(spec, "name", None)
        spec_seed = getattr(spec, "seed", None)
        if isinstance(name, str) and name:
            family = name.partition("[")[0]
        if isinstance(spec_seed, int):
            seed = spec_seed
    return {
        "experiment": job.experiment,
        "key": job.key if isinstance(job.key, str) else repr(job.key),
        "family": family,
        "seed": seed,
        "executor": job.executor,
    }


class StoreIndex:
    """Append-only JSONL index: ``digest -> metadata``.

    Every mutation appends one self-contained line
    (``{"op": "add"|"remove", "digest": ..., ...meta}``) with an
    immediate flush, so a crashed writer loses at most the line it was
    writing.  :meth:`load` replays the log and *skips* lines that fail
    to parse (the torn tail of a killed append, or plain corruption),
    counting them in :attr:`corrupt_lines`; :meth:`rewrite` compacts
    the log atomically from the in-memory state.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        self.load()

    def load(self) -> None:
        self.entries = {}
        self.corrupt_lines = 0
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                op = record.pop("op")
                digest = record.pop("digest")
            except (ValueError, KeyError, TypeError, AttributeError):
                self.corrupt_lines += 1
                continue
            if op == "add":
                self.entries[digest] = record
            elif op == "remove":
                self.entries.pop(digest, None)
            else:
                self.corrupt_lines += 1

    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One write() of one line in append mode: concurrent store
        # writers (spool workers sharing the directory) interleave at
        # line granularity, never mid-line, for small records.
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def add(self, digest: str, meta: Optional[Dict[str, Any]] = None) -> None:
        meta = dict(meta or {})
        if self.entries.get(digest) == meta:
            return  # idempotent re-put: don't grow the log
        self._append({"op": "add", "digest": digest, **meta})
        self.entries[digest] = meta

    def remove(self, digest: str) -> None:
        if digest not in self.entries:
            return
        self._append({"op": "remove", "digest": digest})
        self.entries.pop(digest, None)

    def rewrite(self) -> None:
        """Atomic compaction: one ``add`` line per live entry."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        lines = [
            json.dumps({"op": "add", "digest": digest, **meta}, sort_keys=True)
            for digest, meta in sorted(self.entries.items())
        ]
        tmp.write_text("".join(line + "\n" for line in lines))
        os.replace(tmp, self.path)


@dataclass
class SweepPlan:
    """What :meth:`ResultStore.plan` decided about a batch of jobs.

    ``cached``/``missing`` partition the *requested* jobs; the unique
    counts collapse duplicate digests (coalescing), so
    ``missing_digests`` is exactly the set of simulations an
    incremental sweep still has to run.
    """

    cached: List[Job] = field(default_factory=list)
    missing: List[Job] = field(default_factory=list)
    cached_digests: List[str] = field(default_factory=list)
    missing_digests: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cached) + len(self.missing)

    def summary(self) -> str:
        return (
            f"plan: {len(self.cached)} cached, {len(self.missing)} missing "
            f"of {self.total} job(s) "
            f"({len(self.cached_digests)} + {len(self.missing_digests)} "
            "unique digests)"
        )


class ResultStore(ResultCache):
    """The cache plus a queryable, rebuildable metadata index.

    Payload entries are bit-compatible with :class:`ResultCache` (an
    existing cache directory upgrades in place: the index starts empty
    and :meth:`reindex` — or simply continued use — populates it).
    """

    def __init__(self, root=None) -> None:
        super().__init__(default_store_root() if root is None else root)
        self.index = StoreIndex(self.root / INDEX_NAME)

    # ------------------------------------------------------------------
    # writes keep the index in step
    # ------------------------------------------------------------------
    def put(
        self, digest: str, value: Any, meta: Optional[Dict[str, Any]] = None
    ) -> Path:
        path = super().put(digest, value)
        self.index.add(digest, meta)
        return path

    def put_for_job(self, job: Job, value: Any) -> Path:
        """``put`` with the job's own metadata in the index row."""
        return self.put(job.digest, value, meta=job_meta(job))

    def get(self, digest: str) -> Tuple[bool, Any]:
        hit, value = super().get(digest)
        if not hit and not self.path_for(digest).exists():
            # Entry gone (never existed, or dropped as corrupt): the
            # index row, if any, is stale — self-heal it now.
            self.index.remove(digest)
        return hit, value

    def clear(self) -> int:
        removed = super().clear()
        self.index.entries.clear()
        self.index.rewrite()
        return removed

    # ------------------------------------------------------------------
    # presence and planning (no payload reads)
    # ------------------------------------------------------------------
    def contains(self, digest: str) -> bool:
        """Entry presence by file existence — no unpickling, and no
        trust in the index (an unindexed entry still counts)."""
        return self.path_for(digest).exists()

    def plan(self, jobs: Iterable[Job]) -> SweepPlan:
        """Split ``jobs`` into already-stored vs still-to-run.

        One ``contains`` probe per unique digest: a 10,000-config sweep
        plans with 10,000 stats, zero payload reads.
        """
        plan = SweepPlan()
        present: Dict[str, bool] = {}
        for job in jobs:
            digest = job.digest
            hit = present.get(digest)
            if hit is None:
                hit = self.contains(digest)
                present[digest] = hit
                (plan.cached_digests if hit else plan.missing_digests).append(
                    digest
                )
            (plan.cached if hit else plan.missing).append(job)
        return plan

    # ------------------------------------------------------------------
    # queries (index-driven, payloads never unpickled)
    # ------------------------------------------------------------------
    def query(
        self,
        *,
        experiment: Optional[str] = None,
        family: Optional[str] = None,
        seed: Optional[int] = None,
        digest_prefix: Optional[str] = None,
    ) -> List[Tuple[str, Dict[str, Any]]]:
        """Index rows matching every given filter, sorted by digest.

        Rows whose entry file has vanished are dropped from the result
        *and* healed out of the index.
        """
        matches: List[Tuple[str, Dict[str, Any]]] = []
        for digest in sorted(self.index.entries):
            meta = self.index.entries[digest]
            if digest_prefix and not digest.startswith(digest_prefix):
                continue
            if experiment is not None and meta.get("experiment") != experiment:
                continue
            if family is not None and meta.get("family") != family:
                continue
            if seed is not None and meta.get("seed") != seed:
                continue
            matches.append((digest, meta))
        alive: List[Tuple[str, Dict[str, Any]]] = []
        for digest, meta in matches:
            if self.contains(digest):
                alive.append((digest, meta))
            else:
                self.index.remove(digest)
        return alive

    def stat(self, digest: str) -> Optional[Dict[str, Any]]:
        """Entry facts without unpickling: metadata + size + mtime."""
        path = self.path_for(digest)
        try:
            st = path.stat()
        except OSError:
            return None
        meta = self.index.entries.get(digest)
        return {
            "digest": digest,
            "size_bytes": st.st_size,
            "mtime": st.st_mtime,
            "indexed": meta is not None,
            **(meta or {}),
        }

    # ------------------------------------------------------------------
    # index consistency
    # ------------------------------------------------------------------
    def entry_digests(self) -> List[str]:
        """Digests of the entry files actually on disk, sorted."""
        return sorted(self.digests())

    def verify_index(self) -> Tuple[List[str], List[str]]:
        """``(dangling, unindexed)``: index rows without an entry file,
        and entry files without an index row.  Read-only — the
        ``verify-cache`` CLI reports them; :meth:`reindex` fixes both.
        """
        on_disk = set(self.entry_digests())
        indexed = set(self.index.entries)
        dangling = sorted(indexed - on_disk)
        unindexed = sorted(on_disk - indexed)
        return dangling, unindexed

    def reindex(self) -> Tuple[int, int, int]:
        """Rebuild the index to exactly match the surviving entries.

        Known metadata is preserved; entries the index never saw (e.g.
        a pre-index cache directory, or a writer killed between payload
        rename and index append) are added with empty metadata; rows
        whose entry vanished are dropped.  Returns
        ``(entries, added, dropped)``.
        """
        on_disk = self.entry_digests()
        known = self.index.entries
        added = sum(1 for digest in on_disk if digest not in known)
        dropped = sum(1 for digest in known if digest not in set(on_disk))
        self.index.entries = {
            digest: known.get(digest, {}) for digest in on_disk
        }
        self.index.rewrite()
        return len(on_disk), added, dropped
