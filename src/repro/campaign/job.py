"""Job descriptors: hashable, picklable simulation configs.

A :class:`Job` names one independent simulation: an *executor* (a pure
function addressed as ``"package.module:function"``) plus its *params*
(a config dict frozen into a hashable tree).  Two jobs with the same
executor and params always produce the same result — experiment
determinism is what makes both the duplicate-config coalescing and the
on-disk cache sound — so the job's identity for caching purposes is a
content digest of exactly those two pieces (plus a schema salt that
invalidates every entry when the job encoding itself changes).

``experiment`` and ``key`` locate the job's result inside one
experiment's ``reduce()`` and are deliberately *not* part of the
digest: a 1-vs-11 FIFO uplink run is the same simulation whether fig3
or fig9 asked for it, and the executor coalesces such duplicates.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable, Dict, Hashable, List, Tuple

#: Version salt folded into every digest.  Bump when the frozen-tree
#: encoding or any executor's semantics change incompatibly: old cache
#: entries then simply stop matching instead of being served stale.
CACHE_SCHEMA = "repro-campaign/1"

_TAG_TUPLE = "@tuple"
_TAG_DICT = "@dict"
_TAG_SET = "@set"
_TAG_DATA = "@dataclass"


def freeze(value: Any) -> Any:
    """Convert ``value`` into a hashable, picklable, repr-stable tree.

    Primitives pass through; lists/tuples, dicts, sets and dataclass
    instances become tagged tuples.  Dict and set entries are sorted by
    the ``repr`` of their frozen form so insertion order never leaks
    into the digest.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, (list, tuple)):
        return (_TAG_TUPLE, tuple(freeze(v) for v in value))
    if isinstance(value, dict):
        items = tuple(
            sorted(
                ((freeze(k), freeze(v)) for k, v in value.items()),
                key=repr,
            )
        )
        return (_TAG_DICT, items)
    if isinstance(value, (set, frozenset)):
        return (_TAG_SET, tuple(sorted((freeze(v) for v in value), key=repr)))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        fields = tuple(
            (f.name, freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
        return (_TAG_DATA, f"{cls.__module__}:{cls.__qualname__}", fields)
    raise TypeError(
        f"cannot freeze {value!r} of type {type(value).__name__}: job params "
        "must be primitives, sequences, dicts, sets or dataclasses"
    )


def _resolve_symbol(spec: str) -> Any:
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(f"expected 'package.module:name', got {spec!r}")
    obj = import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


def thaw(value: Any) -> Any:
    """Inverse of :func:`freeze` (sequences come back as tuples)."""
    if isinstance(value, tuple) and value and value[0] in (
        _TAG_TUPLE,
        _TAG_DICT,
        _TAG_SET,
        _TAG_DATA,
    ):
        tag = value[0]
        if tag == _TAG_TUPLE:
            return tuple(thaw(v) for v in value[1])
        if tag == _TAG_DICT:
            return {thaw(k): thaw(v) for k, v in value[1]}
        if tag == _TAG_SET:
            return frozenset(thaw(v) for v in value[1])
        cls = _resolve_symbol(value[1])
        # freeze() only ever emits @dataclass nodes for dataclass
        # instances, so anything else here is a forged tree (e.g. a
        # decoded request body naming an arbitrary callable).
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise ValueError(
                f"refusing to thaw {value[1]!r}: resolved object is not "
                "a dataclass"
            )
        return cls(**{name: thaw(v) for name, v in value[2]})
    return value


@dataclass(frozen=True)
class Job:
    """One independent simulation of a campaign.

    ``params`` holds the *frozen* config tree (see :func:`freeze`);
    construct jobs through :func:`make_job`, which freezes a plain
    config dict for you.
    """

    experiment: str
    key: Hashable
    executor: str  # "package.module:function"
    params: Any

    def __post_init__(self) -> None:
        module_name, sep, attr = self.executor.partition(":")
        if not sep or not module_name or not attr:
            raise ValueError(
                f"executor must be 'package.module:function', "
                f"got {self.executor!r}"
            )
        digest = hashlib.sha256(
            repr((CACHE_SCHEMA, self.executor, self.params)).encode("utf-8")
        ).hexdigest()
        object.__setattr__(self, "_digest", digest)

    @property
    def digest(self) -> str:
        """Content address: schema salt + executor + frozen params."""
        return self._digest

    @property
    def label(self) -> str:
        """Human-readable ``experiment:key`` identifier for progress."""
        key = self.key if isinstance(self.key, str) else repr(self.key)
        return f"{self.experiment}:{key}"

    def __getstate__(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "key": self.key,
            "executor": self.executor,
            "params": self.params,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()


def make_job(
    experiment: str,
    key: Hashable,
    executor: str,
    params: Dict[str, Any],
) -> Job:
    """Freeze ``params`` and build the :class:`Job`."""
    return Job(
        experiment=experiment, key=key, executor=executor, params=freeze(params)
    )


def job_params(job: Job) -> Dict[str, Any]:
    """The job's config back as a plain dict (for its executor)."""
    params = thaw(job.params)
    if not isinstance(params, dict):
        raise TypeError(
            f"job {job.label} params must thaw to a dict, "
            f"got {type(params).__name__}"
        )
    return params


def resolve_executor(spec: str) -> Callable[[Dict[str, Any]], Any]:
    """Import the executor function named by ``spec``."""
    fn = _resolve_symbol(spec)
    if not callable(fn):
        raise TypeError(f"executor {spec!r} is not callable")
    return fn


def execute_job(job: Job) -> Any:
    """Run one job in-process and return its (picklable) result."""
    return resolve_executor(job.executor)(job_params(job))
