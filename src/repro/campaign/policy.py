"""Failure taxonomy and retry policy for campaign execution.

One job attempt can fail five ways; everything downstream (retry,
quarantine, reporting) keys off the attempt's *kind*:

* ``crash``          — the worker process died mid-job (SIGKILL, OOM,
  ``os._exit``); transient: the job itself may be fine.
* ``timeout``        — the job exceeded its wall-clock budget and the
  supervisor killed the worker; transient.
* ``corrupt-result`` — the result payload failed its integrity check on
  the way back (checksum mismatch or undecodable bytes); transient.
* ``unpicklable``    — the worker could not serialize the result at
  all; transient by policy (it costs attempts, then quarantines with
  the serialization traceback, instead of killing the campaign).
* ``exception``      — the job raised.  Classified by exception type:
  deterministic config/programming errors (:data:`PERMANENT_EXCEPTIONS`)
  are *permanent* — retrying a ``ValueError`` replays it — and go
  straight to quarantine; anything else (I/O, resources) is transient.

Backoff is exponential with *seeded* jitter: the delay before retry
``n`` of a digest is a pure function of ``(policy.seed, digest, n)``,
so a rerun of a flaky campaign schedules byte-identical retries — the
chaos suite asserts the schedule, not just "it retried".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

#: Exception type names whose re-raise is certain: retrying burns
#: attempts without new information, so they quarantine immediately.
PERMANENT_EXCEPTIONS = frozenset(
    {
        "TypeError",
        "ValueError",
        "KeyError",
        "AttributeError",
        "ImportError",
        "ModuleNotFoundError",
        "NotImplementedError",
        "AssertionError",
        "RecursionError",
    }
)

#: Attempt kinds that never depend on the exception type.
TRANSIENT_KINDS = frozenset(
    {"crash", "timeout", "corrupt-result", "unpicklable"}
)


def is_permanent(kind: str, exc_type: Optional[str]) -> bool:
    """Whether an attempt failure is certain to recur."""
    if kind in TRANSIENT_KINDS:
        return False
    return exc_type in PERMANENT_EXCEPTIONS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic exponential backoff.

    ``backoff_s(digest, attempt)`` is the delay scheduled *after* a
    failed ``attempt`` (1-based): ``base * factor**(attempt-1)``,
    stretched by up to ``jitter_frac`` using a RNG seeded from
    ``(seed, digest, attempt)`` — reproducible across processes and
    runs, yet decorrelated across digests so a burst of failures does
    not retry in lockstep.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_frac: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff_s(self, digest: str, attempt: int) -> float:
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        if base <= 0.0:
            return 0.0
        rng = random.Random(f"{self.seed}:{digest}:{attempt}")
        return base * (1.0 + self.jitter_frac * rng.random())

    def schedule(self, digest: str) -> List[float]:
        """Every backoff this policy would apply to ``digest`` — the
        delays after attempts ``1 .. max_attempts-1``."""
        return [
            self.backoff_s(digest, attempt)
            for attempt in range(1, self.max_attempts)
        ]


@dataclass
class AttemptRecord:
    """What one failed attempt looked like."""

    attempt: int
    kind: str  #: crash | timeout | corrupt-result | unpicklable | exception
    detail: str
    worker_pid: Optional[int] = None
    #: delay scheduled before the next attempt (None on the final one).
    backoff_s: Optional[float] = None


@dataclass
class JobFailure:
    """A quarantined job: every attempt failed, the campaign moved on."""

    digest: str
    experiment: str
    key: object
    label: str
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: the last traceback any attempt produced ("" for pure crashes).
    traceback: str = ""
    #: permanent classification (vs. transient attempts exhausted).
    permanent: bool = False

    def summary(self) -> str:
        kinds = ", ".join(a.kind for a in self.attempts)
        cls = "permanent" if self.permanent else "transient"
        return (
            f"{self.label}  digest {self.digest[:12]}  "
            f"{len(self.attempts)} attempt(s) [{kinds}] ({cls})"
        )
