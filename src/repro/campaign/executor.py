"""Serial and multi-process campaign execution.

``run_jobs`` takes jobs from any mix of experiments and returns their
results merged *by job key*, never by completion order, so a parallel
campaign is byte-identical to a serial one.  Along the way it:

* coalesces duplicate configs — jobs sharing a digest (e.g. fig3's and
  fig9's 1-vs-11 FIFO uplink run) execute once and fan back out;
* consults the :class:`~repro.campaign.cache.ResultCache` before
  spending any CPU, unless ``force`` invalidates;
* degrades gracefully to plain in-process execution when ``workers=1``
  (no ``multiprocessing`` import, no pickling round-trip);
* reports progress through an optional callback.

Worker processes only ever receive :class:`Job` descriptors (frozen
primitive trees) and return picklable result dataclasses; cache writes
happen in the parent, so no locking is needed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.campaign.cache import ResultCache
from repro.campaign.job import Job, execute_job

#: ``progress(event, job, done, total)`` with ``event`` one of
#: ``"cached"`` / ``"executed"``; ``done``/``total`` count unique digests.
ProgressFn = Callable[[str, Job, int, int], None]


def serial_results(jobs: Iterable[Job]) -> Dict[Hashable, Any]:
    """Execute ``jobs`` in order, in-process, keyed by ``job.key``.

    This is the thin serial path the experiment modules' ``run()``
    wrappers use: no cache, no coalescing, no pool — exactly one fresh
    simulation per listed job, like the pre-campaign monolithic loops.
    """
    return {job.key: execute_job(job) for job in jobs}


@dataclass
class CampaignStats:
    """Where each job's result came from, and what it cost."""

    total: int = 0  #: jobs requested
    unique: int = 0  #: distinct digests among them
    executed: int = 0  #: digests actually simulated this run
    cached: int = 0  #: digests served from the on-disk cache
    coalesced: int = 0  #: jobs that shared another job's digest
    workers: int = 1
    wall_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.total} jobs ({self.unique} unique): "
            f"{self.executed} executed, {self.cached} cache hits, "
            f"{self.coalesced} coalesced; "
            f"{self.workers} worker(s), {self.wall_s:.2f}s wall"
        )


@dataclass
class CampaignOutcome:
    """Results for every requested job plus execution statistics."""

    results: Dict[Job, Any] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)

    def experiment_results(self, experiment: str) -> Dict[Hashable, Any]:
        """``{job.key: result}`` for one experiment, in job order —
        the mapping an experiment's ``reduce()`` consumes."""
        return {
            job.key: value
            for job, value in self.results.items()
            if job.experiment == experiment
        }

    def experiments(self) -> List[str]:
        seen: Dict[str, None] = {}
        for job in self.results:
            seen.setdefault(job.experiment, None)
        return list(seen)


def _execute_entry(entry: Tuple[str, Job]) -> Tuple[str, Any]:
    digest, job = entry
    return digest, execute_job(job)


def resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def run_jobs(
    jobs: Iterable[Job],
    *,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
) -> CampaignOutcome:
    """Execute a campaign and merge results deterministically.

    ``workers=None`` means one worker per CPU.  ``force=True`` skips
    cache lookups (entries are still refreshed with the new results).
    Raises if two jobs share an ``(experiment, key)`` identity — the
    reduce step could not tell their results apart.
    """
    job_list = list(jobs)
    workers = resolve_workers(workers)
    seen_ids: Dict[Tuple[str, Hashable], Job] = {}
    for job in job_list:
        ident = (job.experiment, job.key)
        if ident in seen_ids and seen_ids[ident].digest != job.digest:
            raise ValueError(
                f"conflicting jobs for {job.label}: same experiment/key, "
                "different configs"
            )
        seen_ids.setdefault(ident, job)

    t0 = time.perf_counter()
    by_digest: Dict[str, List[Job]] = {}
    for job in job_list:
        by_digest.setdefault(job.digest, []).append(job)

    stats = CampaignStats(
        total=len(job_list), unique=len(by_digest), workers=workers
    )
    stats.coalesced = stats.total - stats.unique

    resolved: Dict[str, Any] = {}
    done = 0
    if cache is not None and not force:
        for digest, group in by_digest.items():
            hit, value = cache.get(digest)
            if hit:
                resolved[digest] = value
                stats.cached += 1
                done += 1
                if progress is not None:
                    progress("cached", group[0], done, stats.unique)

    pending = [
        (digest, group[0])
        for digest, group in by_digest.items()
        if digest not in resolved
    ]

    def finish(digest: str, value: Any) -> None:
        nonlocal done
        resolved[digest] = value
        stats.executed += 1
        done += 1
        if cache is not None:
            cache.put(digest, value)
        if progress is not None:
            progress("executed", by_digest[digest][0], done, stats.unique)

    if pending and workers > 1:
        import multiprocessing

        # chunksize=1: jobs are coarse (whole simulations), so dynamic
        # dispatch beats batching even at high job counts.  Never fork
        # more workers than there are pending digests (a mostly-warm
        # rerun may have a single stale job).
        with multiprocessing.Pool(
            processes=min(workers, len(pending))
        ) as pool:
            for digest, value in pool.imap_unordered(
                _execute_entry, pending, chunksize=1
            ):
                finish(digest, value)
    else:
        for digest, job in pending:
            finish(digest, execute_job(job))

    stats.wall_s = time.perf_counter() - t0
    results = {job: resolved[job.digest] for job in job_list}
    return CampaignOutcome(results=results, stats=stats)
