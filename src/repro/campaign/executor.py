"""Fault-tolerant campaign execution: serial, supervised-parallel, resumable.

``run_jobs`` takes jobs from any mix of experiments and returns their
results merged *by job key*, never by completion order, so a parallel
campaign is byte-identical to a serial one.  Along the way it:

* coalesces duplicate configs — jobs sharing a digest (e.g. fig3's and
  fig9's 1-vs-11 FIFO uplink run) execute once and fan back out;
* consults the :class:`~repro.campaign.cache.ResultCache` before
  spending any CPU, unless ``force`` invalidates;
* survives failure: worker crashes, hung jobs and corrupted results
  cost *attempts* under a :class:`~repro.campaign.policy.RetryPolicy`
  (bounded retries, seeded exponential backoff), and a job that
  exhausts its attempts is **quarantined** as a structured
  :class:`~repro.campaign.policy.JobFailure` while the rest of the
  campaign completes;
* degrades gracefully: repeated pool-level worker deaths abandon the
  pool and finish the remaining jobs serially in-process, recording
  ``degraded_reason`` in :class:`CampaignStats`;
* checkpoints: every completion lands in the cache *and* the optional
  :class:`~repro.campaign.manifest.RunManifest` immediately, and a
  ``KeyboardInterrupt`` returns a coherent partial
  :class:`CampaignOutcome` (flushed results, ``stats.interrupted``,
  wall clock set) instead of losing the run.

Parallel execution is the supervised worker pool of
:mod:`repro.campaign.pool` — long-lived processes fed one digest at a
time, per-job wall-clock deadlines, checksum-verified result payloads.
Worker processes only ever receive :class:`Job` descriptors (frozen
primitive trees); cache and manifest writes happen in the parent, so no
locking is needed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.campaign.cache import ResultCache
from repro.campaign.faults import FaultPlan
from repro.campaign.job import Job, execute_job
from repro.campaign.manifest import RunManifest
from repro.campaign.policy import (
    AttemptRecord,
    JobFailure,
    RetryPolicy,
    is_permanent,
)

#: ``progress(event, job, done, total)`` with ``event`` one of
#: ``"cached"`` / ``"executed"`` / ``"retried"`` / ``"failed"`` /
#: ``"skipped"``; ``done``/``total`` count unique digests (``retried``
#: does not advance ``done``).
ProgressFn = Callable[[str, Job, int, int], None]


def serial_results(jobs: Iterable[Job]) -> Dict[Hashable, Any]:
    """Execute ``jobs`` in order, in-process, keyed by ``job.key``.

    This is the thin serial path the experiment modules' ``run()``
    wrappers use: no cache, no coalescing, no retries — exactly one
    fresh simulation per listed job, exceptions propagating, like the
    pre-campaign monolithic loops.
    """
    return {job.key: execute_job(job) for job in jobs}


@dataclass
class CampaignStats:
    """Where each job's result came from, and what it cost."""

    total: int = 0  #: jobs requested
    unique: int = 0  #: distinct digests among them
    executed: int = 0  #: digests actually simulated this run
    cached: int = 0  #: digests served from the on-disk cache
    coalesced: int = 0  #: jobs that shared another job's digest
    retried: int = 0  #: attempt failures that were rescheduled
    failed: int = 0  #: digests quarantined (attempts exhausted)
    skipped: int = 0  #: digests skipped as known failures (``--resume``)
    workers: int = 1
    wall_s: float = 0.0
    interrupted: bool = False  #: a SIGINT cut the campaign short
    degraded_reason: Optional[str] = None  #: pool fell back to serial

    def summary(self) -> str:
        text = (
            f"{self.total} jobs ({self.unique} unique): "
            f"{self.executed} executed, {self.cached} cache hits, "
            f"{self.coalesced} coalesced"
        )
        if self.retried:
            text += f", {self.retried} retries"
        if self.failed:
            text += f", {self.failed} quarantined"
        if self.skipped:
            text += f", {self.skipped} skipped"
        text += f"; {self.workers} worker(s), {self.wall_s:.2f}s wall"
        if self.degraded_reason:
            text += f"; degraded: {self.degraded_reason}"
        if self.interrupted:
            text += "; interrupted"
        return text


@dataclass
class CampaignOutcome:
    """Results for every resolved job, quarantined failures, and stats.

    ``results`` holds an entry per requested job whose digest resolved;
    jobs of quarantined digests are absent (their ``JobFailure`` is in
    ``failures`` instead), so a partially-failed campaign still reduces
    every experiment it completed.
    """

    results: Dict[Job, Any] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)
    failures: List[JobFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every requested digest resolved and nothing cut us short."""
        return not self.failures and not self.stats.interrupted

    def experiment_results(self, experiment: str) -> Dict[Hashable, Any]:
        """``{job.key: result}`` for one experiment, in job order —
        the mapping an experiment's ``reduce()`` consumes."""
        return {
            job.key: value
            for job, value in self.results.items()
            if job.experiment == experiment
        }

    def experiments(self) -> List[str]:
        seen: Dict[str, None] = {}
        for job in self.results:
            seen.setdefault(job.experiment, None)
        return list(seen)

    def failed_experiments(self) -> List[str]:
        """Experiments with at least one quarantined job, in failure
        order — their ``reduce()`` would see an incomplete mapping."""
        seen: Dict[str, None] = {}
        for failure in self.failures:
            seen.setdefault(failure.experiment, None)
        return list(seen)


def resolve_workers(workers: Optional[int]) -> int:
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


class _Run:
    """Mutable state shared by the serial and supervised paths."""

    def __init__(
        self,
        by_digest: Dict[str, List[Job]],
        stats: CampaignStats,
        cache: Optional[ResultCache],
        manifest: Optional[RunManifest],
        progress: Optional[ProgressFn],
    ) -> None:
        self.by_digest = by_digest
        self.stats = stats
        self.cache = cache
        self.manifest = manifest
        self.progress = progress
        self.resolved: Dict[str, Any] = {}
        self.failures: List[JobFailure] = []
        self.attempts_used: Dict[str, int] = {}
        self.done = 0

    def emit(self, event: str, digest: str) -> None:
        if self.progress is not None:
            self.progress(
                event, self.by_digest[digest][0], self.done, self.stats.unique
            )

    def hit(self, digest: str, value: Any) -> None:
        self.resolved[digest] = value
        self.stats.cached += 1
        self.done += 1
        self.emit("cached", digest)

    def finish(self, digest: str, value: Any) -> None:
        self.resolved[digest] = value
        self.stats.executed += 1
        self.done += 1
        if self.cache is not None:
            # A ResultStore keeps a queryable index next to the payload;
            # duck-typed so a plain ResultCache still works unchanged.
            put_for_job = getattr(self.cache, "put_for_job", None)
            if put_for_job is not None:
                put_for_job(self.by_digest[digest][0], value)
            else:
                self.cache.put(digest, value)
        if self.manifest is not None:
            self.manifest.record_done(
                digest, self.attempts_used.get(digest, 0) + 1
            )
        self.emit("executed", digest)

    def retried(self, digest: str, record: AttemptRecord) -> None:
        self.stats.retried += 1
        self.attempts_used[digest] = record.attempt
        self.emit("retried", digest)

    def quarantine(self, failure: JobFailure) -> None:
        self.failures.append(failure)
        self.stats.failed += 1
        self.done += 1
        if self.manifest is not None:
            self.manifest.record_failed(failure)
        self.emit("failed", failure.digest)

    def skip_known_failure(self, failure: JobFailure) -> None:
        self.failures.append(failure)
        self.stats.failed += 1
        self.stats.skipped += 1
        self.done += 1
        self.emit("skipped", failure.digest)


def _run_serial(
    run: _Run,
    pending: List[Tuple[str, Job]],
    retry: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> None:
    """In-process execution with the same retry/quarantine semantics.

    No worker boundary means no crash isolation and no wall-clock
    timeouts (killing a hung job requires a process to kill), but
    transient exceptions still retry on the seeded backoff schedule and
    exhausted jobs still quarantine instead of aborting the campaign.
    Fault plans deliberately do not apply in-process
    (:mod:`repro.campaign.faults`).
    """
    import traceback as tb_mod

    for digest, job in pending:
        attempt = 1
        records: List[AttemptRecord] = []
        last_tb = ""
        while True:
            try:
                value = execute_job(job)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                last_tb = tb_mod.format_exc()
                record = AttemptRecord(
                    attempt=attempt,
                    kind="exception",
                    detail=f"{type(exc).__name__}: {exc}",
                    worker_pid=os.getpid(),
                )
                records.append(record)
                permanent = is_permanent("exception", type(exc).__name__)
                if not permanent and attempt < retry.max_attempts:
                    backoff = retry.backoff_s(digest, attempt)
                    record.backoff_s = backoff
                    run.retried(digest, record)
                    if backoff > 0:
                        sleep(backoff)
                    attempt += 1
                    continue
                run.quarantine(
                    JobFailure(
                        digest=digest,
                        experiment=job.experiment,
                        key=job.key,
                        label=job.label,
                        attempts=records,
                        traceback=last_tb,
                        permanent=permanent,
                    )
                )
                break
            else:
                run.finish(digest, value)
                break


def _drain_queue(
    run: _Run,
    pending: List[Tuple[str, Job]],
    queue,
    *,
    retry: RetryPolicy,
    timeout_s: Optional[float],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Drain ``pending`` through a :class:`~repro.campaign.queue.\
WorkQueue` backend, degrading to serial if the backend gives up."""
    degraded_reason, remaining = queue.drain(
        pending,
        retry=retry,
        timeout_s=timeout_s,
        fault_plan=fault_plan,
        on_result=run.finish,
        on_retry=lambda digest, job, record: run.retried(digest, record),
        on_failure=lambda digest, job, failure: run.quarantine(failure),
    )
    if degraded_reason is not None:
        run.stats.degraded_reason = degraded_reason
        _run_serial(run, remaining, retry)


def _run_supervised(
    run: _Run,
    pending: List[Tuple[str, Job]],
    *,
    workers: int,
    retry: RetryPolicy,
    timeout_s: Optional[float],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Supervised pool execution, degrading to serial on pool failure."""
    from repro.campaign.queue import PoolQueue

    _drain_queue(
        run,
        pending,
        PoolQueue(workers=workers),
        retry=retry,
        timeout_s=timeout_s,
        fault_plan=fault_plan,
    )


def run_jobs(
    jobs: Iterable[Job],
    *,
    workers: Optional[int] = 1,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    progress: Optional[ProgressFn] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    manifest: Optional[RunManifest] = None,
    skip_failed: Optional[Set[str]] = None,
    queue=None,
) -> CampaignOutcome:
    """Execute a campaign and merge results deterministically.

    ``workers=None`` means one worker per CPU.  ``force=True`` skips
    cache lookups (entries are still refreshed with the new results).
    ``timeout_s`` bounds each job's wall clock (supervised pool only —
    the in-process path has no one to kill).  ``retry`` defaults to
    three attempts with seeded exponential backoff.  Digests listed in
    ``skip_failed`` (a resumed run's prior quarantine) are reported as
    failures without spending any attempts; ``manifest``, when given,
    is updated after every completion or quarantine so a later run can
    resume.  ``fault_plan`` injects worker failures for the chaos suite
    (default: the ``REPRO_CAMPAIGN_FAULTS`` environment hook).
    ``queue`` overrides the scheduling backend with any
    :class:`~repro.campaign.queue.WorkQueue` (e.g. a
    :class:`~repro.campaign.queue.SpoolQueue` shared with independent
    worker processes); by default ``workers > 1`` drains through the
    supervised pool and ``workers == 1`` runs serially in-process.

    Raises if two jobs share an ``(experiment, key)`` identity — the
    reduce step could not tell their results apart.  A
    ``KeyboardInterrupt`` mid-campaign does *not* raise: completed
    results are already flushed to the cache and the partial
    :class:`CampaignOutcome` comes back with ``stats.interrupted``.
    """
    job_list = list(jobs)
    workers = resolve_workers(workers)
    retry = retry if retry is not None else RetryPolicy()
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    seen_ids: Dict[Tuple[str, Hashable], Job] = {}
    for job in job_list:
        ident = (job.experiment, job.key)
        if ident in seen_ids and seen_ids[ident].digest != job.digest:
            raise ValueError(
                f"conflicting jobs for {job.label}: same experiment/key, "
                "different configs"
            )
        seen_ids.setdefault(ident, job)

    t0 = time.perf_counter()
    by_digest: Dict[str, List[Job]] = {}
    for job in job_list:
        by_digest.setdefault(job.digest, []).append(job)

    stats = CampaignStats(
        total=len(job_list), unique=len(by_digest), workers=workers
    )
    stats.coalesced = stats.total - stats.unique

    run = _Run(by_digest, stats, cache, manifest, progress)
    if cache is not None and not force:
        for digest, group in by_digest.items():
            hit, value = cache.get(digest)
            if hit:
                run.hit(digest, value)

    if skip_failed:
        for digest in by_digest:
            if digest in run.resolved or digest not in skip_failed:
                continue
            prior = (
                manifest.failure_for(digest) if manifest is not None else None
            )
            lead = by_digest[digest][0]
            if prior is None:
                prior = JobFailure(
                    digest=digest,
                    experiment=lead.experiment,
                    key=lead.key,
                    label=lead.label,
                    permanent=True,
                )
            run.skip_known_failure(prior)

    finished = set(run.resolved)
    finished.update(f.digest for f in run.failures)
    pending = [
        (digest, group[0])
        for digest, group in by_digest.items()
        if digest not in finished
    ]

    try:
        if pending and queue is not None:
            _drain_queue(
                run,
                pending,
                queue,
                retry=retry,
                timeout_s=timeout_s,
                fault_plan=fault_plan,
            )
        elif pending and workers > 1:
            _run_supervised(
                run,
                pending,
                workers=min(workers, max(2, len(pending))),
                retry=retry,
                timeout_s=timeout_s,
                fault_plan=fault_plan,
            )
        else:
            _run_serial(run, pending, retry)
    except KeyboardInterrupt:
        stats.interrupted = True

    stats.wall_s = time.perf_counter() - t0
    results = {
        job: run.resolved[job.digest]
        for job in job_list
        if job.digest in run.resolved
    }
    return CampaignOutcome(
        results=results, stats=stats, failures=run.failures
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def quarantine_report(outcome: CampaignOutcome, *, verbose: bool = True) -> str:
    """Human-readable quarantine section for the CLIs."""
    if not outcome.failures:
        return ""
    lines = [f"QUARANTINE ({len(outcome.failures)} job(s)):"]
    for failure in outcome.failures:
        lines.append(f"  {failure.summary()}")
        for record in failure.attempts:
            backoff = (
                f", retried after {record.backoff_s:.3f}s"
                if record.backoff_s is not None
                else ""
            )
            lines.append(
                f"    attempt {record.attempt}: {record.kind} — "
                f"{record.detail}"
                f" (pid {record.worker_pid}){backoff}"
            )
        if verbose and failure.traceback:
            lines.append("    last traceback:")
            for tb_line in failure.traceback.rstrip().splitlines():
                lines.append(f"      {tb_line}")
    return "\n".join(lines)
