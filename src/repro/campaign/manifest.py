"""Per-campaign run manifests: the checkpoint behind ``--resume``.

The :class:`~repro.campaign.cache.ResultCache` already makes re-runs
incremental for *successful* jobs; the manifest adds the other half of
the checkpoint: which digests this campaign has **finished with** —
completed or quarantined — so a resumed run can (a) prove it executed
only the remainder and (b) report prior quarantined failures without
burning their retry budget again.

A manifest is one small JSON file, keyed by the *campaign digest* (a
hash over the sorted unique job digests, so "the same sweep" resolves
to the same manifest regardless of experiment order).  It is rewritten
atomically after every job completion, which makes it safe to consult
after a mid-sweep ``kill -9`` of the campaign process itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.campaign.policy import AttemptRecord, JobFailure

MANIFEST_VERSION = 1


def campaign_digest(digests: Iterable[str]) -> str:
    """Stable identity of a campaign: hash of its sorted unique digests."""
    joined = ",".join(sorted(set(digests)))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _failure_to_dict(failure: JobFailure) -> Dict:
    return {
        "digest": failure.digest,
        "experiment": failure.experiment,
        "key": repr(failure.key),
        "label": failure.label,
        "permanent": failure.permanent,
        "traceback": failure.traceback,
        "attempts": [dataclasses.asdict(a) for a in failure.attempts],
    }


def _failure_from_dict(data: Dict) -> JobFailure:
    return JobFailure(
        digest=data["digest"],
        experiment=data["experiment"],
        key=data["key"],
        label=data["label"],
        permanent=bool(data.get("permanent", False)),
        traceback=data.get("traceback", ""),
        attempts=[
            AttemptRecord(**attempt) for attempt in data.get("attempts", [])
        ],
    )


class RunManifest:
    """Completed/failed digests of one campaign, flushed per update."""

    def __init__(self, path, campaign: str) -> None:
        self.path = Path(path)
        self.campaign = campaign
        self.completed: Dict[str, int] = {}  #: digest -> attempts used
        self.failed: Dict[str, Dict] = {}  #: digest -> failure record

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path, campaign: str) -> "RunManifest":
        """Read an existing manifest; mismatched/corrupt files start
        fresh (they describe some *other* campaign or nothing at all)."""
        manifest = cls(path, campaign)
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError):
            return manifest
        if (
            not isinstance(data, dict)
            or data.get("version") != MANIFEST_VERSION
            or data.get("campaign") != campaign
        ):
            return manifest
        completed = data.get("completed", {})
        failed = data.get("failed", {})
        if isinstance(completed, dict):
            manifest.completed = {
                str(d): int(n) for d, n in completed.items()
            }
        if isinstance(failed, dict):
            manifest.failed = {str(d): dict(f) for d, f in failed.items()}
        return manifest

    def save(self) -> None:
        """Atomic rewrite (tmp + rename), same discipline as the cache."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "version": MANIFEST_VERSION,
                "campaign": self.campaign,
                "completed": self.completed,
                "failed": self.failed,
            },
            indent=0,
            sort_keys=True,
        )
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    def record_done(self, digest: str, attempts: int = 1) -> None:
        self.completed[digest] = attempts
        self.failed.pop(digest, None)
        self.save()

    def record_failed(self, failure: JobFailure) -> None:
        self.failed[failure.digest] = _failure_to_dict(failure)
        self.completed.pop(failure.digest, None)
        self.save()

    def prior_failures(self) -> List[JobFailure]:
        return [_failure_from_dict(data) for data in self.failed.values()]

    def failure_for(self, digest: str) -> Optional[JobFailure]:
        data = self.failed.get(digest)
        return None if data is None else _failure_from_dict(data)
