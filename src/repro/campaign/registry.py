"""Wires the experiment modules' ``jobs()``/``reduce()`` pairs into the
campaign CLI and the perf campaign benchmark.

Imported lazily (this module pulls in every experiment) — the rest of
``repro.campaign`` stays importable from ``repro.experiments.common``
without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.campaign.job import Job


@dataclass(frozen=True)
class CampaignExperiment:
    """One selectable experiment: job factory + reducer + renderer."""

    name: str
    jobs: Callable[..., List[Job]]
    reduce: Callable[[Mapping[Hashable, Any]], Any]
    render: Callable[[Any], str]
    #: keyword the job factory uses for its simulated duration
    #: (``seconds`` for most, ``duration_s`` for fig5, ``max_seconds``
    #: for table1) — how the CLI's ``--seconds`` override is applied.
    duration_kw: str = "seconds"

    def build_jobs(
        self, *, seed: int = 1, seconds: Optional[float] = None
    ) -> List[Job]:
        kwargs: Dict[str, Any] = {"seed": seed}
        if seconds is not None:
            kwargs[self.duration_kw] = seconds
        return self.jobs(**kwargs)


#: The paper's figures and tables, in presentation order — the default
#: campaign selection and the suite the perf benchmark times.
FIGURE_SUITE = (
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig8", "fig9",
    "table1", "table2", "table3", "table4",
)

_DURATION_KW = {"fig5": "duration_s", "table1": "max_seconds"}


def campaign_registry() -> Dict[str, CampaignExperiment]:
    """Name -> :class:`CampaignExperiment` for every figure, table and
    ablation (ablations are prefixed ``abl-``)."""
    from repro.experiments import REGISTRY, ablations

    registry: Dict[str, CampaignExperiment] = {}
    for name, module in REGISTRY.items():
        registry[name] = CampaignExperiment(
            name=name,
            jobs=module.jobs,
            reduce=module.reduce,
            render=module.render,
            duration_kw=_DURATION_KW.get(name, "seconds"),
        )
    for name, (jobs_fn, reduce_fn, render_fn) in ablations.CAMPAIGNS.items():
        registry[name] = CampaignExperiment(
            name=name, jobs=jobs_fn, reduce=reduce_fn, render=render_fn
        )
    return registry
