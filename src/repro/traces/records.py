"""The trace record format shared by capture, synthesis and analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class TraceRecord:
    """One sniffed data frame.

    ``station`` is the client the frame belongs to (uplink source or
    downlink destination) — the unit of the paper's per-user analyses.
    ``rate_mbps`` may be 0.0 when unknown (the Dartmouth trace lacks
    rates; the paper notes this and analyzes it by throughput only).
    """

    time_us: float
    station: str
    size_bytes: int
    rate_mbps: float
    direction: str  # "up" | "down"
    retry: bool = False


def total_bytes(records: Iterable[TraceRecord]) -> int:
    return sum(r.size_bytes for r in records)


def duration_us(records: List[TraceRecord]) -> float:
    if not records:
        return 0.0
    return records[-1].time_us - records[0].time_us
