"""Capture live simulation traffic as trace records.

Attach a :class:`ChannelSniffer` to a channel and it records every
*successfully delivered* data frame (a sniffer laptop, like the paper's,
logs frames it can decode; corrupted deliveries are counted separately).
"""

from __future__ import annotations

from typing import List, Optional

from repro.channel.medium import Channel
from repro.traces.records import TraceRecord


class ChannelSniffer:
    """Promiscuous capture of data frames on a channel."""

    def __init__(self, channel: Channel, ap_address: str = "ap") -> None:
        self.ap_address = ap_address
        self.records: List[TraceRecord] = []
        self.corrupted_frames = 0
        channel.add_sniffer(self._on_frame)

    def _on_frame(
        self, frame, dest_corrupted: bool, collided: bool, start: float,
        end: float,
    ) -> None:
        if frame.is_ack:
            return
        if collided:
            # Nobody, including the sniffer, decodes a collision.
            self.corrupted_frames += 1
            return
        # A frame lost only at its receiver (local fading) is still
        # decodable by a sniffer near the AP; retries of it show up as
        # separate records, exactly as in a real capture.
        if frame.src == self.ap_address:
            station: Optional[str] = frame.dst
            direction = "down"
        else:
            station = frame.src
            direction = "up"
        self.records.append(
            TraceRecord(
                time_us=end,
                station=station,
                size_bytes=frame.size_bytes,
                rate_mbps=frame.rate_mbps,
                direction=direction,
                retry=frame.attempt > 1,
            )
        )
