"""Synthetic trace generators calibrated to the paper's observations.

The original captures (MIT Iris workshop sessions, Dartmouth
Whittemore) are not redistributable.  These generators produce traces
whose *published summary statistics* match the paper:

* workshop sessions — the byte-per-rate mixes read off Figure 1 (rate
  diversity exists even in one room: WS-2 carries >30 % of bytes below
  11 Mbps);
* the dorm day — a busy AP where the heaviest user carries the
  majority of bytes on average yet almost never saturates a busy
  second alone (Figure 5), with diurnal load and heavy-tailed flows.

The analyzers in :mod:`repro.traces.analyze` are format-agnostic, so
experiments run identically over these and over sniffer output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.traces.records import TraceRecord

US_PER_SECOND = 1_000_000.0

#: Byte-per-rate mixes (fraction of bytes at 1/2/5.5/11 Mbps) matching
#: the paper's Figure 1 bars.
PAPER_WORKSHOP_MIXES: Dict[str, Dict[float, float]] = {
    "WS-1": {1.0: 0.07, 2.0: 0.05, 5.5: 0.05, 11.0: 0.83},
    "WS-2": {1.0: 0.12, 2.0: 0.08, 5.5: 0.12, 11.0: 0.68},
    "WS-3": {1.0: 0.09, 2.0: 0.06, 5.5: 0.10, 11.0: 0.75},
    "EXP-1": {1.0: 0.55, 2.0: 0.15, 5.5: 0.10, 11.0: 0.20},
}


@dataclass
class WorkshopTraceConfig:
    """A sniffed-session generator configuration."""

    session: str = "WS-2"
    duration_s: float = 90.0 * 60.0
    n_users: int = 25
    total_bytes: int = 200_000_000
    mean_frame_bytes: int = 1200
    rate_mix: Dict[float, float] = field(default_factory=dict)

    def mix(self) -> Dict[float, float]:
        if self.rate_mix:
            return self.rate_mix
        try:
            return PAPER_WORKSHOP_MIXES[self.session]
        except KeyError:
            raise ValueError(
                f"unknown session {self.session!r}; give rate_mix explicitly"
            ) from None


def generate_workshop_trace(
    config: WorkshopTraceConfig, seed: int = 0
) -> List[TraceRecord]:
    """Generate a workshop-session trace matching the configured mix.

    Users are assigned home rates so that the per-rate byte totals hit
    the target mix; frame timestamps are uniform over the session (the
    workshop network was over-provisioned, so no congestion structure
    is needed — Figure 1 is purely about rate diversity).
    """
    mix = config.mix()
    if abs(sum(mix.values()) - 1.0) > 1e-6:
        raise ValueError("rate mix must sum to 1")
    rng = random.Random(seed)
    duration_us = config.duration_s * US_PER_SECOND

    # Spread users over rate classes proportionally to the byte mix
    # (at least one user per class with nonzero share).
    users_per_rate: Dict[float, int] = {}
    remaining_users = config.n_users
    rates = sorted(mix)
    for i, rate in enumerate(rates):
        if i == len(rates) - 1:
            users_per_rate[rate] = max(1, remaining_users)
        else:
            count = max(1, round(mix[rate] * config.n_users))
            count = min(count, remaining_users - (len(rates) - 1 - i))
            users_per_rate[rate] = count
            remaining_users -= count

    records: List[TraceRecord] = []
    user_id = 0
    for rate in rates:
        class_bytes = mix[rate] * config.total_bytes
        class_users = users_per_rate[rate]
        per_user = class_bytes / class_users
        for _ in range(class_users):
            user = f"user{user_id}"
            user_id += 1
            emitted = 0.0
            while emitted < per_user:
                size = max(
                    80,
                    min(1500, int(rng.expovariate(1.0 / config.mean_frame_bytes))),
                )
                records.append(
                    TraceRecord(
                        time_us=rng.uniform(0.0, duration_us),
                        station=user,
                        size_bytes=size,
                        rate_mbps=rate,
                        direction="down" if rng.random() < 0.7 else "up",
                    )
                )
                emitted += size
    records.sort(key=lambda r: r.time_us)
    return records


@dataclass
class DormTraceConfig:
    """A campus-residence day at one busy AP."""

    duration_s: float = 24.0 * 3600.0
    n_users: int = 30
    #: probability per second that a background user is active during
    #: the evening peak (scaled down off-peak).
    background_activity: float = 0.015
    #: heavy user's long sessions per day.
    heavy_sessions: int = 16
    heavy_session_mean_s: float = 600.0
    #: heavy user's throughput while active (Mbps), near but below TCP
    #: saturation — the paper's observation that the heaviest user alone
    #: rarely exceeds the busy threshold.
    heavy_rate_mbps: float = 3.6
    background_rate_mbps: float = 0.9
    #: cap on any single background user's per-second rate.
    background_cap_mbps: float = 3.8
    #: rare solo saturation bursts (the paper's Figure 5 does show a few
    #: busy seconds carried ~100% by one user).
    spike_probability: float = 0.003
    frame_bytes: int = 1400


def _diurnal_weight(hour: float) -> float:
    """Residence-hall load: quiet at 6am, peak late evening."""
    if hour < 7.0:
        return 0.15
    if hour < 12.0:
        return 0.5
    if hour < 18.0:
        return 0.8
    return 1.0


def generate_dorm_trace(config: DormTraceConfig, seed: int = 0) -> List[TraceRecord]:
    """Generate a Whittemore-like day of per-second traffic.

    One designated heavy user carries the majority of bytes via long
    high-rate sessions; background users overlap with Poisson activity
    and Pareto-ish per-second volumes.  PHY rates are unknown (0.0),
    matching the Dartmouth capture.
    """
    rng = random.Random(seed)
    seconds = int(config.duration_s)
    per_second: List[Dict[str, int]] = [dict() for _ in range(seconds)]

    # Heavy user sessions, biased toward the evening.
    for _ in range(config.heavy_sessions):
        while True:
            start = rng.randrange(seconds)
            hour = (start / 3600.0) % 24.0
            if rng.random() < _diurnal_weight(hour):
                break
        length = max(30, int(rng.expovariate(1.0 / config.heavy_session_mean_s)))
        for t in range(start, min(seconds, start + length)):
            if "heavy" in per_second[t]:
                continue  # sessions never stack (one laptop, one link)
            jitter = rng.uniform(0.75, 1.06)
            nbytes = int(config.heavy_rate_mbps * jitter * US_PER_SECOND / 8.0)
            per_second[t]["heavy"] = nbytes

    # Background users.
    for uid in range(1, config.n_users):
        user = f"user{uid}"
        for t in range(seconds):
            hour = (t / 3600.0) % 24.0
            p = config.background_activity * _diurnal_weight(hour)
            if rng.random() < p:
                # Pareto-ish volume: mostly light, occasionally heavy.
                scale = rng.paretovariate(1.6)
                mbps = min(
                    config.background_rate_mbps * scale,
                    config.background_cap_mbps,
                )
                if rng.random() < config.spike_probability:
                    mbps = rng.uniform(4.2, 5.0)
                nbytes = int(mbps * US_PER_SECOND / 8.0)
                per_second[t][user] = per_second[t].get(user, 0) + nbytes

    # Flatten into frame records (a handful of records per user-second
    # is enough for interval analyses).
    records: List[TraceRecord] = []
    for t, volumes in enumerate(per_second):
        for user, nbytes in volumes.items():
            frames = max(1, nbytes // (config.frame_bytes * 40))
            chunk = nbytes // frames
            for k in range(frames):
                records.append(
                    TraceRecord(
                        time_us=(t + (k + 0.5) / frames) * US_PER_SECOND,
                        station=user,
                        size_bytes=chunk,
                        rate_mbps=0.0,
                        direction="down" if rng.random() < 0.8 else "up",
                    )
                )
    records.sort(key=lambda r: r.time_us)
    return records
