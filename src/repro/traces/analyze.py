"""The paper's trace analyses (Section 3).

* Figure 1: fraction of data bytes carried at each PHY rate;
* Figure 5: for every "busy" 1-second interval (total throughput above
  a threshold, the paper uses 4 Mbps ~ 80 % of TCP saturation), the
  share of bytes carried by the heaviest user of that interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.traces.records import TraceRecord

US_PER_SECOND = 1_000_000.0


def bytes_by_rate(records: Iterable[TraceRecord]) -> Dict[float, int]:
    """Total data bytes carried at each PHY rate."""
    out: Dict[float, int] = {}
    for r in records:
        out[r.rate_mbps] = out.get(r.rate_mbps, 0) + r.size_bytes
    return out


def rate_fractions(records: Iterable[TraceRecord]) -> Dict[float, float]:
    """Figure 1's statistic: fraction of bytes per rate."""
    totals = bytes_by_rate(records)
    grand = sum(totals.values())
    if grand == 0:
        return {}
    return {rate: b / grand for rate, b in sorted(totals.items())}


@dataclass(frozen=True)
class BusyInterval:
    """One interval whose total throughput exceeded the busy threshold."""

    index: int
    start_us: float
    total_bytes: int
    per_station_bytes: Dict[str, int]

    @property
    def throughput_mbps(self) -> float:
        return self.total_bytes * 8.0 / US_PER_SECOND

    @property
    def heaviest_station(self) -> str:
        return max(self.per_station_bytes, key=self.per_station_bytes.get)

    @property
    def heaviest_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.per_station_bytes[self.heaviest_station] / self.total_bytes

    @property
    def active_stations(self) -> int:
        return sum(1 for b in self.per_station_bytes.values() if b > 0)


def busy_intervals(
    records: Sequence[TraceRecord],
    *,
    width_us: float = US_PER_SECOND,
    threshold_mbps: float = 4.0,
) -> List[BusyInterval]:
    """Find intervals whose total data throughput exceeds the threshold.

    The paper conservatively defines busy 1-second intervals as those
    with total AP throughput above 4 Mbps (80 % of the commonly observed
    11 Mbps TCP saturation throughput).
    """
    if width_us <= 0:
        raise ValueError("interval width must be positive")
    buckets: Dict[int, Dict[str, int]] = {}
    for r in records:
        idx = int(r.time_us // width_us)
        per_station = buckets.setdefault(idx, {})
        per_station[r.station] = per_station.get(r.station, 0) + r.size_bytes

    threshold_bytes = threshold_mbps * width_us / 8.0
    result: List[BusyInterval] = []
    for idx in sorted(buckets):
        per_station = buckets[idx]
        total = sum(per_station.values())
        if total >= threshold_bytes:
            result.append(
                BusyInterval(
                    index=idx,
                    start_us=idx * width_us,
                    total_bytes=total,
                    per_station_bytes=dict(per_station),
                )
            )
    return result


def heaviest_user_fractions(
    records: Sequence[TraceRecord],
    *,
    width_us: float = US_PER_SECOND,
    threshold_mbps: float = 4.0,
) -> List[float]:
    """Figure 5's series: heaviest user's byte share per busy interval."""
    return [
        interval.heaviest_fraction
        for interval in busy_intervals(
            records, width_us=width_us, threshold_mbps=threshold_mbps
        )
    ]
