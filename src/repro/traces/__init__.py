"""Wireless trace records, capture, synthesis and analysis.

The paper's Section 3 evidence comes from (i) sniffed traces of three
MIT workshop sessions, (ii) a controlled office experiment (EXP-1) and
(iii) the Dartmouth Whittemore campus trace.  None of those captures
are redistributable, so this package provides:

* the shared :class:`TraceRecord` format and analyzers implementing the
  paper's statistics (bytes-per-rate fractions, busy 1-second
  intervals, heaviest-user share);
* an in-simulator sniffer producing the same records from live runs
  (used for the EXP-1 reproduction);
* synthetic generators calibrated to the published summary statistics
  for the workshop sessions and the dorm day.
"""

from repro.traces.records import TraceRecord, total_bytes, duration_us
from repro.traces.sniffer import ChannelSniffer
from repro.traces.analyze import (
    bytes_by_rate,
    rate_fractions,
    busy_intervals,
    heaviest_user_fractions,
    BusyInterval,
)
from repro.traces.synthetic import (
    WorkshopTraceConfig,
    generate_workshop_trace,
    DormTraceConfig,
    generate_dorm_trace,
    PAPER_WORKSHOP_MIXES,
)

__all__ = [
    "TraceRecord",
    "total_bytes",
    "duration_us",
    "ChannelSniffer",
    "bytes_by_rate",
    "rate_fractions",
    "busy_intervals",
    "heaviest_user_fractions",
    "BusyInterval",
    "WorkshopTraceConfig",
    "generate_workshop_trace",
    "DormTraceConfig",
    "generate_dorm_trace",
    "PAPER_WORKSHOP_MIXES",
]
