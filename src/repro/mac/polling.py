"""A PCF-style polling MAC (point coordination).

The paper (Section 4.1): "if the underlying MAC protocol employs a
polling mechanism (such as 802.11's PCF), no explicit communication is
necessary since TBR can dictate which node gets polled."  This module
provides that substrate:

* a :class:`PollingCoordinator` at the AP owns the medium.  After each
  exchange it waits PIFS (= SIFS + one slot, beating any DCF
  contender) and either transmits one downlink packet from its
  scheduler or polls a station;
* a :class:`PolledStation` never contends.  When polled it answers
  after SIFS with one data frame from its queue (or a CF-NULL when
  empty); it ACKs downlink data like any 802.11 receiver;
* the *poll policy* decides who is polled next.
  :class:`RoundRobinPollPolicy` gives DCF-like equal opportunities;
  :class:`TokenPollPolicy` consults a TBR scheduler's buckets and polls
  only token-positive stations — time-based fairness for uplink UDP
  with completely unmodified clients.

The coordinator reuses the same :class:`repro.queueing.ApScheduler`
interface (including TBR) for downlink packets and reports uplink
exchanges through ``on_uplink_complete`` exactly like the DCF AP.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.channel.medium import Channel
from repro.mac.frames import BROADCAST, Frame, FrameType
from repro.phy.phy import (
    ACK_BYTES,
    PhyParams,
    ack_airtime_us,
    ack_rate_for,
    frame_airtime_us,
)
from repro.queueing.base import ApScheduler
from repro.sim import EventCategory, EventPriority, Simulator

#: CF-POLL frame size (MAC header + FCS, no payload).
POLL_BYTES = 20
#: CF-NULL response size.
CF_NULL_BYTES = 14


class RoundRobinPollPolicy:
    """Poll every registered station in turn (opportunity fairness)."""

    def __init__(self) -> None:
        self.stations: List[str] = []
        self._index = 0

    def register(self, station: str) -> None:
        if station not in self.stations:
            self.stations.append(station)

    def next_station(self) -> Optional[str]:
        if not self.stations:
            return None
        station = self.stations[self._index % len(self.stations)]
        self._index += 1
        return station


class TokenPollPolicy:
    """Poll token-positive stations round-robin (TBR-driven PCF).

    Falls back to plain round robin when every station is starved and
    ``work_conserving`` is set, mirroring TBR's dequeue fallback.
    """

    def __init__(self, tbr, *, work_conserving: bool = False) -> None:
        self.tbr = tbr
        self.work_conserving = work_conserving
        self.stations: List[str] = []
        self._index = 0

    def register(self, station: str) -> None:
        if station not in self.stations:
            self.stations.append(station)
        self.tbr.associate(station)

    def next_station(self) -> Optional[str]:
        n = len(self.stations)
        if n == 0:
            return None
        for offset in range(n):
            idx = (self._index + offset) % n
            station = self.stations[idx]
            if not self.tbr.station_starved(station):
                self._index = (idx + 1) % n
                return station
        if self.work_conserving:
            station = self.stations[self._index % n]
            self._index += 1
            return station
        return None


class PolledStation:
    """A station that transmits only in response to CF-POLLs."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        address: str,
        phy: PhyParams,
        *,
        coordinator_address: str = "ap",
        rate_mbps: float = 11.0,
        queue_capacity: int = 100,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.address = address
        self.phy = phy
        self.coordinator_address = coordinator_address
        self.rate_mbps = rate_mbps
        self.queue: List = []
        self.queue_capacity = queue_capacity
        self.dropped = 0
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        self.polls_received = 0
        self.null_responses = 0
        self.tx_frames = 0
        self._rx_seen = {}
        channel.attach(self)

    # ------------------------------------------------------------------
    def enqueue(self, packet) -> bool:
        if len(self.queue) >= self.queue_capacity:
            self.dropped += 1
            return False
        self.queue.append(packet)
        return True

    def send(self, packet) -> bool:
        """Transport-facing alias matching :class:`repro.node.Station`."""
        packet.mac_dst = self.coordinator_address
        return self.enqueue(packet)

    # ------------------------------------------------------------------
    # channel listener interface
    # ------------------------------------------------------------------
    def on_busy(self, busy_start: float) -> None:
        pass  # polled stations never contend, so carrier is irrelevant

    def on_idle(self, idle_start: float) -> None:
        pass

    def on_frame_end(self, frame: Frame, corrupted: bool) -> None:
        if corrupted or frame.dst != self.address:
            return
        if frame.ftype is FrameType.POLL:
            self.polls_received += 1
            self.sim.schedule(
                self.phy.sifs_us, self._respond,
                priority=EventPriority.TX_START, category=EventCategory.MAC,
            )
        elif frame.is_data:
            self._ack_data(frame)
            last = self._rx_seen.get(frame.src)
            if last != frame.seq:
                self._rx_seen[frame.src] = frame.seq
                if self.rx_handler is not None:
                    self.rx_handler(frame)

    # ------------------------------------------------------------------
    def _respond(self) -> None:
        if self.queue:
            packet = self.queue.pop(0)
            frame = Frame(
                FrameType.DATA,
                self.address,
                self.coordinator_address,
                packet.size_bytes,
                self.rate_mbps,
                packet=packet,
            )
            duration = frame_airtime_us(self.phy, packet.size_bytes, self.rate_mbps)
        else:
            self.null_responses += 1
            frame = Frame(
                FrameType.CF_NULL,
                self.address,
                self.coordinator_address,
                CF_NULL_BYTES,
                ack_rate_for(self.phy, self.rate_mbps),
            )
            duration = ack_airtime_us(self.phy, frame.rate_mbps)
        self.tx_frames += 1
        self.channel.transmit(frame, duration)

    def _ack_data(self, data_frame: Frame) -> None:
        ack = Frame(
            FrameType.ACK,
            self.address,
            data_frame.src,
            ACK_BYTES,
            ack_rate_for(self.phy, data_frame.rate_mbps),
        )
        ack.acked_seq = data_frame.seq
        self.sim.schedule(
            self.phy.sifs_us,
            lambda: self.channel.transmit(
                ack, ack_airtime_us(self.phy, ack.rate_mbps)
            ),
            priority=EventPriority.TX_START,
            category=EventCategory.MAC,
        )


class PollingCoordinator:
    """The point coordinator: PIFS-paced downlink + polling loop."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        scheduler: ApScheduler,
        phy: PhyParams,
        poll_policy,
        *,
        address: str = "ap",
        downlink_rate: Optional[Callable[[str], float]] = None,
        default_rate_mbps: float = 11.0,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.scheduler = scheduler
        self.phy = phy
        self.policy = poll_policy
        self.address = address
        self._downlink_rate = downlink_rate
        self.default_rate_mbps = default_rate_mbps
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        #: observers called (station, est_airtime_us, frame) per uplink.
        self.uplink_observers: List[Callable] = []
        self.polls_sent = 0
        self.downlink_sent = 0
        self.idle_cycles = 0
        self._pending_downlink: Optional[Frame] = None
        self._awaiting: Optional[str] = None  # "ack" | "response"
        self._timeout_event = None
        self._cycle_event = None
        self._last_poll_station: Optional[str] = None
        self._poll_overhead_us = 0.0
        # A "turn" alternates downlink service and polling so neither
        # starves the other.
        self._poll_turn = False
        channel.attach(self)
        scheduler.bind(self)
        self._schedule_cycle(self.pifs_us)

    # ------------------------------------------------------------------
    @property
    def pifs_us(self) -> float:
        return self.phy.sifs_us + self.phy.slot_us

    def rate_for(self, station: str) -> float:
        if self._downlink_rate is not None:
            return self._downlink_rate(station)
        return self.default_rate_mbps

    def notify_pending(self) -> None:
        """TxScheduler wake-up hook (parity with DcfMac)."""
        if self._cycle_event is None and self._awaiting is None:
            self._schedule_cycle(self.pifs_us)

    # ------------------------------------------------------------------
    # the coordination loop
    # ------------------------------------------------------------------
    def _schedule_cycle(self, delay: float) -> None:
        if self._cycle_event is not None:
            self._cycle_event.cancel()
        self._cycle_event = self.sim.schedule(
            delay, self._cycle,
            priority=EventPriority.TX_START, category=EventCategory.MAC,
        )

    def _cycle(self) -> None:
        self._cycle_event = None
        if self._awaiting is not None:
            return  # an exchange is in progress; its end resumes us
        if self.channel.busy:
            self._schedule_cycle(self.pifs_us)
            return
        first = "poll" if self._poll_turn else "down"
        self._poll_turn = not self._poll_turn
        for action in (first, "poll" if first == "down" else "down"):
            if action == "down" and self._try_downlink():
                return
            if action == "poll" and self._try_poll():
                return
        # Nothing to do: idle one PIFS and look again.
        self.idle_cycles += 1
        self._schedule_cycle(self.pifs_us)

    def _try_downlink(self) -> bool:
        packet = self.scheduler.dequeue()
        if packet is None:
            return False
        rate = self.rate_for(packet.station)
        frame = Frame(
            FrameType.DATA, self.address, packet.station,
            packet.size_bytes, rate, packet=packet,
        )
        self.downlink_sent += 1
        duration = frame_airtime_us(self.phy, packet.size_bytes, rate)
        self._pending_downlink = frame
        self._awaiting = "ack"
        self.channel.transmit(frame, duration)
        self._arm_timeout(
            duration + self.phy.sifs_us + self.phy.slot_us
            + ack_airtime_us(self.phy, min(self.phy.basic_rates))
        )
        return True

    def _try_poll(self) -> bool:
        station = self.policy.next_station()
        if station is None:
            return False
        poll_rate = min(self.phy.basic_rates)
        frame = Frame(FrameType.POLL, self.address, station, POLL_BYTES, poll_rate)
        self.polls_sent += 1
        self._last_poll_station = station
        duration = frame_airtime_us(
            self.phy, POLL_BYTES, poll_rate, include_llc=False
        )
        self._poll_overhead_us = duration + self.phy.sifs_us
        self._awaiting = "response"
        self.channel.transmit(frame, duration)
        # Worst case response: a max-size frame at the lowest rate; the
        # timeout only needs to catch *absence* of a response, which we
        # detect one slot after the response would have started.
        self._arm_timeout(duration + self.phy.sifs_us + self.phy.slot_us + 1.0)
        return True

    def _arm_timeout(self, delay: float) -> None:
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        self._timeout_event = self.sim.schedule(
            delay, self._on_timeout,
            priority=EventPriority.HIGH, category=EventCategory.MAC,
        )

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if self._awaiting is None:
            return
        if self.channel.busy:
            # A response is in the air; its frame-end will resume us.
            return
        if self._awaiting == "ack" and self._pending_downlink is not None:
            # Downlink data unacked: report the loss and move on (PCF
            # retries are left to upper layers in this model).
            frame = self._pending_downlink
            self._complete_downlink(frame, success=False)
        self._awaiting = None
        self._pending_downlink = None
        self._schedule_cycle(self.pifs_us)

    # ------------------------------------------------------------------
    # channel listener interface
    # ------------------------------------------------------------------
    def on_busy(self, busy_start: float) -> None:
        pass

    def on_idle(self, idle_start: float) -> None:
        pass

    def on_frame_end(self, frame: Frame, corrupted: bool) -> None:
        if frame.dst != self.address:
            return
        if corrupted:
            # Could not decode a frame addressed to us.  If we were
            # waiting on it, give up on this exchange and move on (the
            # pre-armed timeout may already have fired while the frame
            # was in the air, so resume explicitly).
            if self._awaiting is not None:
                if self._awaiting == "ack" and self._pending_downlink is not None:
                    self._complete_downlink(
                        self._pending_downlink, success=False
                    )
                self._awaiting = None
                self._pending_downlink = None
                if self._timeout_event is not None:
                    self._timeout_event.cancel()
                    self._timeout_event = None
                self._schedule_cycle(self.pifs_us)
            return
        if self._awaiting == "ack" and frame.is_ack:
            if self._timeout_event is not None:
                self._timeout_event.cancel()
                self._timeout_event = None
            pending = self._pending_downlink
            self._pending_downlink = None
            self._awaiting = None
            if pending is not None:
                ack_dur = ack_airtime_us(self.phy, frame.rate_mbps)
                self._complete_downlink(
                    pending, success=True, ack_airtime=ack_dur
                )
            self._schedule_cycle(self.pifs_us)
            return
        if self._awaiting == "response" and frame.ftype in (
            FrameType.DATA, FrameType.CF_NULL,
        ):
            if self._timeout_event is not None:
                self._timeout_event.cancel()
                self._timeout_event = None
            self._awaiting = None
            if frame.is_data:
                self._complete_uplink(frame)
                # The station expects a MAC ACK.
                self._send_ack(frame)
                return  # cycle resumes after the ACK's frame end (we
                # schedule it below in _send_ack's completion)
            self._schedule_cycle(self.pifs_us)

    # ------------------------------------------------------------------
    def _send_ack(self, data_frame: Frame) -> None:
        ack = Frame(
            FrameType.ACK, self.address, data_frame.src, ACK_BYTES,
            ack_rate_for(self.phy, data_frame.rate_mbps),
        )
        ack.acked_seq = data_frame.seq
        duration = ack_airtime_us(self.phy, ack.rate_mbps)

        def transmit_and_resume():
            self.channel.transmit(ack, duration)
            self._schedule_cycle(duration + self.pifs_us)

        self.sim.schedule(
            self.phy.sifs_us, transmit_and_resume,
            priority=EventPriority.TX_START, category=EventCategory.MAC,
        )

    def _complete_downlink(
        self, frame: Frame, *, success: bool, ack_airtime: float = 0.0
    ) -> None:
        airtime = (
            self.pifs_us
            + frame_airtime_us(self.phy, frame.size_bytes, frame.rate_mbps)
            + (self.phy.sifs_us + ack_airtime if success else 0.0)
        )
        self.scheduler.on_complete(
            frame.packet, airtime, success, 1, frame.rate_mbps
        )

    def _complete_uplink(self, frame: Frame) -> None:
        data = frame_airtime_us(self.phy, frame.size_bytes, frame.rate_mbps)
        ack = ack_airtime_us(self.phy, ack_rate_for(self.phy, frame.rate_mbps))
        est = self._poll_overhead_us + data + self.phy.sifs_us + ack
        self.scheduler.on_uplink_complete(
            frame.src, est, payload_bytes=frame.size_bytes
        )
        for observer in self.uplink_observers:
            observer(frame.src, est, frame)
        if self.rx_handler is not None:
            self.rx_handler(frame)

    # TxScheduler protocol stubs (the coordinator *is* the MAC here).
    def bind(self, mac) -> None:  # pragma: no cover - unused direction
        pass
