"""802.11 MAC layer: frames and the DCF contention state machine."""

from repro.mac.frames import Frame, FrameType, BROADCAST
from repro.mac.dcf import DcfMac, MacConfig, TxScheduler, ExchangeReport
from repro.mac.fifo import FifoTxScheduler
from repro.mac.polling import (
    PolledStation,
    PollingCoordinator,
    RoundRobinPollPolicy,
    TokenPollPolicy,
)

__all__ = [
    "Frame",
    "FrameType",
    "BROADCAST",
    "DcfMac",
    "MacConfig",
    "TxScheduler",
    "ExchangeReport",
    "FifoTxScheduler",
    "PolledStation",
    "PollingCoordinator",
    "RoundRobinPollPolicy",
    "TokenPollPolicy",
]
