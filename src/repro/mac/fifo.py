"""A drop-tail FIFO transmit scheduler.

This is the queue every *station* uses for its own traffic, and also
models the plain "kernel interface queue" of the paper's Exp-Normal AP
configuration (a single FIFO of up to 110 packets shared by all
destinations).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional


class FifoTxScheduler:
    """Single drop-tail FIFO feeding a :class:`repro.mac.DcfMac`."""

    def __init__(self, capacity: int = 110) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.queue: deque = deque()
        self.mac = None
        self.dropped = 0
        self.enqueued = 0
        #: listeners called as (packet, airtime_us, success, attempts, rate).
        self.completion_listeners: List[Callable] = []
        #: optional gate: when it returns False the queue withholds the
        #: head packet (used by the TBR client agent's defer behaviour).
        self.release_gate: Optional[Callable[[], bool]] = None

    # ------------------------------------------------------------------
    # TxScheduler protocol
    # ------------------------------------------------------------------
    def bind(self, mac) -> None:
        self.mac = mac

    def dequeue(self) -> Any:
        if not self.queue:
            return None
        if self.release_gate is not None and not self.release_gate():
            return None
        return self.queue.popleft()

    def has_pending(self) -> bool:
        return bool(self.queue)

    def on_complete(
        self, packet: Any, airtime_us: float, success: bool, attempts: int,
        rate_mbps: float,
    ) -> None:
        for listener in self.completion_listeners:
            listener(packet, airtime_us, success, attempts, rate_mbps)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def enqueue(self, packet: Any) -> bool:
        """Add a packet; returns False (and drops it) when full."""
        if len(self.queue) >= self.capacity:
            self.dropped += 1
            return False
        self.queue.append(packet)
        self.enqueued += 1
        if self.mac is not None:
            self.mac.notify_pending()
        return True

    def __len__(self) -> int:
        return len(self.queue)

    def wake(self) -> None:
        """Re-offer the head packet (called when a release gate opens)."""
        if self.queue and self.mac is not None:
            self.mac.notify_pending()
