"""MAC frame representation.

A :class:`Frame` is what travels on the :class:`repro.channel.Channel`.
Data frames wrap an opaque upper-layer packet object (duck-typed: it
must expose ``size_bytes`` and may expose ``station`` for occupancy
accounting); ACK frames stand alone.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

#: Destination address of broadcast frames (no ACK expected).
BROADCAST = "*"


class FrameType(enum.Enum):
    DATA = "data"
    ACK = "ack"
    #: contention-free poll from a point coordinator (PCF-style).
    POLL = "poll"
    #: a polled station's "nothing to send" response.
    CF_NULL = "cf_null"


class Frame:
    """One MAC frame.

    Attributes:
        ftype: DATA or ACK.
        src / dst: MAC addresses (plain strings in this simulator).
        size_bytes: network-layer payload size for DATA (the MAC/PLCP
            overhead is added by the PHY timing code); 14 for ACK.
        rate_mbps: PHY rate this frame is sent at.
        seq: per-sender sequence number; retries keep the same seq so
            receivers can deduplicate.
        attempt: 1-based transmission attempt number (oracle retry
            accounting reads this; a real AP cannot, see the paper's
            Section 4.2).
        packet: opaque upper-layer payload for DATA frames.
        defer_hint: TBR's client-notification bit piggybacked on
            downlink frames and ACKs (paper Section 4.1).  ``None``
            means "no hint"; a float is the requested defer duration in
            microseconds.
    """

    __slots__ = (
        "ftype",
        "src",
        "dst",
        "size_bytes",
        "rate_mbps",
        "seq",
        "attempt",
        "packet",
        "defer_hint",
        "acked_seq",
    )

    _seq_counter = itertools.count(1)

    def __init__(
        self,
        ftype: FrameType,
        src: str,
        dst: str,
        size_bytes: int,
        rate_mbps: float,
        *,
        seq: Optional[int] = None,
        packet: Any = None,
    ) -> None:
        self.ftype = ftype
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.rate_mbps = rate_mbps
        self.seq = seq if seq is not None else next(Frame._seq_counter)
        self.attempt = 1
        self.packet = packet
        self.defer_hint: Optional[float] = None
        #: for ACK frames: the data seq being acknowledged.
        self.acked_seq: Optional[int] = None

    @property
    def is_data(self) -> bool:
        return self.ftype is FrameType.DATA

    @property
    def is_ack(self) -> bool:
        return self.ftype is FrameType.ACK

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Frame {self.ftype.value} {self.src}->{self.dst} "
            f"{self.size_bytes}B @{self.rate_mbps}Mbps seq={self.seq} "
            f"try={self.attempt}>"
        )
