"""DCF — the 802.11 Distributed Coordination Function.

This is a slot-accurate CSMA/CA implementation:

* **Defer**: a station with a frame waits for the medium to be idle for
  DIFS (EIFS after it observed a corrupted frame), then counts down a
  backoff of ``uniform(0, CW)`` slots, freezing whenever the medium goes
  busy and resuming after the next idle DIFS.
* **Immediate access**: if the medium has already been idle for DIFS
  when a frame arrives and no post-transmission backoff is in progress,
  the station transmits without backoff.
* **Slot-synchronous collisions**: two stations whose countdowns expire
  in the same slot both transmit; the busy notification carries the
  busy-start timestamp, and a countdown expiring exactly then is
  committed, so neither yields.
* **Acknowledgement**: the receiver of a clean unicast data frame
  replies with an ACK after SIFS; the sender retries on ACK timeout
  with binary-exponential CW growth up to ``max_attempts``, then drops.
* **Post-transmission backoff**: after every exchange the station runs
  a fresh backoff even with an empty queue (this is why a single 802.11
  sender cannot saturate the channel — the effect the paper points out
  under Figure 4).

The MAC pulls packets from a :class:`TxScheduler` — stations use a FIFO,
the AP plugs in round-robin/DRR or the paper's TBR.  Every completed
exchange is reported to the scheduler and to registered completion
listeners together with its channel-occupancy time, which is how TBR's
COMPLETEEVENT and the usage monitors are driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Protocol

from repro.channel.medium import Channel
from repro.mac.frames import BROADCAST, Frame, FrameType
from repro.phy.phy import (
    ACK_BYTES,
    PhyParams,
    ack_airtime_us,
    ack_rate_for,
    frame_airtime_us,
)
from repro.sim import EventCategory, EventPriority, Simulator
from repro.transport.packet import try_release

#: Tolerance when comparing event timestamps to busy-start timestamps.
_SLOT_EPS = 1e-6


class TxScheduler(Protocol):
    """What the MAC needs from a transmit queue / scheduler."""

    def bind(self, mac: "DcfMac") -> None:
        """Called once; the scheduler keeps the MAC to wake it later."""

    def dequeue(self) -> Any:
        """Return the next upper-layer packet to send, or ``None``.

        Returning ``None`` with backlogged-but-ineligible traffic is how
        TBR withholds packets from token-starved stations; the scheduler
        must later call ``mac.notify_pending()`` when eligibility
        changes.
        """

    def has_pending(self) -> bool:
        """True if a future ``dequeue`` may return a packet."""

    def on_complete(
        self, packet: Any, airtime_us: float, success: bool, attempts: int,
        rate_mbps: float,
    ) -> None:
        """A dequeued packet finished its MAC exchange."""


@dataclass
class MacConfig:
    """Tunables of the DCF state machine."""

    max_attempts: int = 7
    queue_limit: int = 0  # informational; queues enforce their own limits
    ack_timeout_margin_us: float = 0.0
    #: OAR-style opportunistic bursting (Sadeghi et al., the paper's
    #: related work [23]): when non-zero, a station that wins contention
    #: at rate ``d`` may send ``floor(d / burst_base_rate_mbps)`` frames
    #: back-to-back, SIFS-spaced — holding the channel for roughly the
    #: time one frame takes at the base rate.  0 disables bursting
    #: (standard DCF).
    burst_base_rate_mbps: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.burst_base_rate_mbps < 0:
            raise ValueError("burst_base_rate_mbps must be >= 0")

    def burst_frames(self, rate_mbps: float) -> int:
        """Frames one contention win may send at ``rate_mbps``."""
        if self.burst_base_rate_mbps <= 0:
            return 1
        return max(1, int(rate_mbps / self.burst_base_rate_mbps))


@dataclass
class ExchangeReport:
    """Completion report for one data-frame exchange (all attempts)."""

    packet: Any
    src: str
    dst: str
    success: bool
    attempts: int
    airtime_us: float
    rate_mbps: float
    payload_bytes: int


class DcfMac:
    """One station's (or the AP's) DCF entity."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        address: str,
        phy: PhyParams,
        *,
        config: Optional[MacConfig] = None,
        rate_provider: Optional[Callable[[str], float]] = None,
        default_rate_mbps: float = 11.0,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.address = address
        self.phy = phy
        self.config = config if config is not None else MacConfig()
        self._rate_provider = rate_provider
        self.default_rate_mbps = default_rate_mbps
        self._rng = sim.rng(f"mac/{address}")

        self.scheduler: Optional[TxScheduler] = None
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        #: called with an :class:`ExchangeReport` after each exchange.
        self.completion_listeners: List[Callable[[ExchangeReport], None]] = []
        #: called as (dst, success) after *every* transmission attempt —
        #: ARF-style rate control reacts per attempt, so a failed probe
        #: steps back down before the retry goes out.
        self.attempt_listener: Optional[Callable[[str, bool], None]] = None
        #: called for every received ACK/data frame carrying a defer hint
        #: (TBR client cooperation, paper Section 4.1).
        self.defer_hint_handler: Optional[Callable[[float], None]] = None
        #: called as (dst,) when a frame toward ``dst`` exhausts its
        #: retry limit and is dropped — the AP's inactivity reaper uses
        #: consecutive exhaustions as evidence of a dead peer.
        self.retry_exhausted_listener: Optional[Callable[[str], None]] = None

        # Current outgoing frame.
        self._current: Optional[Frame] = None
        self._attempts = 0
        self._airtime_accum = 0.0
        self._cw = phy.cw_min

        # Backoff bookkeeping.  Carrier state (busy flag, idle-start
        # timestamp) is read off the channel at decision time instead of
        # being mirrored per-listener; the MAC subscribes to carrier
        # transitions only while a backoff is in progress, so the
        # channel skips notification work for non-contending nodes.
        self._bo_slots = 0
        self._bo_anchor = 0.0
        self._bo_event = None
        self._backoff_active = False
        #: spent backoff event kept for reuse (timer-reuse fast path).
        self._bo_spare = None

        # Pending ACK-response and ACK-timeout events (+ reuse spares).
        self._ack_tx_event = None
        self._ack_tx_spare = None
        self._ack_timeout_event = None
        self._ack_timeout_spare = None
        self._awaiting_ack_for: Optional[Frame] = None
        self._transmitting = False
        #: the live Transmission handle while a data frame is on the air
        #: (lets shutdown(abort_in_flight=True) corrupt it in place).
        self._current_tx = None
        #: precomputed ACK-timeout tail: SIFS + slot + ACK airtime at
        #: the lowest basic rate (pure function of the PHY).
        self._ack_timeout_base = (
            phy.sifs_us
            + phy.slot_us
            + ack_airtime_us(phy, min(phy.basic_rates))
        )

        # OAR burst state: frames this contention win may still send,
        # and whether the loaded frame continues a burst (SIFS access).
        self._burst_remaining = 0
        self._burst_continuation = False
        # Guards _try_load while completion listeners run, so traffic
        # they enqueue synchronously cannot hijack a burst continuation.
        self._completing = False

        # EIFS flag: last observed frame was corrupted.
        self._use_eifs = False

        # Receiver-side dedup: last seq seen per source.
        self._rx_seen: Dict[str, int] = {}

        # Counters.
        self.tx_attempts = 0
        self.tx_success = 0
        self.tx_dropped = 0
        self.rx_data_ok = 0
        self.rx_corrupted = 0
        self.rx_duplicates = 0

        channel.attach(self)
        # Not contending yet: no carrier notifications until a backoff
        # is armed (see _start_backoff / _countdown_expired), and only
        # involved-frame notifications (we are destination, the frame
        # was corrupted/broadcast, or our EIFS flag needs clearing).
        channel.carrier_unsubscribe(self)
        channel.frame_end_filtered(self)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler: TxScheduler) -> None:
        self.scheduler = scheduler
        scheduler.bind(self)

    def add_completion_listener(
        self, listener: Callable[[ExchangeReport], None]
    ) -> None:
        self.completion_listeners.append(listener)

    def fast_forward(self, delta_us: float) -> None:
        """Shift the backoff anchor after a kernel clock jump.

        ``_bo_anchor`` is the only absolute timestamp this MAC stores
        outside the event heap (pending backoff/ACK events move with the
        heap); shifting it keeps the elapsed-slot arithmetic in
        ``on_busy`` consistent with the shifted countdown event.
        """
        self._bo_anchor += delta_us

    def shutdown(self, *, abort_in_flight: bool = False) -> None:
        """Tear this MAC down (station disassociation / AP outage).

        Cancels every pending MAC event (backoff countdown, ACK
        response, ACK timeout), abandons the loaded frame — releasing a
        pooled packet back to its freelist — and detaches from the
        channel, so no further carrier or frame notifications reach
        this entity.  By default a frame this MAC already put on the
        air still ends normally at the channel (its peers observe the
        frame end); the exchange itself is simply never completed.
        With ``abort_in_flight=True`` (an ungraceful death: AP outage)
        the in-flight transmission is corrupted in place — the carrier
        still occupies the medium until the scheduled frame end, but
        nothing delivers, and the packet is reclaimed.  Idempotent.
        """
        self._cancel_countdown()
        self._backoff_active = False
        self._bo_slots = 0
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        if self._ack_tx_event is not None:
            self._ack_tx_event.cancel()
            self._ack_tx_event = None
        self._awaiting_ack_for = None
        self._burst_remaining = 0
        self._burst_continuation = False
        frame = self._current
        self._current = None
        aborted = False
        if abort_in_flight and self._transmitting and self._current_tx is not None:
            self.channel.abort(self._current_tx)
            aborted = True
        self._current_tx = None
        if frame is not None and frame.packet is not None and (
            not self._transmitting or aborted
        ):
            # A frame still on the air is delivered to its destination
            # at frame end — its packet must not be recycled under the
            # receiver; abandoning it to the GC is the safe loss.  An
            # *aborted* frame is corrupted at the channel and delivers
            # nowhere, so its packet is safe to reclaim.
            try_release(frame.packet)
        self._transmitting = False
        self.scheduler = None
        self.channel.detach(self)

    def restart(self) -> None:
        """Bring a shut-down MAC back on the air (AP outage recovery).

        Re-attaches to the channel with fresh contention state (CW at
        minimum, no EIFS debt, no loaded frame).  The receive dedup map
        survives: frame sequence numbers are globally unique, so stale
        entries can never mask fresh traffic, and keeping them means a
        data frame ACKed just before the outage is still recognized as
        a duplicate if the peer retries it after recovery.  A scheduler
        must be (re-)attached separately via :meth:`attach_scheduler`.
        """
        if self.channel.is_attached(self):
            return
        self._current = None
        self._current_tx = None
        self._attempts = 0
        self._airtime_accum = 0.0
        self._cw = self.phy.cw_min
        self._backoff_active = False
        self._bo_slots = 0
        self._transmitting = False
        self._awaiting_ack_for = None
        self._burst_remaining = 0
        self._burst_continuation = False
        self._completing = False
        self._use_eifs = False
        self.channel.attach(self)
        self.channel.carrier_unsubscribe(self)
        self.channel.frame_end_filtered(self)

    def rate_for(self, dst: str) -> float:
        if self._rate_provider is not None:
            return self._rate_provider(dst)
        return self.default_rate_mbps

    # ------------------------------------------------------------------
    # scheduler-facing API
    # ------------------------------------------------------------------
    def notify_pending(self) -> None:
        """The scheduler may now have an eligible packet; try to load it."""
        self._try_load()

    @property
    def busy_with_frame(self) -> bool:
        """True while a frame is loaded (contending, transmitting, waiting)."""
        return self._current is not None

    # ------------------------------------------------------------------
    # frame loading and contention
    # ------------------------------------------------------------------
    def _try_load(self) -> None:
        if self._current is not None or self.scheduler is None:
            return
        if self._completing:
            return  # _finish_exchange resumes loading when done
        packet = self.scheduler.dequeue()
        if packet is None:
            return
        dst = getattr(packet, "mac_dst")
        rate = self.rate_for(dst)
        frame = Frame(
            FrameType.DATA,
            self.address,
            dst,
            packet.size_bytes,
            rate,
            packet=packet,
        )
        self._current = frame
        self._attempts = 0
        self._airtime_accum = 0.0
        self._cw = self.phy.cw_min
        self._begin_access()

    def _begin_access(self) -> None:
        """Start the channel-access procedure for the loaded frame."""
        if self._backoff_active:
            # A (post-)backoff is already counting down; the frame will be
            # transmitted when it expires.
            return
        channel = self.channel
        if not channel.carrier_busy and (
            self.sim.now - channel.idle_start
        ) >= self._current_ifs():
            # Immediate access: idle for at least DIFS already.
            self._transmit_current()
            return
        self._start_backoff(draw=True)

    def _current_ifs(self) -> float:
        return self.phy.eifs_us() if self._use_eifs else self.phy.difs_us

    def _start_backoff(self, *, draw: bool) -> None:
        """Arm a backoff countdown; draws a fresh slot count if asked."""
        if draw:
            self._bo_slots = self._rng.randint(0, self._cw)
        self._backoff_active = True
        self.channel.carrier_subscribe(self)
        if not self.channel.carrier_busy:
            self._arm_countdown(self.channel.idle_start)
        # else: countdown armed by on_idle.

    def _arm_countdown(self, idle_start: float) -> None:
        """Schedule the countdown expiry.

        The countdown begins once the medium has been idle for the
        current IFS.  When we arm a *fresh* backoff in the middle of a
        long-idle period, already-elapsed idle time does not pre-pay
        slots — the procedure starts now (802.11: the backoff procedure
        begins when it is invoked).  When resuming after busy, ``on_idle``
        calls us at the idle transition, so both cases reduce to
        ``anchor = max(idle_start + IFS, now)``.
        """
        self._cancel_countdown()
        anchor = max(idle_start + self._current_ifs(), self.sim.now)
        self._bo_anchor = anchor
        expiry = anchor + self._bo_slots * self.phy.slot_us
        spare = self._bo_spare
        self._bo_spare = None
        self._bo_event = self.sim.reschedule_at(
            spare, expiry, self._countdown_expired,
            priority=EventPriority.TX_START, category=EventCategory.MAC,
        )

    def _cancel_countdown(self) -> None:
        if self._bo_event is not None:
            self._bo_event.cancel()
            self._bo_event = None

    def _countdown_expired(self) -> None:
        self._bo_spare = self._bo_event  # spent; reusable next arm
        self._bo_event = None
        self._backoff_active = False
        self._bo_slots = 0
        self.channel.carrier_unsubscribe(self)
        if self._current is None:
            # Post-transmission backoff finished with nothing to send;
            # ask the scheduler in case traffic arrived meanwhile.
            self._try_load()
            if self._current is None:
                return
        self._transmit_current()

    # ------------------------------------------------------------------
    # carrier-sense callbacks (from the channel)
    # ------------------------------------------------------------------
    def on_busy(self, busy_start: float) -> None:
        if self._bo_event is None:
            return
        if abs(self._bo_event.time - busy_start) < _SLOT_EPS:
            # Our countdown expires exactly when this carrier began: we
            # are committed to transmitting in this slot (collision).
            return
        # Freeze: account for slots that elapsed before the carrier.
        elapsed_us = busy_start - self._bo_anchor
        elapsed_slots = 0
        if elapsed_us > 0:
            elapsed_slots = int(elapsed_us / self.phy.slot_us + _SLOT_EPS)
        self._bo_slots = max(0, self._bo_slots - elapsed_slots)
        self._cancel_countdown()

    def on_idle(self, idle_start: float) -> None:
        if self._backoff_active and self._bo_event is None:
            self._arm_countdown(idle_start)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _transmit_current(self) -> None:
        frame = self._current
        assert frame is not None
        # Refresh the rate each attempt (rate control may have stepped).
        frame.rate_mbps = self.rate_for(frame.dst)
        self._attempts += 1
        frame.attempt = self._attempts
        self.tx_attempts += 1
        if self._attempts == 1 and not self._burst_continuation:
            # A fresh contention win opens a burst window (1 for DCF).
            self._burst_remaining = self.config.burst_frames(frame.rate_mbps) - 1
        duration = frame_airtime_us(self.phy, frame.size_bytes, frame.rate_mbps)
        ifs = self.phy.sifs_us if self._burst_continuation else self._current_ifs()
        self._airtime_accum += ifs + duration
        self._transmitting = True
        self._current_tx = self.channel.transmit(frame, duration)
        if frame.is_broadcast:
            self.sim.schedule(
                duration, self._broadcast_done, priority=EventPriority.PHY,
                category=EventCategory.MAC,
            )
            return
        self._awaiting_ack_for = frame
        # The ACK rate itself is chosen by the receiver; the timeout only
        # needs the (precomputed) worst-case tail at the lowest basic rate.
        timeout = (
            duration + self._ack_timeout_base + self.config.ack_timeout_margin_us
        )
        spare = self._ack_timeout_spare
        self._ack_timeout_spare = None
        self._ack_timeout_event = self.sim.reschedule(
            spare, timeout, self._ack_timeout, priority=EventPriority.HIGH,
            category=EventCategory.MAC,
        )

    def _broadcast_done(self) -> None:
        self._transmitting = False
        frame = self._current
        if frame is None:
            return  # shut down while the broadcast was in the air
        self._finish_exchange(frame, success=True)

    def _ack_timeout(self) -> None:
        self._ack_timeout_spare = self._ack_timeout_event  # spent; reusable
        self._ack_timeout_event = None
        self._transmitting = False
        frame = self._awaiting_ack_for
        self._awaiting_ack_for = None
        if frame is None:
            return
        if self.attempt_listener is not None:
            self.attempt_listener(frame.dst, False)
        if self._attempts >= self.config.max_attempts:
            # Retry-limit exhaustion is a first-class outcome: the frame
            # is dropped (released to its pool by _finish_exchange), the
            # scheduler sees success=False, and the reaper hook fires.
            self.tx_dropped += 1
            if self.retry_exhausted_listener is not None:
                self.retry_exhausted_listener(frame.dst)
            self._finish_exchange(frame, success=False)
            return
        # Exponential backoff and retry.
        self._cw = min((self._cw + 1) * 2 - 1, self.phy.cw_max)
        self._start_backoff(draw=True)

    def _ack_received(self, ack: Frame) -> None:
        frame = self._awaiting_ack_for
        if frame is None or ack.acked_seq != frame.seq:
            return
        if self._ack_timeout_event is not None:
            self._ack_timeout_event.cancel()
            self._ack_timeout_event = None
        self._transmitting = False
        self._awaiting_ack_for = None
        if self.attempt_listener is not None:
            self.attempt_listener(frame.dst, True)
        # Account the SIFS + ACK airtime in the exchange's occupancy.
        ack_dur = ack_airtime_us(self.phy, ack.rate_mbps)
        self._airtime_accum += self.phy.sifs_us + ack_dur
        self.tx_success += 1
        self._finish_exchange(frame, success=True)

    def _finish_exchange(self, frame: Frame, *, success: bool) -> None:
        packet = frame.packet
        report = ExchangeReport(
            packet=packet,
            src=frame.src,
            dst=frame.dst,
            success=success,
            attempts=self._attempts,
            airtime_us=self._airtime_accum,
            rate_mbps=frame.rate_mbps,
            payload_bytes=frame.size_bytes,
        )
        self._current = None
        airtime = self._airtime_accum
        attempts = self._attempts
        self._airtime_accum = 0.0
        self._attempts = 0
        self._cw = self.phy.cw_min
        continue_burst = (
            success
            and self._burst_remaining > 0
            and attempts == 1  # a retry already re-contended; end the burst
        )
        if not continue_burst:
            self._burst_remaining = 0
            self._burst_continuation = False
            # Post-transmission backoff always runs (802.11 9.2.5.2).
            self._start_backoff(draw=True)
        self._completing = True
        try:
            if self.scheduler is not None and packet is not None:
                self.scheduler.on_complete(
                    packet, airtime, success, attempts, frame.rate_mbps
                )
            for listener in self.completion_listeners:
                listener(report)
        finally:
            self._completing = False
        if packet is not None:
            # Last touchpoint of the packet's life: recycle pooled ones.
            # (getattr: schedulers are duck-typed and tests feed them
            # minimal packet stand-ins without a freelist.)
            release = getattr(packet, "release", None)
            if release is not None:
                release()
        if continue_burst and self._current is None:
            if self._load_burst_continuation():
                return
            # Nothing left to send: close the burst normally.
            self._burst_remaining = 0
            self._burst_continuation = False
            self._start_backoff(draw=True)
        # Load the next frame; it will ride the post-backoff countdown.
        self._try_load()

    def _load_burst_continuation(self) -> bool:
        """Dequeue the next burst frame and transmit it after SIFS."""
        if self.scheduler is None:
            return False
        packet = self.scheduler.dequeue()
        if packet is None:
            return False
        dst = getattr(packet, "mac_dst")
        frame = Frame(
            FrameType.DATA,
            self.address,
            dst,
            packet.size_bytes,
            self.rate_for(dst),
            packet=packet,
        )
        self._current = frame
        self._attempts = 0
        self._airtime_accum = 0.0
        self._burst_remaining -= 1
        self._burst_continuation = True
        self.sim.schedule(
            self.phy.sifs_us,
            self._transmit_burst_frame,
            priority=EventPriority.TX_START,
            category=EventCategory.MAC,
        )
        return True

    def _transmit_burst_frame(self) -> None:
        if self._current is None:
            return
        self._transmit_current()
        self._burst_continuation = False

    # ------------------------------------------------------------------
    # reception
    # ------------------------------------------------------------------
    def on_frame_end(self, frame: Frame, corrupted: bool) -> None:
        if corrupted:
            if not self._use_eifs:
                self._use_eifs = True
                self.channel.eifs_mark(self)
            if frame.dst == self.address:
                self.rx_corrupted += 1
            return
        if self._use_eifs:
            self._use_eifs = False
            self.channel.eifs_unmark(self)
        dst = frame.dst
        if dst != self.address and dst != BROADCAST:
            return
        if frame.is_ack:
            if frame.defer_hint is not None and self.defer_hint_handler:
                self.defer_hint_handler(frame.defer_hint)
            self._ack_received(frame)
            return
        # DATA frame addressed to us.
        if not frame.is_broadcast:
            self._schedule_ack(frame)
        last = self._rx_seen.get(frame.src)
        if last == frame.seq:
            self.rx_duplicates += 1
            return
        self._rx_seen[frame.src] = frame.seq
        self.rx_data_ok += 1
        if frame.defer_hint is not None and self.defer_hint_handler:
            self.defer_hint_handler(frame.defer_hint)
        if self.rx_handler is not None:
            self.rx_handler(frame)

    # Allow the node layer (TBR) to stamp defer hints onto outgoing ACKs.
    ack_decorator: Optional[Callable[[Frame, Frame], None]] = None

    def _schedule_ack(self, data_frame: Frame) -> None:
        ack_rate = ack_rate_for(self.phy, data_frame.rate_mbps)
        ack = Frame(
            FrameType.ACK, self.address, data_frame.src, ACK_BYTES, ack_rate
        )
        ack.acked_seq = data_frame.seq
        if self.ack_decorator is not None:
            self.ack_decorator(ack, data_frame)
        spare = self._ack_tx_spare
        self._ack_tx_spare = None
        self._ack_tx_event = self.sim.reschedule(
            spare, self.phy.sifs_us, self._send_ack, ack,
            priority=EventPriority.TX_START, category=EventCategory.MAC,
        )

    def _send_ack(self, ack: Frame) -> None:
        self._ack_tx_spare = self._ack_tx_event  # spent; reusable
        self._ack_tx_event = None
        duration = ack_airtime_us(self.phy, ack.rate_mbps)
        self.channel.transmit(ack, duration)
