"""PHY timing parameters and frame airtime computation.

Two PHY families are modelled:

* 802.11b DSSS/CCK — PLCP preamble+header sent at 1 Mbps (192 us long,
  96 us short), payload at the data rate;
* 802.11g ERP-OFDM — 20 us preamble+SIGNAL, then 4 us symbols carrying
  ``4 * rate`` bits each (including 16 SERVICE bits and 6 tail bits).

The MAC-level constants (slot, SIFS, CWmin/max) live here too because
they are properties of the PHY in the standard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Sequence, Tuple

from repro.phy.rates import basic_rates_b, basic_rates_g

#: MAC data-frame overhead: 24-byte header + 4-byte FCS.
MAC_DATA_OVERHEAD_BYTES = 28
#: LLC/SNAP encapsulation carried in every data MSDU holding an IP packet.
LLC_SNAP_BYTES = 8
#: MAC ACK control frame size.
ACK_BYTES = 14


@dataclass(frozen=True)
class PhyParams:
    """Timing constants for one PHY configuration.

    ``mode`` selects the airtime formula: ``"dsss"`` (802.11b) or
    ``"ofdm"`` (802.11g).  ``plcp_us`` is the preamble+PLCP-header
    duration for dsss; for ofdm it is the preamble+SIGNAL duration.
    """

    name: str
    mode: str
    slot_us: float
    sifs_us: float
    plcp_us: float
    cw_min: int
    cw_max: int
    basic_rates: Sequence[float] = field(default_factory=tuple)
    #: bits prepended to the OFDM payload (SERVICE + tail), dsss: 0.
    ofdm_service_tail_bits: int = 0

    def __post_init__(self) -> None:
        # Per-instance memo tables for the pure timing functions below.
        # They are *not* dataclass fields, so equality, hashing and repr
        # are untouched; ``object.__setattr__`` sidesteps frozen-ness.
        # Airtime is computed on every exchange and every EIFS lookup,
        # and the key spaces (PSDU size x rate) are tiny in practice.
        object.__setattr__(self, "_psdu_cache", {})
        object.__setattr__(self, "_ack_rate_cache", {})
        object.__setattr__(self, "_eifs_cache", {})
        object.__setattr__(
            self, "_difs_us", self.sifs_us + 2.0 * self.slot_us
        )

    def __getstate__(self) -> Dict[str, object]:
        # Pickle only the declared fields: the airtime/EIFS memo tables
        # are per-process derived state, and shipping them into campaign
        # workers would both bloat the job payload and share one
        # instance's cache dict across forked jobs.
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: Dict[str, object]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self.__post_init__()  # rebuild empty memo tables

    @property
    def difs_us(self) -> float:
        """DIFS = SIFS + 2 slots."""
        return self._difs_us

    def eifs_us(self, lowest_rate_mbps: Optional[float] = None) -> float:
        """EIFS = SIFS + DIFS + ACK airtime at the lowest basic rate."""
        cache: Dict[Optional[float], float] = self._eifs_cache
        cached = cache.get(lowest_rate_mbps)
        if cached is not None:
            return cached
        rate = lowest_rate_mbps if lowest_rate_mbps is not None else min(self.basic_rates)
        value = self.sifs_us + self._difs_us + ack_airtime_us(self, rate)
        cache[lowest_rate_mbps] = value
        return value


DOT11B_LONG_PREAMBLE = PhyParams(
    name="802.11b (long preamble)",
    mode="dsss",
    slot_us=20.0,
    sifs_us=10.0,
    plcp_us=192.0,
    cw_min=31,
    cw_max=1023,
    basic_rates=tuple(basic_rates_b()),
)

DOT11B_SHORT_PREAMBLE = PhyParams(
    name="802.11b (short preamble)",
    mode="dsss",
    slot_us=20.0,
    sifs_us=10.0,
    plcp_us=96.0,
    cw_min=31,
    cw_max=1023,
    basic_rates=tuple(basic_rates_b()),
)

DOT11G_OFDM = PhyParams(
    name="802.11g (ERP-OFDM)",
    mode="ofdm",
    slot_us=9.0,
    sifs_us=10.0,
    plcp_us=20.0,
    cw_min=15,
    cw_max=1023,
    basic_rates=tuple(basic_rates_g()),
    ofdm_service_tail_bits=22,
)


def _psdu_airtime_us(phy: PhyParams, psdu_bytes: int, rate_mbps: float) -> float:
    """Airtime of a PSDU of ``psdu_bytes`` at ``rate_mbps`` on ``phy``.

    Memoized per PHY instance on ``(psdu_bytes, rate_mbps)`` — the
    function is pure and the MAC asks the same handful of questions
    millions of times per simulated minute.
    """
    cache: Dict[Tuple[int, float], float] = phy._psdu_cache
    key = (psdu_bytes, rate_mbps)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if psdu_bytes < 0:
        raise ValueError("psdu_bytes must be non-negative")
    if rate_mbps <= 0:
        raise ValueError("rate must be positive")
    bits = 8.0 * psdu_bytes
    if phy.mode == "dsss":
        value = phy.plcp_us + bits / rate_mbps
    elif phy.mode == "ofdm":
        bits_per_symbol = 4.0 * rate_mbps
        symbols = math.ceil((phy.ofdm_service_tail_bits + bits) / bits_per_symbol)
        value = phy.plcp_us + 4.0 * symbols
    else:
        raise ValueError(f"unknown phy mode {phy.mode!r}")
    cache[key] = value
    return value


def frame_airtime_us(
    phy: PhyParams,
    payload_bytes: int,
    rate_mbps: float,
    *,
    include_llc: bool = True,
) -> float:
    """Airtime of a unicast data frame carrying ``payload_bytes`` of MSDU.

    ``payload_bytes`` is the network-layer (IP) packet size.  The MAC
    header, FCS and (by default) LLC/SNAP encapsulation are added here.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    psdu = payload_bytes + MAC_DATA_OVERHEAD_BYTES
    if include_llc:
        psdu += LLC_SNAP_BYTES
    return _psdu_airtime_us(phy, psdu, rate_mbps)


def ack_airtime_us(phy: PhyParams, rate_mbps: float) -> float:
    """Airtime of a MAC ACK control frame at ``rate_mbps``."""
    return _psdu_airtime_us(phy, ACK_BYTES, rate_mbps)


def ack_rate_for(phy: PhyParams, data_rate_mbps: float) -> float:
    """Control-response rate: highest basic rate <= the data rate.

    Falls back to the lowest basic rate when the data rate is below every
    basic rate (cannot happen for standard-compliant rate sets, but keeps
    the function total).  Memoized per PHY instance.
    """
    cache: Dict[float, float] = phy._ack_rate_cache
    cached = cache.get(data_rate_mbps)
    if cached is not None:
        return cached
    candidates = [r for r in phy.basic_rates if r <= data_rate_mbps]
    value = max(candidates) if candidates else min(phy.basic_rates)
    cache[data_rate_mbps] = value
    return value
