"""SNR -> BER -> packet-error-rate curves for 802.11b/g modulations.

These follow the standard textbook expressions (DBPSK/DQPSK, CCK
approximations, and M-QAM with coding gain for OFDM) at the level of
fidelity common in network simulators: the goal is that packet error
rate falls off a cliff a few dB around each rate's sensitivity point,
which is what drives automatic rate adaptation behaviour (the paper's
EXP-1 reproduction).
"""

from __future__ import annotations

import math

from repro.phy.rates import Dot11Rate, rate_by_mbps


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def ber_for_rate(rate_mbps: float, snr_db: float) -> float:
    """Bit error rate at ``snr_db`` for the modulation of ``rate_mbps``.

    SNR is interpreted as Eb/N0-equivalent per-bit SNR for the DSSS rates
    (spreading gain folded in) and as per-symbol SNR scaled by the coding
    rate for OFDM.  The curves are monotone decreasing in SNR and ordered
    by rate (faster rates need more SNR), which is all downstream code
    relies on.
    """
    rate = rate_by_mbps(rate_mbps)
    snr = 10.0 ** (snr_db / 10.0)
    if rate.family == "b":
        return _ber_dsss(rate, snr)
    return _ber_ofdm(rate, snr)


def _ber_dsss(rate: Dot11Rate, snr: float) -> float:
    # Spreading gain: 11-chip Barker for 1/2 Mbps, 8-chip CCK for 5.5/11.
    if rate.mbps == 1.0:
        # DBPSK with 11x processing gain.
        return 0.5 * math.exp(-max(snr * 11.0, 0.0))
    if rate.mbps == 2.0:
        # DQPSK with 5.5x effective gain.
        return 0.5 * math.exp(-max(snr * 5.5, 0.0))
    if rate.mbps == 5.5:
        # CCK-5.5 approximation (Q-function with modest gain).
        return _q_function(math.sqrt(max(snr * 4.0, 0.0)))
    # CCK-11.
    return _q_function(math.sqrt(max(snr * 2.0, 0.0)))


def _ber_ofdm(rate: Dot11Rate, snr: float) -> float:
    # M-QAM BER with convolutional coding approximated by an SNR gain.
    coding_gain = {
        "BPSK1/2": 2.0, "BPSK3/4": 1.5,
        "QPSK1/2": 2.0, "QPSK3/4": 1.5,
        "16QAM1/2": 2.0, "16QAM3/4": 1.5,
        "64QAM2/3": 1.8, "64QAM3/4": 1.5,
    }[rate.modulation]
    bits_per_symbol = {
        "BPSK1/2": 1, "BPSK3/4": 1,
        "QPSK1/2": 2, "QPSK3/4": 2,
        "16QAM1/2": 4, "16QAM3/4": 4,
        "64QAM2/3": 6, "64QAM3/4": 6,
    }[rate.modulation]
    m = 2 ** bits_per_symbol
    effective = snr * coding_gain
    if m == 2:
        return _q_function(math.sqrt(max(2.0 * effective, 0.0)))
    # Gray-coded M-QAM approximation.
    arg = math.sqrt(max(3.0 * effective / (m - 1.0), 0.0))
    factor = 4.0 / bits_per_symbol * (1.0 - 1.0 / math.sqrt(m))
    return min(0.5, factor * _q_function(arg))


def per_from_ber(ber: float, frame_bytes: int) -> float:
    """Packet error rate for an independent-bit-error channel."""
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"BER must be in [0, 1], got {ber!r}")
    if frame_bytes < 0:
        raise ValueError("frame_bytes must be non-negative")
    bits = 8 * frame_bytes
    if ber == 0.0 or bits == 0:
        return 0.0
    if ber >= 0.5:
        return 1.0
    # log1p for numerical stability with tiny BERs and long frames.
    return 1.0 - math.exp(bits * math.log1p(-ber))


def frame_error_probability(rate_mbps: float, snr_db: float, frame_bytes: int) -> float:
    """PER of a ``frame_bytes`` frame at ``rate_mbps`` under ``snr_db``."""
    return per_from_ber(ber_for_rate(rate_mbps, snr_db), frame_bytes)


def snr_to_per(rate_mbps: float, snr_db: float, frame_bytes: int = 1500) -> float:
    """Alias of :func:`frame_error_probability` with a 1500 B default."""
    return frame_error_probability(rate_mbps, snr_db, frame_bytes)


def highest_rate_for_snr(
    snr_db: float,
    rates=None,
    *,
    frame_bytes: int = 1500,
    target_per: float = 0.1,
) -> float:
    """Highest rate whose PER at ``snr_db`` stays below ``target_per``.

    Falls back to the lowest rate when even it cannot meet the target
    (a station never disconnects in our single-cell model; it just runs
    slow and lossy, matching the paper's observation that retransmitting
    at a too-high rate is futile while a lower rate still works).
    """
    from repro.phy.rates import DOT11B_RATES

    pool = list(rates) if rates is not None else [r.mbps for r in DOT11B_RATES]
    pool.sort()
    best = pool[0]
    for mbps in pool:
        if frame_error_probability(mbps, snr_db, frame_bytes) <= target_per:
            best = mbps
    return best
