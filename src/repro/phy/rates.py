"""802.11b/g data-rate tables.

Rates are identified by their nominal Mbps value; because the simulator's
time unit is the microsecond, a rate of ``d`` Mbps transmits exactly
``d`` bits per microsecond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class Dot11Rate:
    """One PHY data rate.

    Attributes:
        mbps: nominal data rate in Mbps (== bits per microsecond).
        modulation: human-readable modulation name.
        family: ``"b"`` (DSSS/CCK) or ``"g"`` (ERP-OFDM).
        min_snr_db: SNR (dB) above which this rate sustains a low packet
            error rate; used by the SNR-driven rate picker and by the
            EXP-1 reproduction.  Values follow common simulator practice
            (e.g. ns-2 / Qualnet 802.11b curves).
    """

    mbps: float
    modulation: str
    family: str
    min_snr_db: float

    def bits_us(self, bits: float) -> float:
        """Airtime in us for ``bits`` payload bits at this rate."""
        return bits / self.mbps


DOT11B_RATES: List[Dot11Rate] = [
    Dot11Rate(1.0, "DBPSK", "b", 1.0),
    Dot11Rate(2.0, "DQPSK", "b", 4.0),
    Dot11Rate(5.5, "CCK5.5", "b", 7.0),
    Dot11Rate(11.0, "CCK11", "b", 10.0),
]

DOT11G_RATES: List[Dot11Rate] = [
    Dot11Rate(6.0, "BPSK1/2", "g", 5.0),
    Dot11Rate(9.0, "BPSK3/4", "g", 6.0),
    Dot11Rate(12.0, "QPSK1/2", "g", 8.0),
    Dot11Rate(18.0, "QPSK3/4", "g", 10.0),
    Dot11Rate(24.0, "16QAM1/2", "g", 13.0),
    Dot11Rate(36.0, "16QAM3/4", "g", 17.0),
    Dot11Rate(48.0, "64QAM2/3", "g", 21.0),
    Dot11Rate(54.0, "64QAM3/4", "g", 23.0),
]

_ALL_RATES = {r.mbps: r for r in DOT11B_RATES + DOT11G_RATES}


def rate_by_mbps(mbps: float) -> Dot11Rate:
    """Look up a rate object by its Mbps value.

    802.11b rates shadow nothing in the g table (they do not overlap), so
    a plain numeric lookup is unambiguous.
    """
    try:
        return _ALL_RATES[float(mbps)]
    except KeyError:
        valid = sorted(_ALL_RATES)
        raise ValueError(f"unknown 802.11 rate {mbps!r}; valid: {valid}") from None


def basic_rates_b() -> Sequence[float]:
    """The 802.11b basic (mandatory) rate set used for control frames."""
    return (1.0, 2.0)


def basic_rates_g() -> Sequence[float]:
    """The 802.11g basic rate set used for control frames (pure-g cell)."""
    return (6.0, 12.0, 24.0)
