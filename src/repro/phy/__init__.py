"""802.11 PHY timing and error models.

``repro.phy`` knows how long frames occupy the air and how likely they
are to be corrupted at a given SNR.  It is purely computational (no
simulator state), which makes it easy to test exhaustively and to share
between the live MAC simulation and the analytic model in
``repro.analysis``.
"""

from repro.phy.rates import (
    Dot11Rate,
    DOT11B_RATES,
    DOT11G_RATES,
    rate_by_mbps,
    basic_rates_b,
    basic_rates_g,
)
from repro.phy.phy import (
    PhyParams,
    DOT11B_LONG_PREAMBLE,
    DOT11B_SHORT_PREAMBLE,
    DOT11G_OFDM,
    frame_airtime_us,
    ack_airtime_us,
    ack_rate_for,
)
from repro.phy.modulation import (
    ber_for_rate,
    per_from_ber,
    frame_error_probability,
    snr_to_per,
    highest_rate_for_snr,
)

__all__ = [
    "Dot11Rate",
    "DOT11B_RATES",
    "DOT11G_RATES",
    "rate_by_mbps",
    "basic_rates_b",
    "basic_rates_g",
    "PhyParams",
    "DOT11B_LONG_PREAMBLE",
    "DOT11B_SHORT_PREAMBLE",
    "DOT11G_OFDM",
    "frame_airtime_us",
    "ack_airtime_us",
    "ack_rate_for",
    "ber_for_rate",
    "per_from_ber",
    "frame_error_probability",
    "snr_to_per",
    "highest_rate_for_snr",
]
