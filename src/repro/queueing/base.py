"""Shared machinery for AP downlink schedulers."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set

from repro.transport.packet import try_release


class StationQueue:
    """A drop-tail per-station queue."""

    __slots__ = ("station", "capacity", "queue", "dropped", "enqueued_bytes")

    def __init__(self, station: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.station = station
        self.capacity = capacity
        self.queue: deque = deque()
        self.dropped = 0
        self.enqueued_bytes = 0

    def push(self, packet: Any) -> bool:
        if len(self.queue) >= self.capacity:
            self.dropped += 1
            return False
        self.queue.append(packet)
        self.enqueued_bytes += packet.size_bytes
        return True

    def has_room(self) -> bool:
        """True if :meth:`push` would accept a packet right now."""
        return len(self.queue) < self.capacity

    def count_drop(self) -> None:
        """Record a drop-tail loss without materializing the packet.

        The demand-driven traffic engine checks :meth:`has_room` before
        allocating; this keeps the ``dropped`` counter identical to the
        push-then-drop path it replaces.
        """
        self.dropped += 1

    def pop(self) -> Any:
        return self.queue.popleft()

    def head(self) -> Any:
        return self.queue[0] if self.queue else None

    def __len__(self) -> int:
        return len(self.queue)

    def __bool__(self) -> bool:
        return bool(self.queue)


class ApScheduler:
    """Base class for AP downlink schedulers (implements TxScheduler).

    Subclasses override :meth:`_select_queue` (which station's queue to
    serve next) and may override :meth:`on_complete` /
    :meth:`on_uplink_complete` for accounting.  The AP node calls
    :meth:`enqueue` for every downlink packet (the paper's APPTXEVENT)
    and :meth:`on_uplink_complete` for every observed uplink exchange.

    Total buffer space is divided equally among associated stations when
    ``per_station_capacity`` is None, matching the paper's experimental
    setup (n queues of 100/n packets).
    """

    def __init__(
        self,
        total_capacity: int = 100,
        per_station_capacity: Optional[int] = None,
    ) -> None:
        self.total_capacity = total_capacity
        self.per_station_capacity = per_station_capacity
        self.mac = None
        self.queues: Dict[str, StationQueue] = {}
        self._order: List[str] = []
        self._rr_index = 0
        #: stations that explicitly disassociated; arrivals for them are
        #: refused instead of lazily re-associating (a late wired-pipe
        #: packet must not resurrect a departed station's queue).
        self._departed: Set[str] = set()
        #: drop counts of queues that no longer exist (keeps ``dropped``
        #: monotonic across disassociations).
        self._departed_dropped = 0
        #: arrivals refused because their station had disassociated.
        self.refused_departed = 0
        #: packets flushed (and released) by :meth:`disassociate`.
        self.flushed_on_disassociate = 0
        #: dequeued packets whose MAC exchange failed outright (retry
        #: limit exhausted) — the frame was dropped on the air, not in
        #: a queue, so drop-tail counters never see it.
        self.tx_failed = 0
        #: (packet, airtime_us, success, attempts, rate) listeners.
        self.completion_listeners: List[Callable] = []

    # ------------------------------------------------------------------
    # association
    # ------------------------------------------------------------------
    def associate(self, station: str) -> None:
        """Create the station's queue (the paper's ASSOCIATEEVENT)."""
        self._departed.discard(station)
        if station in self.queues:
            return
        self._order.append(station)
        self._rebuild_queues()

    def disassociate(self, station: str) -> int:
        """Tear the station's queue down (the inverse of ASSOCIATEEVENT).

        Queued packets are flushed back to their :class:`PacketPool`
        (``packet.release()``; plain packets are simply dropped), the
        shared buffer is re-divided among the remaining stations, and
        subsequent arrivals for the station are refused until it
        explicitly re-associates.  Returns the number of packets
        flushed; unknown or already-departed stations are a no-op.
        """
        queue = self.queues.pop(station, None)
        if queue is None:
            return 0
        idx = self._order.index(station)
        del self._order[idx]
        # Keep the round-robin cursor pointing at the same survivor.
        if idx < self._rr_index:
            self._rr_index -= 1
        self._rr_index = self._rr_index % len(self._order) if self._order else 0
        self._departed.add(station)
        self._departed_dropped += queue.dropped
        flushed = len(queue.queue)
        self.flushed_on_disassociate += flushed
        for packet in queue.queue:
            try_release(packet)
        queue.queue.clear()
        self._rebuild_queues()
        return flushed

    def is_associated(self, station: str) -> bool:
        return station in self.queues

    def _station_capacity(self) -> int:
        if self.per_station_capacity is not None:
            return self.per_station_capacity
        n = max(1, len(self._order))
        return max(1, self.total_capacity // n)

    def _rebuild_queues(self) -> None:
        capacity = self._station_capacity()
        rebuilt: Dict[str, StationQueue] = {}
        for station in self._order:
            old = self.queues.get(station)
            q = StationQueue(station, capacity)
            if old is not None:
                q.queue = old.queue
                q.dropped = old.dropped
                q.enqueued_bytes = old.enqueued_bytes
            rebuilt[station] = q
        self.queues = rebuilt

    def stations(self) -> List[str]:
        return list(self._order)

    # ------------------------------------------------------------------
    # producer side (AP node)
    # ------------------------------------------------------------------
    def enqueue(self, packet: Any) -> bool:
        """APPTXEVENT: queue a downlink packet for its station."""
        station = packet.station
        if station not in self.queues:
            if station in self._departed:
                self.refused_departed += 1
                return False
            self.associate(station)
        ok = self.queues[station].push(packet)
        if ok and self.mac is not None:
            self.mac.notify_pending()
        return ok

    # ------------------------------------------------------------------
    # drop-before-alloc admission (demand-driven traffic engine)
    # ------------------------------------------------------------------
    def admits(self, station: str) -> bool:
        """Would :meth:`enqueue` accept a packet for ``station`` now?

        Mirrors :meth:`enqueue`'s side effects up to the capacity check
        (unknown stations are associated), so callers can decide whether
        to materialize a packet at all.  A ``True`` answer is valid until
        the next enqueue/dequeue on this scheduler.
        """
        if station not in self.queues:
            if station in self._departed:
                return False
            self.associate(station)
        return self.queues[station].has_room()

    def drop_arrival(self, station: str) -> None:
        """Account an arrival refused by :meth:`admits` as a tail drop.

        Together with :meth:`admits` this is the allocation-free
        equivalent of ``enqueue`` returning ``False``: the same counters
        move, but no packet object ever existed.
        """
        queue = self.queues.get(station)
        if queue is None:
            # Only a genuinely departed station counts as a refusal; a
            # never-associated name here is a caller bug, not a drop.
            if station in self._departed:
                self.refused_departed += 1
            return
        queue.count_drop()

    def on_uplink_complete(
        self, station: str, airtime_us: float, *, attempts: int = 1,
        success: bool = True, payload_bytes: int = 0,
    ) -> None:
        """An uplink exchange owned by ``station`` used ``airtime_us``.

        Plain throughput-fair schedulers ignore uplink usage; TBR charges
        it against the station's tokens (and uses ``payload_bytes`` as an
        activity signal for rate adjustment).
        """

    # ------------------------------------------------------------------
    # TxScheduler protocol
    # ------------------------------------------------------------------
    def bind(self, mac) -> None:
        self.mac = mac

    def has_pending(self) -> bool:
        return any(self.queues[s] for s in self._order)

    def dequeue(self) -> Any:
        queue = self._select_queue()
        if queue is None:
            return None
        return queue.pop()

    def _select_queue(self) -> Optional[StationQueue]:
        raise NotImplementedError

    def on_complete(
        self, packet: Any, airtime_us: float, success: bool, attempts: int,
        rate_mbps: float,
    ) -> None:
        if not success:
            self.tx_failed += 1
        for listener in self.completion_listeners:
            listener(packet, airtime_us, success, attempts, rate_mbps)

    def fast_forward(self, delta_us: float) -> None:
        """Shift any clock-bearing scheduler state after a kernel jump.

        The throughput-fair disciplines (FIFO/RR/DRR) hold no absolute
        timestamps — queues, drop counters and round-robin cursors are
        all time-free — so the base implementation is a deliberate no-op.
        TBR overrides this to move its timer phases and token windows.
        """

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def backlog(self, station: str) -> int:
        q = self.queues.get(station)
        return len(q) if q is not None else 0

    def total_backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def dropped(self) -> int:
        return self._departed_dropped + sum(
            q.dropped for q in self.queues.values()
        )

