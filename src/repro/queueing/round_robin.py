"""Per-destination round-robin downlink scheduling.

One packet per backlogged station per round: equal *packet* shares,
i.e. throughput-based fairness when packet sizes match.  This is the
behaviour the paper attributes to typical APs ("usually transmits to
wireless clients in a round-robin manner", Section 2.4).
"""

from __future__ import annotations

from typing import Optional

from repro.queueing.base import ApScheduler, StationQueue


class RoundRobinScheduler(ApScheduler):
    """Serve backlogged station queues one packet at a time, in turn."""

    def _select_queue(self) -> Optional[StationQueue]:
        n = len(self._order)
        if n == 0:
            return None
        for offset in range(n):
            idx = (self._rr_index + offset) % n
            queue = self.queues[self._order[idx]]
            if queue:
                self._rr_index = (idx + 1) % n
                return queue
        return None
