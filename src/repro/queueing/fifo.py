"""The Exp-Normal AP queue: one shared drop-tail FIFO.

The paper's unmodified AP stores all downlink packets in the kernel
interface queue (maximum 110 packets) with no per-station structure.
Arrival order alone decides transmission order, which for competing TCP
flows self-clocks into approximately equal *packet* (hence throughput)
shares — throughput-based fairness.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.queueing.base import ApScheduler, StationQueue
from repro.transport.packet import try_release


class ApFifoScheduler(ApScheduler):
    """Single shared FIFO; ignores per-station structure entirely."""

    def __init__(self, total_capacity: int = 110) -> None:
        super().__init__(total_capacity=total_capacity)
        self._fifo: deque = deque()
        self.fifo_dropped = 0

    def disassociate(self, station: str) -> int:
        """Drop the station and purge its packets from the shared FIFO."""
        if station not in self.queues:
            return 0
        flushed = super().disassociate(station)  # bookkeeping; queue empty
        kept: deque = deque()
        for packet in self._fifo:
            if packet.station == station:
                flushed += 1
                self.flushed_on_disassociate += 1
                try_release(packet)
            else:
                kept.append(packet)
        self._fifo = kept
        return flushed

    def enqueue(self, packet: Any) -> bool:
        if packet.station not in self.queues:
            if packet.station in self._departed:
                self.refused_departed += 1
                return False
            self.associate(packet.station)
        if len(self._fifo) >= self.total_capacity:
            self.fifo_dropped += 1
            return False
        self._fifo.append(packet)
        if self.mac is not None:
            self.mac.notify_pending()
        return True

    def admits(self, station: str) -> bool:
        if station not in self.queues:
            if station in self._departed:
                return False
            self.associate(station)
        return len(self._fifo) < self.total_capacity

    def drop_arrival(self, station: str) -> None:
        if station not in self.queues:
            if station in self._departed:
                self.refused_departed += 1
            return
        self.fifo_dropped += 1

    def has_pending(self) -> bool:
        return bool(self._fifo)

    def dequeue(self) -> Any:
        if not self._fifo:
            return None
        return self._fifo.popleft()

    def _select_queue(self) -> Optional[StationQueue]:  # pragma: no cover
        raise AssertionError("ApFifoScheduler overrides dequeue directly")

    def backlog(self, station: str) -> int:
        return sum(1 for p in self._fifo if p.station == station)

    def total_backlog(self) -> int:
        return len(self._fifo)

    def dropped(self) -> int:
        return self.fifo_dropped
