"""Deficit Round Robin (Shreedhar & Varghese, SIGCOMM '95).

Byte-accurate throughput fairness across station queues: each backlogged
queue receives one quantum of byte credit per round-robin visit and is
served while its deficit covers the head packet.  DRR is the strongest
*throughput-based* fairness baseline in the paper's related work ([24]);
with equal packet sizes it coincides with round robin, with mixed sizes
it equalizes bytes rather than packets.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.queueing.base import ApScheduler, StationQueue


class DrrScheduler(ApScheduler):
    """Deficit Round Robin over per-station queues."""

    def __init__(
        self,
        total_capacity: int = 100,
        per_station_capacity: Optional[int] = None,
        quantum_bytes: int = 1500,
    ) -> None:
        super().__init__(total_capacity, per_station_capacity)
        if quantum_bytes < 1:
            raise ValueError("quantum must be >= 1 byte")
        self.quantum_bytes = quantum_bytes
        self.deficit: Dict[str, float] = {}
        self._visit_granted = False

    def associate(self, station: str) -> None:
        super().associate(station)
        self.deficit.setdefault(station, 0.0)

    def disassociate(self, station: str) -> int:
        # If the departing station was the one under the round-robin
        # cursor, its visit ends with it: the successor the base class
        # repoints the cursor at must start a fresh visit (and receive
        # its quantum grant), not inherit a half-spent one.
        was_under_cursor = (
            station in self.queues
            and self._order[self._rr_index % len(self._order)] == station
        )
        flushed = super().disassociate(station)
        if was_under_cursor:
            self._visit_granted = False
        self.deficit.pop(station, None)
        return flushed

    def _advance(self) -> None:
        self._rr_index = (self._rr_index + 1) % max(1, len(self._order))
        self._visit_granted = False

    def _select_queue(self) -> Optional[StationQueue]:
        n = len(self._order)
        if n == 0:
            return None
        backlogged = [self.queues[s] for s in self._order if self.queues[s]]
        if not backlogged:
            return None
        # Each full round adds one quantum to every backlogged queue, so
        # after ceil(max_head / quantum) rounds some head is serviceable.
        max_head = max(q.head().size_bytes for q in backlogged)
        max_visits = (math.ceil(max_head / self.quantum_bytes) + 2) * n
        for _ in range(max_visits):
            station = self._order[self._rr_index % n]
            queue = self.queues[station]
            if not queue:
                # Empty queues forfeit their deficit (standard DRR).
                self.deficit[station] = 0.0
                self._advance()
                continue
            if not self._visit_granted:
                self.deficit[station] += self.quantum_bytes
                self._visit_granted = True
            head = queue.head()
            if self.deficit[station] >= head.size_bytes:
                self.deficit[station] -= head.size_bytes
                # Stay on this queue (no re-grant) so the remaining
                # deficit can serve follow-on packets this visit.
                return queue
            self._advance()
        return None

    def dequeue(self) -> Any:
        queue = self._select_queue()
        if queue is None:
            return None
        return queue.pop()
