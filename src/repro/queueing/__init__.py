"""AP downlink queueing disciplines.

The paper (Section 2.5) observes that the AP's queueing scheme dictates
downlink capacity allocation.  This package provides the classical
throughput-fair disciplines TBR is compared against:

* :class:`ApFifoScheduler` — the single "kernel interface queue" of the
  paper's Exp-Normal configuration;
* :class:`RoundRobinScheduler` — per-destination round robin (what most
  APs approximate);
* :class:`DrrScheduler` — Deficit Round Robin (Shreedhar & Varghese),
  byte-accurate throughput fairness;

plus the shared :class:`ApScheduler` base class that TBR also extends.
"""

from repro.queueing.base import ApScheduler, StationQueue
from repro.queueing.fifo import ApFifoScheduler
from repro.queueing.round_robin import RoundRobinScheduler
from repro.queueing.drr import DrrScheduler

__all__ = [
    "ApScheduler",
    "StationQueue",
    "ApFifoScheduler",
    "RoundRobinScheduler",
    "DrrScheduler",
]
