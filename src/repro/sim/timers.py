"""Recurring timers built on top of the kernel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.event import Event, EventCategory, EventPriority
from repro.sim.kernel import Simulator


class PeriodicTimer:
    """Calls ``callback(elapsed_us)`` every ``period`` microseconds.

    The callback receives the time elapsed since its previous invocation
    (or since :meth:`start`), which is exactly what token-fill style
    handlers such as TBR's FILLEVENT need.  ``jitter_rng`` may be given to
    de-synchronize periodic work across instances.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[float], Any],
        *,
        priority: int = EventPriority.NORMAL,
        jitter_rng=None,
        jitter_fraction: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.priority = priority
        self._jitter_rng = jitter_rng
        self._jitter_fraction = jitter_fraction
        self._event: Optional[Event] = None
        self._last_fire: float = 0.0
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Start (or restart) the timer; first fire is one period from now."""
        self.stop()
        self._running = True
        self._last_fire = self.sim.now
        self._schedule_next()

    def stop(self) -> None:
        """Stop the timer; no further callbacks fire."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def fast_forward(self, delta_us: float) -> None:
        """Shift the timer's phase reference after a kernel clock jump.

        The pending fire event moves with the heap; ``_last_fire`` must
        move by the same amount or the first post-jump callback would be
        handed the whole skipped interval as ``elapsed`` (for TBR's fill
        timer that would grant the skip's worth of tokens at once).
        """
        self._last_fire += delta_us

    def _next_delay(self) -> float:
        if self._jitter_rng is not None and self._jitter_fraction > 0.0:
            spread = self.period * self._jitter_fraction
            return self.period + self._jitter_rng.uniform(-spread, spread)
        return self.period

    def _schedule_next(self) -> None:
        # Recycle the just-fired event object (timer-reuse fast path);
        # a cancelled-in-heap event falls back to a fresh allocation.
        self._event = self.sim.reschedule(
            self._event, self._next_delay(), self._fire,
            priority=self.priority, category=EventCategory.TIMER,
        )

    def _fire(self) -> None:
        if not self._running:
            return
        elapsed = self.sim.now - self._last_fire
        self._last_fire = self.sim.now
        self._schedule_next()
        self.callback(elapsed)
