"""The discrete-event simulation kernel.

Hot-path design notes
---------------------

The heap holds ``(time, priority, seq, event)`` tuples rather than bare
:class:`Event` objects, so every sift comparison inside ``heapq`` is a C
tuple comparison instead of a Python-level ``Event.__lt__`` call — in
saturated-cell workloads those comparisons used to be the single largest
cost in the profile.  ``seq`` is unique, so the tuple comparison never
falls through to comparing events.

Cancellation is lazy (a dead entry stays queued until it surfaces), but
the kernel keeps O(1) live/stale counts and compacts the heap in place
when stale entries outnumber live ones — saturated DCF cancels a
backoff or ACK-timeout event on almost every exchange, and without
compaction those corpses inflate every subsequent sift.

``reschedule``/``reschedule_at`` recycle a spent :class:`Event` object
(one that already executed or was discarded) so high-churn timers — MAC
backoff, ACK timeouts, periodic fill timers — do not allocate a fresh
event per cycle.  ``schedule_many`` batches the bookkeeping for callers
that enqueue several events at once.
"""

from __future__ import annotations

import heapq
import random
from heapq import heapify, heappush
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.sim.event import NUM_CATEGORIES, Event, EventCategory, EventPriority

#: Compact only when at least this many stale entries accumulated (tiny
#: heaps are cheaper to drain lazily than to rebuild).
_COMPACT_MIN_STALE = 64


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Time is floating-point microseconds starting at 0.  Events scheduled
    at identical timestamps run in ``(priority, insertion order)`` order.

    The kernel also owns named deterministic RNG streams
    (:meth:`rng`): every component draws randomness from a stream keyed
    by its own name, so adding a component never perturbs the draws seen
    by the others, and runs are reproducible given the seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._now = 0.0
        #: heap of (time, priority, seq, event) — see module docstring.
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        #: executed events per EventCategory bucket (index = category).
        self._cat_counts = [0] * NUM_CATEGORIES
        #: non-cancelled events currently queued (O(1) pending_count).
        self._live = 0
        #: cancelled events still occupying heap entries.
        self._stale = 0
        self._compactions = 0
        #: recycled transient Event objects (see schedule_transient).
        self._free: List[Event] = []
        #: optional per-event hook called as ``trace(time, callback)``
        #: just before each event's callback runs.  ``None`` (the
        #: default) costs one local truth test per event; the runtime
        #: invariant sanitizer installs its checker here.
        self.trace = None
        #: observers of fast-forward jumps, called as ``fn(old_now, new_now)``
        #: after the clock and heap have been shifted (sanitizer hooks here).
        self.ff_listeners: List[Callable[[float, float], None]] = []
        #: number of fast_forward_to() jumps and total microseconds skipped.
        self.fast_forwards = 0
        self.fast_forwarded_us = 0.0
        self._rngs: dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    @property
    def heap_compactions(self) -> int:
        """How many times the stale-dominated heap was rebuilt."""
        return self._compactions

    def events_by_category(self) -> dict:
        """Executed-event counts keyed by :class:`EventCategory` name.

        The names are lowercase (``traffic``, ``mac``, ``phy``,
        ``timer``, ``other``) so the mapping drops straight into JSON
        reports.  Counts are cumulative since construction, like
        :attr:`events_executed`.
        """
        return {
            category.name.lower(): self._cat_counts[category]
            for category in EventCategory
        }

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named deterministic RNG stream.

        Streams are created on first use, seeded from ``(seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._rngs[name] = stream
        return stream

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` us from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Inlined schedule_at: this is the hottest allocation site in
        # saturated cells, one delegation frame matters.
        time = self._now + delay
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, prio, seq, callback, args, self, category)
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, prio, seq, callback, args, self, category)
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    def schedule_many(
        self,
        requests: Iterable[Sequence],
        *,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> List[Event]:
        """Batch-schedule ``(delay, callback, *args)`` tuples.

        All delays are relative to the current time and must be
        non-negative.  Returns the created events in request order (the
        order that fixes same-timestamp ties).
        """
        batch = [tuple(request) for request in requests]
        for request in batch:
            if request[0] < 0:
                raise SimulationError(f"negative delay {request[0]!r}")
        prio = priority if type(priority) is int else int(priority)
        now = self._now
        heap = self._heap
        seq = self._seq
        events: List[Event] = []
        append = events.append
        for request in batch:
            time = now + request[0]
            event = Event(time, prio, seq, request[1], request[2:], self, category)
            event._in_heap = True
            heappush(heap, (time, prio, seq, event))
            seq += 1
            append(event)
        self._live += len(events)
        self._seq = seq
        return events

    def schedule_transient(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Schedule a fire-and-forget callback, recycling event objects.

        Like :meth:`schedule`, but the kernel takes the returned event
        back into a free list once it has executed, after which the
        object may already represent a *different* scheduled callback.
        Callers therefore MUST NOT retain the returned event past its
        execution: no :meth:`reschedule`, and no :meth:`Event.cancel`
        after it may have fired (cancelling an unrelated recycled
        occupant would silently drop that event).  Cancelling strictly
        *before* execution is safe — a cancelled transient is not
        recycled.  Use for per-frame/per-packet events nobody keeps:
        wire deliveries, channel frame-ends, one-shot notifications.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = prio
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.category = category
        else:
            event = Event(time, prio, seq, callback, args, self, category)
            event._transient = True
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    def schedule_transient_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Absolute-time variant of :meth:`schedule_transient`.

        Needed when the target timestamp was computed elsewhere and must
        be hit exactly: going through a relative delay re-associates the
        float arithmetic (``now + (t - now)``), which can land one ulp
        off ``t``.  Same recycling contract as
        :meth:`schedule_transient`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = prio
            event.seq = seq
            event.callback = callback
            event.args = args
            event.cancelled = False
            event.category = category
        else:
            event = Event(time, prio, seq, callback, args, self, category)
            event._transient = True
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    def call_soon(
        self,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Schedule ``callback`` at the current time (after current event)."""
        return self.schedule_at(
            self._now, callback, *args, priority=priority, category=category
        )

    def reschedule(
        self,
        event: Optional[Event],
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Like :meth:`schedule`, but recycles ``event`` when possible.

        ``event`` may be ``None`` (plain allocation) or a previously
        returned event.  A *spent* event — already executed or already
        discarded from the heap — is reused in place; an event still
        queued (including a lazily-cancelled one) cannot be touched and a
        fresh event is allocated instead.  Either way the returned event
        is the live one.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self._now + delay
        if event is None or event._in_heap or event._kernel is not self:
            return self.schedule_at(
                time, callback, *args, priority=priority, category=category
            )
        # Inlined reuse path (mirrors reschedule_at, minus the past-time
        # check: delay >= 0 guarantees time >= now).
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.priority = prio
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.category = category
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    def reschedule_at(
        self,
        event: Optional[Event],
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
        category: int = 0,
    ) -> Event:
        """Absolute-time variant of :meth:`reschedule`."""
        if event is None or event._in_heap or event._kernel is not self:
            return self.schedule_at(
                time, callback, *args, priority=priority, category=category
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        prio = priority if type(priority) is int else int(priority)
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.priority = prio
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.category = category
        event._in_heap = True
        self._live += 1
        heappush(self._heap, (time, prio, seq, event))
        return event

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel an event; ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # lazy-cancellation accounting
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """An in-heap event was cancelled (called by :meth:`Event.cancel`)."""
        self._live -= 1
        stale = self._stale + 1
        self._stale = stale
        if stale > _COMPACT_MIN_STALE and stale > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without stale entries.

        In-place (``heap[:] = ...``) so the loop in :meth:`run`, which
        binds the heap list locally, keeps seeing the same object.  The
        sort key ``(time, priority, seq)`` is a total order, so the
        rebuilt heap pops in exactly the same sequence.
        """
        heap = self._heap
        live_entries = []
        keep = live_entries.append
        for entry in heap:
            event = entry[3]
            if event.cancelled:
                event._in_heap = False
            else:
                keep(entry)
        heap[:] = live_entries
        heapify(heap)
        self._stale = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Events scheduled exactly at ``until`` are *not* executed; the
        clock is left at ``until`` so consecutive ``run`` calls compose.
        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        # Local bindings and sentinels shave per-iteration work from the
        # hottest loop in the repository: float("inf") replaces the
        # ``until is not None`` test, -1 the ``max_events`` one.
        heap = self._heap
        heappop = heapq.heappop
        free = self._free
        cat_counts = self._cat_counts
        trace = self.trace
        horizon = float("inf") if until is None else until
        budget = -1 if max_events is None else max_events
        try:
            while heap:
                if self._stopped:
                    break
                if executed == budget:
                    break
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    self._stale -= 1
                    event._in_heap = False
                    continue
                time = entry[0]
                if time >= horizon and until is not None:
                    # (The second test matters only for events scheduled
                    # at +inf with no horizon: those still execute.)
                    self._now = until
                    break
                heappop(heap)
                self._live -= 1
                event._in_heap = False
                self._now = time
                callback, args = event.callback, event.args
                # Break reference cycles and make double-execution obvious.
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                # Read the category before the callback runs: a recycled
                # transient may already describe a different event after.
                cat_counts[event.category] += 1
                if event._transient and len(free) < 512:
                    free.append(event)
                if trace is not None:
                    trace(time, callback)
                callback(*args)
                executed += 1
                self._events_executed += 1
            else:
                # Queue drained completely.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: float, **kwargs: Any) -> float:
        """Run for ``duration`` us past the current time."""
        return self.run(until=self._now + duration, **kwargs)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            _, _, _, event = heapq.heappop(heap)
            self._stale -= 1
            event._in_heap = False
        return heap[0][0] if heap else None

    def pending_count(self) -> int:
        """Number of non-cancelled events currently queued.  O(1)."""
        return self._live

    def next_pending(self, category: Optional[int] = None) -> Optional[float]:
        """Earliest pending event time, optionally filtered by category.

        Unlike :meth:`peek` this is a full O(n) heap walk — it skips
        cancelled entries without popping them and can answer "when is
        the next *timeline* event?" (``category=EventCategory.OTHER``),
        which the fast-forward planner uses to bound a jump.  Returns
        ``None`` when nothing matching is queued.
        """
        best: Optional[float] = None
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                continue
            if category is not None and event.category != category:
                continue
            if best is None or entry[0] < best:
                best = entry[0]
        return best

    # ------------------------------------------------------------------
    # fast-forward
    # ------------------------------------------------------------------
    def fast_forward_to(self, target: float) -> None:
        """Jump the clock to ``target``, shifting pending work with it.

        Every pending non-timeline event (category TRAFFIC/MAC/PHY/TIMER)
        keeps its *relative* distance to "now": its timestamp moves by
        ``target - now``, so in-flight transmissions, backoff countdowns
        and periodic timers resume with the exact phase they had.
        Timeline events (category OTHER — scenario perturbations, chaos
        injections) stay at their absolute times: jumping past one is a
        planner bug and raises :class:`SimulationError`.

        The caller owns the semantics of the skipped interval (crediting
        accumulators, shifting component-held absolute timestamps); the
        kernel only moves the clock and the heap.  Listeners registered
        in :attr:`ff_listeners` are notified as ``fn(old_now, new_now)``
        after the jump, which is how the runtime sanitizer distinguishes
        a sanctioned skip from a monotonicity violation.
        """
        if self._running:
            raise SimulationError("fast_forward_to() inside run()")
        delta = target - self._now
        if delta < 0:
            raise SimulationError(
                f"cannot fast-forward to {target!r}, now is {self._now!r}"
            )
        if delta == 0:
            return
        heap = self._heap
        rebuilt: List[Tuple[float, int, int, Event]] = []
        keep = rebuilt.append
        for entry in heap:
            event = entry[3]
            if event.cancelled:
                event._in_heap = False
                continue
            if event.category == EventCategory.OTHER:
                if entry[0] < target:
                    raise SimulationError(
                        f"timeline event at {entry[0]!r} pending before "
                        f"fast-forward target {target!r}"
                    )
                keep(entry)
                continue
            new_time = entry[0] + delta
            event.time = new_time
            keep((new_time, entry[1], entry[2], event))
        heap[:] = rebuilt
        heapify(heap)
        self._stale = 0
        old_now = self._now
        self._now = target
        self.fast_forwards += 1
        self.fast_forwarded_us += delta
        for listener in self.ff_listeners:
            listener(old_now, target)
