"""The discrete-event simulation kernel."""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional

from repro.sim.event import Event, EventPriority


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Time is floating-point microseconds starting at 0.  Events scheduled
    at identical timestamps run in ``(priority, insertion order)`` order.

    The kernel also owns named deterministic RNG streams
    (:meth:`rng`): every component draws randomness from a stream keyed
    by its own name, so adding a component never perturbs the draws seen
    by the others, and runs are reproducible given the seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._rngs: dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for budget checks in tests)."""
        return self._events_executed

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named deterministic RNG stream.

        Streams are created on first use, seeded from ``(seed, name)``.
        """
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._rngs[name] = stream
        return stream

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` us from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        event = Event(time, int(priority), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_soon(
        self,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.NORMAL,
    ) -> Event:
        """Schedule ``callback`` at the current time (after current event)."""
        return self.schedule_at(self._now, callback, *args, priority=priority)

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel an event; ``None`` is accepted and ignored."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or ``stop()``.

        Events scheduled exactly at ``until`` are *not* executed; the
        clock is left at ``until`` so consecutive ``run`` calls compose.
        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._heap:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time >= until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                callback, args = event.callback, event.args
                # Break reference cycles and make double-execution obvious.
                event.callback = None  # type: ignore[assignment]
                event.args = ()
                callback(*args)
                executed += 1
                self._events_executed += 1
            else:
                # Queue drained completely.
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: float, **kwargs: Any) -> float:
        """Run for ``duration`` us past the current time."""
        return self.run(until=self._now + duration, **kwargs)

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending_count(self) -> int:
        """Number of non-cancelled events currently queued."""
        return sum(1 for e in self._heap if not e.cancelled)
