"""Events and event priorities for the simulation kernel."""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same timestamp.

    Lower values run first.  The MAC relies on this ordering to get
    slot-synchronous collision semantics right:

    * ``TX_START`` — a station whose backoff expired this slot commits to
      transmitting before anyone reacts to new carrier.
    * ``PHY`` — frame-end / reception events.
    * ``NORMAL`` — default application and protocol timers.
    * ``MONITOR`` — metric sampling sees the post-update state.
    """

    TX_START = 0
    PHY = 1
    HIGH = 2
    NORMAL = 5
    LOW = 8
    MONITOR = 10


class Event:
    """A scheduled callback.

    Events are created by :meth:`repro.sim.kernel.Simulator.schedule` and
    support *lazy cancellation*: :meth:`cancel` marks the event dead and
    the kernel discards it when it reaches the head of the heap.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event dead; the kernel will skip it."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled and self.callback is not None

    def _sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} prio={self.priority} {name} {state}>"
