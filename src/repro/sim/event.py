"""Events and event priorities for the simulation kernel."""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class EventCategory(enum.IntEnum):
    """Coarse accounting buckets for kernel events.

    Every scheduled event carries a category tag so the kernel can
    answer *where the events went* (``Simulator.events_by_category``),
    not just how many executed.  The buckets mirror the simulator's
    layers:

    * ``TRAFFIC`` — offered-load machinery: source timers, wired-link
      deliveries, demand-driven pump wakes, transport timers.
    * ``MAC`` — 802.11 state machine: backoff countdowns, ACK
      responses and timeouts, burst continuations, polling cycles.
    * ``PHY`` — frame-end / reception events on the channel.
    * ``TIMER`` — periodic housekeeping (TBR fill/adjust, monitors).
    * ``OTHER`` — everything untagged.
    """

    OTHER = 0
    TRAFFIC = 1
    MAC = 2
    PHY = 3
    TIMER = 4


#: Number of category buckets (sizes the kernel's counter array).
NUM_CATEGORIES = 5


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same timestamp.

    Lower values run first.  The MAC relies on this ordering to get
    slot-synchronous collision semantics right:

    * ``TX_START`` — a station whose backoff expired this slot commits to
      transmitting before anyone reacts to new carrier.
    * ``PHY`` — frame-end / reception events.
    * ``NORMAL`` — default application and protocol timers.
    * ``MONITOR`` — metric sampling sees the post-update state.
    """

    TX_START = 0
    PHY = 1
    HIGH = 2
    NORMAL = 5
    LOW = 8
    MONITOR = 10


class Event:
    """A scheduled callback.

    Events are created by :meth:`repro.sim.kernel.Simulator.schedule` and
    support *lazy cancellation*: :meth:`cancel` marks the event dead and
    the kernel discards it when it reaches the head of the heap.  The
    kernel keeps live/stale counts (via ``_kernel``) so cancellation is
    O(1) and heaps dominated by dead entries can be compacted.

    A spent event (executed or discarded, i.e. no longer in the heap)
    can be recycled through :meth:`Simulator.reschedule`, which saves an
    allocation on high-churn timers such as MAC backoff and ACK-timeout.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "cancelled",
        "category",
        "_kernel",
        "_in_heap",
        "_transient",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kernel: Optional[object] = None,
        category: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: accounting bucket (:class:`EventCategory`) counted on execution.
        self.category = category
        #: owning kernel, informed of cancellations for O(1) accounting.
        self._kernel = kernel
        #: True while a heap entry references this event.
        self._in_heap = False
        #: True for fire-and-forget events the kernel may recycle after
        #: execution (see Simulator.schedule_transient).
        self._transient = False

    def cancel(self) -> None:
        """Mark this event dead; the kernel will skip it."""
        if not self.cancelled:
            self.cancelled = True
            if self._in_heap and self._kernel is not None:
                self._kernel._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not self.cancelled and self.callback is not None

    def _sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} prio={self.priority} {name} {state}>"
