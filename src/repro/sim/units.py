"""Time and rate unit helpers.

The simulator's time base is the floating-point microsecond.  These
helpers exist so call sites read as intent (``us_from_ms(40)``) rather
than as magic multiplications.
"""

US_PER_MS = 1_000.0
US_PER_S = 1_000_000.0


def us_from_ms(ms: float) -> float:
    """Convert milliseconds to microseconds."""
    return ms * US_PER_MS


def us_from_s(s: float) -> float:
    """Convert seconds to microseconds."""
    return s * US_PER_S


def s_from_us(us: float) -> float:
    """Convert microseconds to seconds."""
    return us / US_PER_S


def ms_from_us(us: float) -> float:
    """Convert microseconds to milliseconds."""
    return us / US_PER_MS


def mbps_from_bytes_per_us(bytes_per_us: float) -> float:
    """Convert a byte-per-microsecond rate to megabits per second.

    1 byte/us = 8 bits/us = 8 Mbps.
    """
    return bytes_per_us * 8.0


def throughput_mbps(payload_bytes: float, elapsed_us: float) -> float:
    """Payload throughput in Mbps for ``payload_bytes`` over ``elapsed_us``.

    Returns 0.0 for a zero-length interval rather than raising, because
    metric windows may legitimately be empty.
    """
    if elapsed_us <= 0.0:
        return 0.0
    return payload_bytes * 8.0 / elapsed_us
