"""Steady-state detection and analytic fast-forward (ROADMAP item 2a).

Saturated cells spend almost all simulated time in a periodic steady
state: every backlogged station's queue stays pegged, the AP drains at a
fixed per-station cycle, and nothing structural changes until the next
timeline perturbation.  Grinding through every DCF/PHY event of such a
stretch costs O(packets); this module collapses it to O(transitions).

The machinery has three parts:

* :class:`SteadyStateDetector` — watches a calibration window and
  declares steady state only when the workload is *provably* in the
  regime the paper's analytic model describes: saturated downlink UDP,
  stable membership (keyed on object identity, never station names),
  zero MAC retries, and measured occupancy shares that agree with
  ``analysis.model``'s DCF/TBR share equations (Eqs 4 and 11, weighted
  variants included).
* the planner inside :class:`FastForwardEngine` — measures per-
  accumulator rates over the calibration window, synthesizes the
  skipped interval's contribution (flow bytes, occupancy/exchange
  counts, queue drops, wire deliveries, channel busy time, TBR token
  spend/fill and rate history), shifts every component-held absolute
  timestamp via the ``fast_forward(delta_us)`` protocol, and jumps the
  kernel with :meth:`Simulator.fast_forward_to`.
* the engagement contract — a jump never crosses a pending timeline
  event (category OTHER is pinned in the kernel), never happens within
  ``min_skip_us`` of one, and anything the detector cannot certify
  (TCP flows, churn, chaos, loss windows, rate switches mid-window)
  simply runs event-by-event, byte-identical to a run without the flag.

Enable with ``REPRO_FASTFWD=1`` (or ``fast_forward=True`` on
``ScenarioRuntime``/``run_spec``); see EXPERIMENTS.md "Fast-forward".
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.sim.event import EventCategory
from repro.sim.units import us_from_s

#: environment toggle: "1"/"true"/"yes"/"on" enable fast-forward.
FASTFWD_ENV = "REPRO_FASTFWD"

_TRUTHY = {"1", "true", "yes", "on"}


def fastforward_enabled() -> bool:
    """Is fast-forward requested via the environment?"""
    return os.environ.get(FASTFWD_ENV, "").strip().lower() in _TRUTHY


@dataclass
class FastForwardConfig:
    """Engagement tunables (defaults chosen for long-horizon runs)."""

    #: event-by-event measurement window before each jump decision.
    calibration_us: float = 400_000.0
    #: smallest interval worth synthesizing; anything closer to the next
    #: timeline event (or the horizon) runs event-by-event.  Also the
    #: reason short golden windows are byte-identical under the flag:
    #: a window shorter than ``calibration_us + min_skip_us`` can never
    #: jump.
    min_skip_us: float = 1_000_000.0
    #: absolute tolerance between measured occupancy shares and the
    #: analytic model's prediction (loose: the model gates *regime*
    #: membership, the measured rates drive the synthesis).
    share_tolerance: float = 0.2
    #: max backlog drift across the window still called stable: the
    #: larger of this packet count and half the starting backlog (a
    #: shared drop-tail FIFO keeps per-station backlogs pegged only in
    #: aggregate — individual stations legitimately swing by a dozen
    #: packets while the cell is perfectly steady).
    backlog_jitter: int = 4


class _Snapshot:
    """Accumulator and membership state at a calibration-window start."""

    __slots__ = (
        "flow_ids", "station_idents", "queue_idents", "bucket_names",
        "backlogs", "flow_bytes", "flow_segments", "occupancy",
        "exchanges", "drops", "wire_delivered", "busy_us", "spent_us",
        "bad_exchanges", "other_events",
    )


class FastForwardEngine:
    """Runs a cell with analytic skips over certified steady stretches.

    Drop-in replacement for ``cell.run(seconds, warmup_seconds=...)``:
    statically ineligible workloads (any non-UDP or non-downlink flow)
    fall back to exactly that call, and eligible ones interleave
    event-by-event calibration windows with synthesized jumps bounded
    by the next pending timeline event.
    """

    def __init__(
        self, cell, config: Optional[FastForwardConfig] = None
    ) -> None:
        self.cell = cell
        self.config = config if config is not None else FastForwardConfig()
        #: jumps taken (mirrors ``sim.fast_forwards`` for this engine).
        self.jumps = 0
        #: AP MAC exchanges in the current window that needed a retry or
        #: failed outright — any of these voids the steady-state claim.
        self._bad_exchanges = 0
        self._listener_installed = False

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def _statically_eligible(self) -> bool:
        """Only saturable downlink-UDP workloads are ever fast-forwarded.

        TCP's windowed feedback loop has no closed-form steady cycle in
        ``analysis.model``'s terms, and uplink flows add station-side
        contention the planner does not synthesize — both run
        event-by-event always.
        """
        flows = self.cell.flows
        if not flows:
            return False
        for flow in flows:
            if flow.kind != "udp" or flow.direction != "down":
                return False
        return True

    def _on_ap_exchange(self, report) -> None:
        if report.attempts > 1 or not report.success:
            self._bad_exchanges += 1

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, seconds: float, *, warmup_seconds: float = 0.0) -> None:
        cell = self.cell
        if not self._statically_eligible():
            cell.run(seconds, warmup_seconds=warmup_seconds)
            return
        if not self._listener_installed:
            cell.ap.mac.add_completion_listener(self._on_ap_exchange)
            self._listener_installed = True
        sim = cell.sim
        if warmup_seconds > 0:
            sim.run(until=sim.now + us_from_s(warmup_seconds))
            cell.reset_measurements()
        until = sim.now + us_from_s(seconds)
        config = self.config
        while sim.now < until:
            window_start = sim.now
            snap = self._snapshot()
            sim.run(until=min(window_start + config.calibration_us, until))
            if sim.now >= until:
                break
            window = sim.now - window_start
            if window <= 0:
                continue
            landmark = sim.next_pending(EventCategory.OTHER)
            target = until if landmark is None else min(landmark, until)
            delta = target - sim.now
            if delta < config.min_skip_us:
                continue
            if not self._steady(snap):
                continue
            self._credit(snap, window, delta)
            cell.fast_forward(delta)
            sim.fast_forward_to(target)
            self.jumps += 1

    # ------------------------------------------------------------------
    # detector
    # ------------------------------------------------------------------
    def _snapshot(self) -> _Snapshot:
        cell = self.cell
        scheduler = cell.scheduler
        snap = _Snapshot()
        # Membership keyed on *object identity* (station/queue instances,
        # bucket keys), never on name matching: a station literally named
        # "steady" (the bursty family ships one) is just another station,
        # and a leave/rejoin under the same name changes the identity set.
        snap.flow_ids = frozenset(id(flow) for flow in cell.flows)
        snap.station_idents = frozenset(
            (name, id(station)) for name, station in cell.stations.items()
        )
        snap.queue_idents = frozenset(
            (name, id(queue)) for name, queue in scheduler.queues.items()
        )
        buckets = getattr(scheduler, "buckets", None)
        snap.bucket_names = frozenset(buckets) if buckets is not None else frozenset()
        snap.backlogs = {
            name: scheduler.backlog(name) for name in cell.stations
        }
        snap.flow_bytes = {
            id(flow): flow.stats.bytes_delivered for flow in cell.flows
        }
        snap.flow_segments = {
            id(flow): flow.stats.segments_delivered for flow in cell.flows
        }
        snap.occupancy = cell.usage.occupancies_us()
        snap.exchanges = cell.usage.exchange_counts()
        snap.drops = {
            name: queue.dropped for name, queue in scheduler.queues.items()
        }
        snap.wire_delivered = cell.ap.downlink_wire.delivered
        snap.busy_us = self._channel_busy_us()
        snap.spent_us = (
            {name: bucket.spent_us for name, bucket in buckets.items()}
            if buckets is not None
            else {}
        )
        snap.bad_exchanges = self._bad_exchanges
        snap.other_events = cell.sim._cat_counts[EventCategory.OTHER]
        return snap

    def _channel_busy_us(self) -> float:
        channel = self.cell.channel
        busy = channel._busy_accum
        if channel.busy and channel.busy_start is not None:
            busy += channel.sim.now - channel.busy_start
        return busy

    def _steady(self, snap: _Snapshot) -> bool:
        cell = self.cell
        scheduler = cell.scheduler
        # (a) flow set unchanged and still all-eligible, with no source
        # stopped (a quiesced flow means churn/chaos touched the cell).
        flows = cell.flows
        if frozenset(id(flow) for flow in flows) != snap.flow_ids:
            return False
        for flow in flows:
            if flow.kind != "udp" or flow.direction != "down":
                return False
            if getattr(flow.sender, "stop_us", None) is not None:
                return False
        # (b) membership stable across the window, by identity.
        if frozenset(
            (name, id(station)) for name, station in cell.stations.items()
        ) != snap.station_idents:
            return False
        if frozenset(
            (name, id(queue)) for name, queue in scheduler.queues.items()
        ) != snap.queue_idents:
            return False
        buckets = getattr(scheduler, "buckets", None)
        bucket_names = frozenset(buckets) if buckets is not None else frozenset()
        if bucket_names != snap.bucket_names:
            return False
        # (c) a timeline event fired *inside* the calibration window: the
        # measured rates blend the before/after regimes and must not
        # seed a synthesis (the very next window is clean again).
        if (
            cell.sim._cat_counts[EventCategory.OTHER]
            != snap.other_events
        ):
            return False
        # (d) saturation: every station feeding a downlink flow stayed
        # backlogged, with only packet-level jitter (relative for large
        # backlogs — see FastForwardConfig.backlog_jitter).
        fed = {flow.station.address for flow in flows}
        for name in fed:
            before = snap.backlogs.get(name, 0)
            now = scheduler.backlog(name)
            if before <= 0 or now <= 0:
                return False
            limit = max(self.config.backlog_jitter, before // 2)
            if abs(now - before) > limit:
                return False
        # (e) a clean channel: any retried or failed AP exchange in the
        # window (loss models, degrade windows, collisions) disqualifies.
        if self._bad_exchanges != snap.bad_exchanges:
            return False
        # (f) the analytic model agrees this is its regime.
        return self._shares_match_model(snap)

    def _shares_match_model(self, snap: _Snapshot) -> bool:
        """Compare window occupancy shares with Eq 4 / Eq 11 predictions."""
        from repro.analysis.model import (
            NodeSpec,
            dcf_time_shares,
            tf_time_shares,
        )

        cell = self.cell
        scheduler = cell.scheduler
        occupancy = cell.usage.occupancies_us()
        deltas = {
            name: occupancy.get(name, 0.0) - snap.occupancy.get(name, 0.0)
            for name in cell.stations
        }
        total = sum(deltas.values())
        if total <= 0.0:
            return False
        packet_bytes = {
            flow.station.address: flow.sender.packet_bytes
            for flow in cell.flows
        }
        rate_for = cell.ap.rate_controller.rate_for
        weights = getattr(
            getattr(scheduler, "config", None), "weights", {}
        ) or {}
        nodes = [
            NodeSpec(
                name,
                rate_for(name),
                packet_bytes=packet_bytes.get(name, 1500),
                weight=weights.get(name, 1.0),
            )
            for name in cell.stations
        ]
        if getattr(scheduler, "buckets", None) is not None:
            predicted = tf_time_shares(nodes)
        else:
            predicted = dcf_time_shares(nodes, transport="udp")
        tolerance = self.config.share_tolerance
        for name in cell.stations:
            measured = deltas[name] / total
            if abs(measured - predicted[name]) > tolerance:
                return False
        return True

    # ------------------------------------------------------------------
    # planner: synthesize the skipped interval
    # ------------------------------------------------------------------
    def _credit(self, snap: _Snapshot, window: float, delta: float) -> None:
        """Fold ``delta`` us of steady state into every accumulator.

        Rates are measured over the just-completed calibration window;
        integer accumulators are credited with the rounded product (one
        packet of rounding error per jump, bounded by the jump count,
        not the horizon).  TBR token *fills* are exact (``rate × Δ`` by
        construction); spend and occupancy ride the measured cycle.
        """
        cell = self.cell
        scale = delta / window
        for flow in cell.flows:
            stats = flow.stats
            fid = id(flow)
            stats.bytes_delivered += int(round(
                (stats.bytes_delivered - snap.flow_bytes[fid]) * scale
            ))
            stats.segments_delivered += int(round(
                (stats.segments_delivered - snap.flow_segments[fid]) * scale
            ))
        usage = cell.usage
        occupancy = usage.occupancies_us()
        exchanges = usage.exchange_counts()
        for name in cell.stations:
            occ_delta = occupancy.get(name, 0.0) - snap.occupancy.get(name, 0.0)
            exch_delta = exchanges.get(name, 0) - snap.exchanges.get(name, 0)
            usage.credit(
                name,
                occ_delta * scale,
                int(round(exch_delta * scale)),
            )
        scheduler = cell.scheduler
        for name, queue in scheduler.queues.items():
            queue.dropped += int(round(
                (queue.dropped - snap.drops.get(name, 0)) * scale
            ))
        wire = cell.ap.downlink_wire
        wire.delivered += int(round(
            (wire.delivered - snap.wire_delivered) * scale
        ))
        cell.channel._busy_accum += (
            self._channel_busy_us() - snap.busy_us
        ) * scale
        buckets = getattr(scheduler, "buckets", None)
        if buckets is not None:
            for name, bucket in buckets.items():
                spend = bucket.spent_us - snap.spent_us.get(name, 0.0)
                bucket.spent_us += spend * scale
                bucket.filled_us += bucket.rate * delta
            # The skipped interval's ADJUSTRATEEVENTs never fire (their
            # timer phase shifts past them); in steady state they would
            # have re-recorded the converged rates, so the history gets
            # one entry per skipped window.
            interval = scheduler.config.adjust_interval_us
            if interval > 0:
                rates = {
                    name: bucket.rate for name, bucket in buckets.items()
                }
                for _ in range(int(delta // interval)):
                    scheduler.rate_history.append(dict(rates))
