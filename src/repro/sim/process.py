"""Generator-based processes on top of the event kernel.

A process is a generator that yields:

* a ``float`` — sleep for that many microseconds;
* a :class:`Sleep` — same, explicit;
* a :class:`Condition` returned by :func:`waituntil` — resumed when
  another party calls :meth:`Condition.fire`.

Processes are a convenience for traffic sources, tasks and tests; the
performance-critical protocol machinery (MAC, TBR) uses plain callbacks.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.event import Event, EventPriority
from repro.sim.kernel import Simulator


class Sleep:
    """Explicit sleep request yielded by a process."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("sleep duration must be non-negative")
        self.duration = duration


class Condition:
    """A one-shot wakeup handle; create via :func:`waituntil`."""

    __slots__ = ("_process", "fired", "value")

    def __init__(self) -> None:
        self._process: Optional["Process"] = None
        self.fired = False
        self.value: Any = None

    def fire(self, value: Any = None) -> None:
        """Wake the waiting process (idempotent)."""
        if self.fired:
            return
        self.fired = True
        self.value = value
        if self._process is not None:
            self._process._resume(value)


def waituntil() -> Condition:
    """Create a condition a process can yield on."""
    return Condition()


class Process:
    """Drives a generator against the simulator clock."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = "process") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.finished = False
        self.result: Any = None
        self._pending: Optional[Event] = None
        sim.call_soon(self._step, None)

    def stop(self) -> None:
        """Terminate the process without running it further."""
        if self.finished:
            return
        self.finished = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.gen.close()

    def _resume(self, value: Any) -> None:
        if not self.finished:
            self.sim.call_soon(self._step, value)

    def _step(self, send_value: Any) -> None:
        if self.finished:
            return
        self._pending = None
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as done:
            self.finished = True
            self.result = done.value
            return
        if isinstance(yielded, Sleep):
            delay = yielded.duration
        elif isinstance(yielded, (int, float)):
            delay = float(yielded)
        elif isinstance(yielded, Condition):
            if yielded.fired:
                self.sim.call_soon(self._step, yielded.value)
            else:
                yielded._process = self
            return
        else:
            self.finished = True
            raise TypeError(
                f"process {self.name!r} yielded unsupported {yielded!r}"
            )
        self._pending = self.sim.schedule(
            delay, self._step, None, priority=EventPriority.NORMAL
        )
