"""Measurement primitives: counters, time-weighted values, series.

These are deliberately simple and allocation-light; experiments sample
them at the end of a run (or periodically via ``EventPriority.MONITOR``
events so samples observe post-update state).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing count with an interval snapshot helper."""

    __slots__ = ("value", "_mark")

    def __init__(self) -> None:
        self.value = 0.0
        self._mark = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def mark(self) -> None:
        """Remember the current value; :meth:`since_mark` reports the delta."""
        self._mark = self.value

    def since_mark(self) -> float:
        return self.value - self._mark


class TimeWeightedValue:
    """Tracks the time-weighted average of a piecewise-constant value.

    Used for queue lengths, token levels and channel business fractions.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0) -> None:
        self.sim = sim
        self._value = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._origin = sim.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted mean from construction (or :meth:`reset`) to now."""
        now = self.sim.now
        total = self._weighted_sum + self._value * (now - self._last_change)
        elapsed = now - self._origin
        if elapsed <= 0:
            return self._value
        return total / elapsed

    def reset(self) -> None:
        self._weighted_sum = 0.0
        self._last_change = self.sim.now
        self._origin = self.sim.now


class TimeSeries:
    """Appends ``(time, value)`` samples; supports simple reductions."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def __len__(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        return [v for _, v in self.samples]

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(v for _, v in self.samples) / len(self.samples)

    def last(self) -> Optional[Tuple[float, float]]:
        return self.samples[-1] if self.samples else None


class IntervalAccumulator:
    """Buckets a running total into fixed-width time intervals.

    Feed it ``(time, amount)`` observations; it returns per-interval sums,
    which is exactly the shape the paper's 1-second busy-interval analysis
    (Figure 5) needs.
    """

    def __init__(self, width_us: float) -> None:
        if width_us <= 0:
            raise ValueError("interval width must be positive")
        self.width_us = width_us
        self._buckets: dict[int, float] = {}

    def add(self, time_us: float, amount: float) -> None:
        index = int(time_us // self.width_us)
        self._buckets[index] = self._buckets.get(index, 0.0) + amount

    def buckets(self) -> List[Tuple[int, float]]:
        """Sorted ``(interval_index, total)`` pairs for non-empty intervals."""
        return sorted(self._buckets.items())

    def totals(self) -> List[float]:
        return [total for _, total in self.buckets()]


class WelfordStat:
    """Streaming mean/variance (Welford's algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)
