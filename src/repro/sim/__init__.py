"""Discrete-event simulation kernel.

A minimal, deterministic discrete-event engine used by every other
subsystem in this repository.  Time is measured in floating-point
microseconds (``us``); 1 Mbps equals exactly 1 bit per microsecond, which
keeps PHY airtime arithmetic free of unit conversions.

The kernel orders events by ``(time, priority, sequence)``.  Priorities let
the 802.11 MAC express slot-synchronous semantics (e.g. two stations whose
backoff expires in the same slot must both decide to transmit *before*
either observes the other's carrier).
"""

from repro.sim.event import Event, EventCategory, EventPriority
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.timers import PeriodicTimer
from repro.sim.process import Process, Sleep, waituntil
from repro.sim.monitor import (
    Counter,
    TimeWeightedValue,
    TimeSeries,
    IntervalAccumulator,
    WelfordStat,
)
from repro.sim.units import (
    US_PER_MS,
    US_PER_S,
    us_from_ms,
    us_from_s,
    s_from_us,
    ms_from_us,
    mbps_from_bytes_per_us,
    throughput_mbps,
)

__all__ = [
    "Event",
    "EventCategory",
    "EventPriority",
    "Simulator",
    "SimulationError",
    "PeriodicTimer",
    "Process",
    "Sleep",
    "waituntil",
    "Counter",
    "TimeWeightedValue",
    "TimeSeries",
    "IntervalAccumulator",
    "WelfordStat",
    "US_PER_MS",
    "US_PER_S",
    "us_from_ms",
    "us_from_s",
    "s_from_us",
    "ms_from_us",
    "mbps_from_bytes_per_us",
    "throughput_mbps",
]
