"""Runtime invariant sanitizer: make silent corruption loud.

The chaos events (AP outage, station crash, churn, loss bursts) tear
through every layer of the simulator, and the failure mode that matters
is never the crash itself — it is the *silent* inconsistency left
behind: a token rate stranded on a dead station, a pooled packet that
never came home, an event delivered to a MAC that already detached.
The sanitizer watches a run from the kernel's trace hook
(:attr:`repro.sim.kernel.Simulator.trace`) and raises a structured
:class:`InvariantViolation` the moment an invariant breaks, with the
component and simulated time attached.

Checks (each documented on its method):

* event-time monotonicity — the kernel clock never runs backwards;
* no event delivery to detached MACs — a shut-down MAC must have
  cancelled everything it had pending;
* TBR accounting — token rates non-negative, the rate *sum* stays
  ``~1.0``, bucket balances never exceed their depth, and — the chaos
  headline — the share held by *live* (associated) stations is not
  persistently below 1: a crashed station whose bucket survives
  strands its rate and shrinks everyone else's ``1/n_active``;
* end-of-run packet conservation — every pooled packet is either back
  in its pool or still legitimately referenced (queued, loaded in a
  MAC, in flight on the channel); anything else is a leak.

The sanitizer is *observation only*: it draws no randomness, schedules
no events and mutates no simulation state, so an enabled run executes
the exact same event sequence as a disabled one — goldens and event
budgets are byte-identical either way.  Enable it per-run with
``ScenarioRuntime(spec, sanitize=True)``, the scenario CLI's
``--sanitize`` flag, or globally via ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import os
from typing import Any, Iterator, List, Optional

#: Environment switch: ``1``/``true``/``yes`` enables the sanitizer for
#: every :class:`repro.scenario.builder.ScenarioRuntime` run.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Guard-style MAC callbacks that legitimately fire after a shutdown
#: (they are scheduled fire-and-forget and open with an ``if
#: self._current is None: return`` guard): not violations.
_BENIGN_DETACHED = frozenset({"_broadcast_done", "_transmit_burst_frame"})


def sanitize_enabled() -> bool:
    """True when :data:`SANITIZE_ENV` asks for sanitized runs."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1", "true", "yes",
    )


class InvariantViolation(AssertionError):
    """A runtime invariant broke: ``component`` at ``t_us``, ``detail``.

    Subclasses ``AssertionError`` so a violation fails a test run
    loudly even under harnesses that special-case assertion failures.
    """

    def __init__(self, component: str, t_us: float, detail: str) -> None:
        self.component = component
        self.t_us = t_us
        self.detail = detail
        super().__init__(
            f"[sanitize] {component} @ {t_us:.1f}us: {detail}"
        )


# ----------------------------------------------------------------------
# pooled-packet census (shared with the scenario runner's leak report)
# ----------------------------------------------------------------------
def _iter_scheduler_packets(scheduler: Any) -> Iterator[Any]:
    """Every packet currently queued in an AP scheduler, any discipline
    (per-station queues, plus the shared FIFO when there is one)."""
    for queue in getattr(scheduler, "queues", {}).values():
        yield from queue.queue
    fifo = getattr(scheduler, "_fifo", None)
    if fifo is not None:
        yield from fifo


def live_pooled_packets(cell: Any) -> List[Any]:
    """Pooled packets still legitimately alive in ``cell``.

    A pooled packet (one whose ``_pool`` is set — the release hand-off
    disowns it) may be: queued in the AP's downlink scheduler, loaded
    as the AP MAC's current frame, or riding an in-flight transmission
    on the channel.  Everything else must already be back in the pool.

    Only packets owned by *this cell's* pool count: on a campus, a
    coupled co-channel transmission appears in the neighbour's
    ``channel.active`` too, and crediting that foreign packet here
    would corrupt the neighbour's conservation arithmetic.
    """
    live = []
    seen = set()
    own_pool = cell.ap.packet_pool

    def note(packet: Any) -> None:
        if packet is None or id(packet) in seen:
            return
        if getattr(packet, "_pool", None) is own_pool:
            seen.add(id(packet))
            live.append(packet)

    for packet in _iter_scheduler_packets(cell.scheduler):
        note(packet)
    current = cell.ap.mac._current
    if current is not None:
        note(current.packet)
    for tx in cell.channel.active:
        note(tx.frame.packet)
    return live


def pool_leak(cell: Any) -> int:
    """Pooled packets unaccounted for: outstanding minus legitimately
    live.  0 on a healthy run; positive means packets were dropped on
    the floor without ``release()``; negative means a double-count in
    the census (both are bugs worth failing on)."""
    pool = cell.ap.packet_pool
    outstanding = pool.allocated + pool.reused - pool.recycled
    return outstanding - len(live_pooled_packets(cell))


# ----------------------------------------------------------------------
# the sanitizer
# ----------------------------------------------------------------------
class RuntimeSanitizer:
    """Invariant checks driven by the kernel's trace hook.

    Construct around a :class:`repro.node.cell.Cell`, :meth:`install`,
    run, then :meth:`finalize` for the end-of-run conservation checks.
    Per-event work is two attribute reads and a couple of comparisons;
    the heavier TBR accounting walk runs at most once per simulated
    ``check_interval_us``.
    """

    def __init__(
        self,
        cell: Any,
        *,
        check_interval_us: float = 10_000.0,
        strand_grace_us: float = 2_000_000.0,
        strand_tolerance: float = 0.01,
    ) -> None:
        from repro.core.tbr import TbrScheduler
        from repro.mac.dcf import DcfMac

        self.cell = cell
        self.check_interval_us = check_interval_us
        self.strand_grace_us = strand_grace_us
        self.strand_tolerance = strand_tolerance
        self._mac_type = DcfMac
        self._tbr = (
            cell.scheduler
            if isinstance(cell.scheduler, TbrScheduler)
            else None
        )
        self._last_time = float("-inf")
        self._next_check = float("-inf")
        #: when the live-share deficit was first observed (None = whole).
        self._strand_since: Optional[float] = None
        self.events_seen = 0
        self.checks_run = 0

    # ------------------------------------------------------------------
    def install(self) -> "RuntimeSanitizer":
        """Attach to the cell's kernel.  Call before ``run()`` — the
        run loop binds the hook once at entry."""
        self.cell.sim.trace = self._trace
        self.cell.sim.ff_listeners.append(self.on_fast_forward)
        return self

    def uninstall(self) -> None:
        if self.cell.sim.trace is self._trace:
            self.cell.sim.trace = None
        try:
            self.cell.sim.ff_listeners.remove(self.on_fast_forward)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # fast-forward awareness
    # ------------------------------------------------------------------
    def on_fast_forward(self, old_now: float, new_now: float) -> None:
        """A sanctioned clock jump happened (kernel fast-forward).

        The monotonicity watermark advances to the jump target (a skip
        is not a regression), the periodic-check and strand clocks shift
        so skipped time does not count against their windows, and the
        full TBR accounting walk runs immediately at the boundary — the
        planner's synthesized token state (credited spend/fill, carried
        balances, shifted windows) must satisfy every normal-execution
        invariant, unweakened, the instant the skip lands.
        """
        delta = new_now - old_now
        self._last_time = new_now
        if self._next_check != float("-inf"):
            self._next_check += delta
        if self._strand_since is not None:
            self._strand_since += delta
        self._check_tbr(new_now)

    # ------------------------------------------------------------------
    # per-event hook
    # ------------------------------------------------------------------
    def _trace(self, time: float, callback: Any) -> None:
        self.events_seen += 1
        # Monotonicity: the heap's (time, priority, seq) order is a
        # total order, so time can never regress — if it does, either
        # the heap invariant or a negative-delay schedule broke.
        if time < self._last_time:
            raise InvariantViolation(
                "kernel", time,
                f"event time regressed ({self._last_time:.3f}us -> "
                f"{time:.3f}us)",
            )
        self._last_time = time

        # Detached-component delivery: a MAC that shut down cancelled
        # its backoff/ACK events and detached from the channel; any
        # non-guard event still firing on it escaped the teardown.
        target = getattr(callback, "__self__", None)
        if isinstance(target, self._mac_type):
            if not target.channel.is_attached(target):
                name = getattr(callback, "__name__", "?")
                if name not in _BENIGN_DETACHED:
                    raise InvariantViolation(
                        f"mac/{target.address}", time,
                        f"event {name!r} delivered to a detached MAC",
                    )

        if time >= self._next_check:
            self._next_check = time + self.check_interval_us
            self._check_tbr(time)

    # ------------------------------------------------------------------
    # periodic accounting checks
    # ------------------------------------------------------------------
    def _check_tbr(self, time: float) -> None:
        tbr = self._tbr
        if tbr is None:
            return
        self.checks_run += 1
        buckets = tbr.buckets
        if not buckets:
            self._strand_since = None
            return
        total = 0.0
        live = 0.0
        stations = self.cell.stations
        for name, bucket in buckets.items():
            if bucket.rate < 0:
                raise InvariantViolation(
                    f"tbr/{name}", time,
                    f"negative token rate {bucket.rate!r}",
                )
            # Balances legitimately go *negative* (COMPLETEEVENT
            # charges actual airtime after the fact; work-conserving
            # mode borrows unboundedly) but can never exceed depth —
            # fills are capped there.
            if bucket.tokens_us > bucket.depth_us + 1e-6:
                raise InvariantViolation(
                    f"tbr/{name}", time,
                    f"token balance {bucket.tokens_us:.1f}us exceeds "
                    f"bucket depth {bucket.depth_us:.1f}us",
                )
            total += bucket.rate
            if name in stations:
                live += bucket.rate
        if abs(total - 1.0) > 1e-6:
            raise InvariantViolation(
                "tbr", time,
                f"token rates sum to {total!r}, expected 1.0",
            )
        # Live-share strand: rate held by buckets of *dead* stations.
        # Transient while a failure is being detected (the reaper needs
        # its idle window), so only a deficit persisting past the grace
        # period is a violation — exactly the bug a crashed station
        # leaves behind when nothing reaps it.
        if live < 1.0 - self.strand_tolerance:
            if self._strand_since is None:
                self._strand_since = time
            elif time - self._strand_since >= self.strand_grace_us:
                dead = sorted(set(buckets) - set(stations))
                raise InvariantViolation(
                    "tbr", time,
                    f"{1.0 - live:.3f} of token rate stranded on "
                    f"non-associated stations {dead} for "
                    f"{(time - self._strand_since) / 1e6:.2f}s "
                    "(dead-peer state never reaped)",
                )
        else:
            self._strand_since = None

    # ------------------------------------------------------------------
    # end-of-run checks
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Packet conservation at end of run.

        Every packet the AP's pool ever handed out must be back
        (``recycled``) or still legitimately referenced — queued in the
        downlink scheduler, loaded in the AP MAC, or in flight on the
        channel.  A nonzero remainder means some path dropped a packet
        without releasing it (the leak the chaos events are designed
        to provoke).
        """
        self.uninstall()
        leak = pool_leak(self.cell)
        if leak != 0:
            pool = self.cell.ap.packet_pool
            raise InvariantViolation(
                "packet-pool", self.cell.sim.now,
                f"{leak:+d} pooled packets unaccounted for "
                f"(allocated={pool.allocated} reused={pool.reused} "
                f"recycled={pool.recycled}, "
                f"live={len(live_pooled_packets(self.cell))})",
            )
