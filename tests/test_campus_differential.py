"""Differential equivalence: a 1-cell campus IS the single-cell path.

The campus layer earns trust by proving it adds nothing when there is
nothing to add: the same stations, flows and timeline run through a
one-cell ``CampusSpec`` must be *byte-identical* — rendered figures,
usage ledger, per-category event counts — to the plain single-cell
scenario path.  Every RNG stream, event ordering and measurement
window has to line up for this to hold, so any campus-layer divergence
(an extra event, a renamed stream, a skewed warm-up) fails here first.
"""

import pytest

from repro.scenario import (
    CampusSpec,
    CellSpec,
    FlowSpec,
    RateSwitchEvent,
    ScenarioSpec,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
    render_result,
    run_spec,
)

STATIONS = (
    StationSpec("fast", rate_mbps=11.0),
    StationSpec("slow", rate_mbps=1.0),
)
FLOWS = (
    FlowSpec(station="fast", kind="tcp", direction="up"),
    FlowSpec(station="slow", kind="tcp", direction="up"),
)
TIMELINE = (
    TrafficOffEvent(at_s=0.9, station="fast"),
    RateSwitchEvent(at_s=1.0, station="slow", rate_mbps=5.5),
    TrafficOnEvent(at_s=1.2, station="fast"),
)


def _pair(scheduler: str, timeline=(), seed: int = 3):
    """The same workload as a plain spec and as a 1-cell campus."""
    common = dict(
        name="diff",
        scheduler=scheduler,
        seconds=1.8,
        warmup_seconds=0.4,
        seed=seed,
        timeline=timeline,
    )
    plain = ScenarioSpec(stations=STATIONS, flows=FLOWS, **common)
    campus = ScenarioSpec(
        stations=(),
        flows=(),
        campus=CampusSpec(
            cells=(
                CellSpec(name="solo", stations=STATIONS, flows=FLOWS),
            )
        ),
        **common,
    )
    return plain, campus


def _identical(plain_result, campus_result):
    assert render_result(plain_result) == render_result(campus_result)
    assert plain_result.throughput_mbps == campus_result.throughput_mbps
    assert (
        plain_result.flow_throughput_mbps
        == campus_result.flow_throughput_mbps
    )
    assert plain_result.occupancy == campus_result.occupancy
    assert (
        plain_result.final_rates_mbps == campus_result.final_rates_mbps
    )
    assert plain_result.timeline_fired == campus_result.timeline_fired
    assert (
        plain_result.events_executed == campus_result.events_executed
    )
    assert (
        plain_result.events_by_category
        == campus_result.events_by_category
    )
    assert plain_result.pool_leaked == campus_result.pool_leaked == 0


@pytest.mark.parametrize("scheduler", ["fifo", "rr", "drr", "tbr"])
def test_one_cell_campus_is_byte_identical(scheduler):
    plain, campus = _pair(scheduler)
    _identical(run_spec(plain), run_spec(campus))


def test_one_cell_campus_matches_through_a_timeline():
    plain, campus = _pair("tbr", timeline=TIMELINE)
    plain_result, campus_result = run_spec(plain), run_spec(campus)
    assert plain_result.timeline_fired == len(TIMELINE)
    _identical(plain_result, campus_result)


def test_one_cell_campus_matches_under_the_sanitizer():
    plain, campus = _pair("tbr", timeline=TIMELINE)
    _identical(
        run_spec(plain, sanitize=True), run_spec(campus, sanitize=True)
    )


def test_one_cell_campus_matches_with_fast_forward_flagged():
    # TCP flows are statically ineligible, so the flag must be a no-op
    # on both paths — flagged and unflagged all agree.
    plain, campus = _pair("tbr")
    results = [
        run_spec(plain, fast_forward=False),
        run_spec(campus, fast_forward=False),
        run_spec(plain, fast_forward=True),
        run_spec(campus, fast_forward=True),
    ]
    for result in results[1:]:
        _identical(results[0], result)
    assert all(r.fast_forwards == 0 for r in results)


def test_one_cell_campus_render_has_no_campus_block():
    _, campus = _pair("tbr")
    rendered = render_result(run_spec(campus))
    assert "campus:" not in rendered


def test_one_cell_campus_shares_the_digest_space_but_not_the_digest():
    # The two paths are equivalent at runtime yet remain distinct specs
    # (the campus section is real content): caches must not conflate
    # them.
    plain, campus = _pair("tbr")
    assert plain.digest != campus.digest
