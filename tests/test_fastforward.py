"""Steady-state fast-forward: kernel jumps, detector gating, parity.

Three layers of coverage:

* kernel — ``Simulator.fast_forward_to`` shifts pending events, pins
  timeline (category OTHER) events at their absolute times, refuses to
  jump over one, and notifies listeners;
* detector — workloads the engine cannot certify (TCP goldens, churn,
  outages, degrade windows, dense rate switches) take zero jumps and
  render *byte-identically* with the flag on, while the steady-long
  family engages and matches event-by-event results within printed
  precision;
* integration — the sanitizer's unweakened checks pass across
  synthesized jump boundaries, and station *names* never leak into the
  detector's membership logic (a station literally named "steady" is
  load-bearing in the bursty golden).
"""

import pathlib

import pytest

from repro.scenario import build_spec, render_result, run_spec
from repro.scenario.builder import ScenarioRuntime
from repro.scenario.spec import (
    ApOutageEvent,
    ChannelDegradeEvent,
    FlowSpec,
    JoinEvent,
    LeaveEvent,
    RateSwitchEvent,
    ScenarioSpec,
    StationSpec,
)
from repro.sim.event import EventCategory
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.steady import FastForwardConfig, FastForwardEngine

from test_scenario_golden import GOLDEN_DIR, GOLDEN_PARAMS


# ----------------------------------------------------------------------
# kernel: fast_forward_to / next_pending
# ----------------------------------------------------------------------
def test_fast_forward_shifts_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(100.0, fired.append, "mac", category=EventCategory.MAC)
    sim.schedule(250.0, fired.append, "timer", category=EventCategory.TIMER)
    sim.fast_forward_to(1_000.0)
    assert sim.now == 1_000.0
    assert sim.fast_forwards == 1
    assert sim.fast_forwarded_us == 1_000.0
    # Relative spacing survives the jump: the events fire 100 and 250us
    # after the (new) clock, not at their stale absolute times.
    sim.run(until=1_150.0)
    assert fired == ["mac"]
    sim.run(until=1_300.0)
    assert fired == ["mac", "timer"]


def test_fast_forward_pins_timeline_events():
    sim = Simulator()
    fired = []
    sim.schedule(5_000.0, fired.append, "timeline", category=EventCategory.OTHER)
    sim.schedule(100.0, fired.append, "mac", category=EventCategory.MAC)
    sim.fast_forward_to(4_000.0)
    # The OTHER event keeps its absolute time; the MAC event shifted.
    assert sim.next_pending(EventCategory.OTHER) == 5_000.0
    assert sim.next_pending(EventCategory.MAC) == 4_100.0
    sim.run(until=6_000.0)
    assert fired == ["mac", "timeline"]


def test_fast_forward_refuses_to_cross_timeline_events():
    sim = Simulator()
    sim.schedule(500.0, lambda: None, category=EventCategory.OTHER)
    with pytest.raises(SimulationError):
        sim.fast_forward_to(1_000.0)
    # The failed jump left the clock alone.
    assert sim.now == 0.0
    assert sim.fast_forwards == 0


def test_fast_forward_rejects_backwards_and_noops_in_place():
    sim = Simulator()
    sim.schedule(10.0, lambda: None, category=EventCategory.TIMER)
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.fast_forward_to(1.0)
    sim.fast_forward_to(sim.now)  # zero-length jump is a no-op
    assert sim.fast_forwards == 0


def test_fast_forward_drops_cancelled_entries():
    sim = Simulator()
    keep = sim.schedule(100.0, lambda: None, category=EventCategory.TIMER)
    dead = sim.schedule(200.0, lambda: None, category=EventCategory.TIMER)
    sim.cancel(dead)
    sim.fast_forward_to(1_000.0)
    # The rebuild discarded the corpse: one live entry, zero stale.
    assert sim.pending_count() == 1
    assert sim._stale == 0
    assert keep.time == 1_100.0


def test_fast_forward_notifies_listeners():
    sim = Simulator()
    seen = []
    sim.ff_listeners.append(lambda old, new: seen.append((old, new)))
    sim.schedule(10.0, lambda: None, category=EventCategory.TIMER)
    sim.fast_forward_to(500.0)
    assert seen == [(0.0, 500.0)]


def test_fast_forward_inside_run_raises():
    sim = Simulator()
    errors = []

    def jump():
        try:
            sim.fast_forward_to(sim.now + 100.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(10.0, jump)
    sim.run(until=20.0)
    assert len(errors) == 1


def test_next_pending_filters_by_category():
    sim = Simulator()
    sim.schedule(300.0, lambda: None, category=EventCategory.MAC)
    sim.schedule(700.0, lambda: None, category=EventCategory.OTHER)
    cancelled = sim.schedule(50.0, lambda: None, category=EventCategory.MAC)
    sim.cancel(cancelled)
    assert sim.next_pending() == 300.0
    assert sim.next_pending(EventCategory.MAC) == 300.0
    assert sim.next_pending(EventCategory.OTHER) == 700.0
    assert sim.next_pending(EventCategory.PHY) is None


# ----------------------------------------------------------------------
# A/B golden parity: every golden family, flag on vs pinned render
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(GOLDEN_PARAMS))
def test_golden_families_byte_identical_with_flag_on(family):
    # Every golden family carries at least one TCP flow, so the engine's
    # static gate routes them through plain cell.run() — the flag must
    # be byte-invisible, not merely approximately right.
    result = run_spec(
        build_spec(family, **GOLDEN_PARAMS[family]), fast_forward=True
    )
    assert result.fast_forwards == 0
    rendered = render_result(result) + "\n"
    expected = (GOLDEN_DIR / f"scenario_{family}.txt").read_text()
    assert rendered == expected


# ----------------------------------------------------------------------
# steady-long: the engine engages and matches event-by-event
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def steady_long_ab():
    spec = build_spec("steady-long", seconds=6.0, perturb_every_s=2.5)
    return (
        run_spec(spec, fast_forward=False),
        run_spec(spec, fast_forward=True),
    )


def test_steady_long_actually_jumps(steady_long_ab):
    slow, fast = steady_long_ab
    assert fast.fast_forwards >= 2
    assert fast.fast_forwarded_s > 3.0
    # The point of the exercise: far fewer events executed.
    assert fast.events_executed < slow.events_executed / 2
    # Baseline run must not have jumped.
    assert slow.fast_forwards == 0
    assert slow.fast_forwarded_s == 0.0


def test_steady_long_matches_event_by_event(steady_long_ab):
    slow, fast = steady_long_ab
    assert sorted(fast.throughput_mbps) == sorted(slow.throughput_mbps)
    for name, mbps in slow.throughput_mbps.items():
        assert fast.throughput_mbps[name] == pytest.approx(mbps, rel=0.10)
    for name, occ in slow.occupancy.items():
        assert abs(fast.occupancy[name] - occ) < 0.05
    # Structural outcomes are exact, not approximate: the same timeline
    # fired and every station ends at the same rate.
    assert fast.timeline_fired == slow.timeline_fired
    assert fast.final_rates_mbps == slow.final_rates_mbps
    assert fast.total_mbps == pytest.approx(slow.total_mbps, rel=0.05)


def test_steady_long_fifo_uses_dcf_model():
    # The non-TBR path gates on dcf_time_shares instead of Eq 11.  A
    # shared drop-tail FIFO mixes slowly, so this test stretches the
    # calibration window (the config knob that trades wall-clock for
    # synthesis accuracy) instead of accepting a sloppier tolerance.
    spec = build_spec(
        "steady-long", scheduler="fifo", seconds=5.0, perturb_every_s=10.0
    )
    slow = run_spec(spec, fast_forward=False)
    runtime = ScenarioRuntime(spec, fast_forward=True)
    runtime.ff_engine = FastForwardEngine(
        runtime.cell, FastForwardConfig(calibration_us=1_000_000.0)
    )
    runtime.run()
    assert runtime.cell.sim.fast_forwards >= 1
    fast_total = sum(runtime.cell.station_throughputs_mbps().values())
    assert fast_total == pytest.approx(slow.total_mbps, rel=0.10)


# ----------------------------------------------------------------------
# satellite 1: detector keys on identity, never on station names
# ----------------------------------------------------------------------
def _udp_down_spec(name, stations, timeline=(), seconds=4.0, **kwargs):
    flows = tuple(
        FlowSpec(
            station=st.name, kind="udp", direction="down", rate_mbps=8.0
        )
        for st in stations
    )
    return ScenarioSpec(
        name=name,
        scheduler=kwargs.pop("scheduler", "tbr"),
        stations=tuple(stations),
        flows=flows,
        timeline=tuple(timeline),
        seconds=seconds,
        warmup_seconds=kwargs.pop("warmup_seconds", 0.5),
        seed=kwargs.pop("seed", 1),
        **kwargs,
    )


def test_station_named_steady_is_just_another_station():
    # The bursty golden ships a station literally named "steady"; if the
    # detector ever matched on names, this spec would confuse it.  It
    # must engage normally and agree with the event-by-event run.
    spec = _udp_down_spec(
        "steady-name",
        [
            StationSpec("steady", rate_mbps=11.0),
            StationSpec("fast", rate_mbps=5.5),
        ],
    )
    slow = run_spec(spec, fast_forward=False)
    fast = run_spec(spec, fast_forward=True)
    assert fast.fast_forwards >= 1
    assert fast.fast_forwarded_s > 1.0
    for name, mbps in slow.throughput_mbps.items():
        assert fast.throughput_mbps[name] == pytest.approx(mbps, rel=0.10)


# ----------------------------------------------------------------------
# satellite 3: false positives — each disturbance inhibits, and the
# inhibited run is byte-identical to the flag-off run
# ----------------------------------------------------------------------
def _assert_inhibited_and_identical(spec):
    slow = run_spec(spec, fast_forward=False)
    fast = run_spec(spec, fast_forward=True)
    assert fast.fast_forwards == 0
    assert fast.fast_forwarded_s == 0.0
    # An inhibited engine run is segmented cell.run() calls — the kernel
    # composition property makes that byte-identical, so compare renders
    # *and* the exact event accounting.
    assert render_result(fast) == render_result(slow)
    assert fast.events_executed == slow.events_executed
    assert fast.events_by_category == slow.events_by_category


def test_churn_inhibits_fast_forward():
    stations = [StationSpec("base", rate_mbps=11.0)]
    timeline = [
        JoinEvent(
            at_s=1.5,
            station=StationSpec("guest", rate_mbps=2.0),
            flows=(
                FlowSpec(
                    station="guest", kind="udp", direction="down",
                    rate_mbps=4.0,
                ),
            ),
        ),
        LeaveEvent(at_s=2.5, station="guest"),
    ]
    _assert_inhibited_and_identical(
        _udp_down_spec("ff-churn", stations, timeline, seconds=3.4)
    )


def test_ap_outage_mid_window_inhibits_fast_forward():
    stations = [
        StationSpec("a", rate_mbps=11.0),
        StationSpec("b", rate_mbps=2.0),
    ]
    timeline = [ApOutageEvent(at_s=1.6, duration_s=0.5)]
    _assert_inhibited_and_identical(
        _udp_down_spec("ff-outage", stations, timeline, seconds=3.2)
    )


def test_degrade_windows_inhibit_fast_forward():
    stations = [
        StationSpec("a", rate_mbps=11.0),
        StationSpec("b", rate_mbps=5.5),
    ]
    # Back-to-back loss windows: retries void the clean-channel gate in
    # any window the landmark gate doesn't already veto.
    timeline = [
        ChannelDegradeEvent(at_s=1.0, duration_s=0.8, loss_probability=0.4),
        ChannelDegradeEvent(at_s=2.2, duration_s=0.8, loss_probability=0.4),
    ]
    _assert_inhibited_and_identical(
        _udp_down_spec("ff-degrade", stations, timeline, seconds=3.4)
    )


def test_dense_rate_switches_inhibit_fast_forward():
    stations = [
        StationSpec("mover", rate_mbps=11.0),
        StationSpec("anchor", rate_mbps=5.5),
    ]
    # Switch spacing below calibration + min_skip: no jump window ever
    # opens between consecutive landmarks.
    timeline = [
        RateSwitchEvent(at_s=0.8 + 0.9 * i, station="mover", rate_mbps=rate)
        for i, rate in enumerate((5.5, 2.0, 1.0, 2.0))
    ]
    _assert_inhibited_and_identical(
        _udp_down_spec("ff-rateswitch", stations, timeline, seconds=4.2)
    )


def test_tcp_workloads_fall_back_statically():
    # Static ineligibility (any TCP flow) short-circuits before the
    # engine installs anything: the run *is* cell.run().
    spec = ScenarioSpec(
        name="ff-tcp",
        scheduler="tbr",
        stations=(
            StationSpec("up", rate_mbps=11.0),
            StationSpec("down", rate_mbps=5.5),
        ),
        flows=(
            FlowSpec(station="up", kind="tcp", direction="up"),
            FlowSpec(
                station="down", kind="udp", direction="down", rate_mbps=4.0
            ),
        ),
        seconds=3.0,
        warmup_seconds=0.5,
        seed=1,
    )
    slow = run_spec(spec, fast_forward=False)
    fast = run_spec(spec, fast_forward=True)
    assert fast.fast_forwards == 0
    assert render_result(fast) == render_result(slow)
    assert fast.events_by_category == slow.events_by_category


# ----------------------------------------------------------------------
# satellite 4: sanitizer and fast-forward together
# ----------------------------------------------------------------------
def test_sanitizer_accepts_synthesized_jumps():
    spec = build_spec("steady-long", seconds=6.0, perturb_every_s=2.5)
    runtime = ScenarioRuntime(spec, sanitize=True, fast_forward=True)
    runtime.run()
    sim = runtime.cell.sim
    assert sim.fast_forwards >= 2
    sanitizer = runtime.sanitizer
    assert sanitizer is not None
    # The boundary check ran at every jump on top of the periodic ones,
    # against the planner's synthesized token state, unweakened.
    assert sanitizer.checks_run > sim.fast_forwards
    assert sanitizer.events_seen > 0
    # And the sanitized fast-forward run agrees with the unsanitized one
    # (the sanitizer observes, never perturbs).
    plain = run_spec(spec, fast_forward=True)
    assert plain.fast_forwards == sim.fast_forwards
    assert plain.throughput_mbps == runtime.cell.station_throughputs_mbps()


def test_sanitizer_env_and_fastfwd_env_compose(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_FASTFWD", "1")
    spec = build_spec("steady-long", seconds=4.0, perturb_every_s=10.0)
    result = run_spec(spec)  # both knobs default from the environment
    assert result.fast_forwards >= 1
    assert result.pool_leaked == 0


# ----------------------------------------------------------------------
# engine plumbing details
# ----------------------------------------------------------------------
def test_engine_counts_match_kernel_counters():
    spec = build_spec("steady-long", seconds=6.0, perturb_every_s=2.5)
    runtime = ScenarioRuntime(spec, fast_forward=True)
    runtime.run()
    assert runtime.ff_engine is not None
    assert runtime.ff_engine.jumps == runtime.cell.sim.fast_forwards


def test_short_windows_never_jump():
    # A measurement window below calibration + min_skip cannot open a
    # jump window — the structural guarantee behind experiment goldens.
    config = FastForwardConfig()
    budget_s = (config.calibration_us + config.min_skip_us) / 1e6
    spec = _udp_down_spec(
        "ff-short",
        [StationSpec("a", rate_mbps=11.0), StationSpec("b", rate_mbps=2.0)],
        seconds=budget_s * 0.9,
    )
    fast = run_spec(spec, fast_forward=True)
    assert fast.fast_forwards == 0


def test_static_eligibility_requires_udp_downlink_flows():
    eligible = ScenarioRuntime(
        _udp_down_spec(
            "ff-eligible", [StationSpec("a", rate_mbps=11.0)], seconds=1.0
        ),
        fast_forward=True,
    )
    assert FastForwardEngine(eligible.cell)._statically_eligible()
    # No flows at all: nothing to saturate, nothing to synthesize.
    idle = ScenarioRuntime(
        ScenarioSpec(
            name="ff-idle",
            scheduler="tbr",
            stations=(StationSpec("a", rate_mbps=11.0),),
            seconds=1.0,
            seed=1,
        ),
        fast_forward=True,
    )
    assert not FastForwardEngine(idle.cell)._statically_eligible()
