"""Station lifecycle: disassociation through MAC, scheduler and TBR.

The fairness claim is about *currently associated* stations, so a true
leave must release everything the association held: the per-station
queue (packets back to the pool), the TBR token bucket and its rate
(back to the active stations, not parked at ``min_rate``), the MAC's
pending events, and the channel subscriptions.  These tests fail
tier-1 if a disassociated station retains tokens, rate, queue backlog
or channel subscriptions — plus the lifecycle edges: leave while a
frame is mid-flight, leave with a backlog, rejoin under TBR with
exactly one fresh ``T_init``, and double-disassociate as a no-op.
"""

import pytest

from repro.core.tbr import TbrConfig, TbrScheduler
from repro.node.cell import Cell
from repro.queueing.drr import DrrScheduler
from repro.queueing.fifo import ApFifoScheduler
from repro.queueing.round_robin import RoundRobinScheduler
from repro.sim import Simulator, us_from_s
from repro.transport.packet import Packet


def _pkt(station: str, size: int = 1500) -> Packet:
    return Packet(size, station, to_station=True)


# ----------------------------------------------------------------------
# scheduler-level lifecycle
# ----------------------------------------------------------------------
def test_double_disassociate_is_a_noop():
    sched = RoundRobinScheduler()
    sched.associate("a")
    sched.associate("b")
    assert sched.disassociate("a") == 0
    assert sched.stations() == ["b"]
    assert sched.disassociate("a") == 0  # second time: nothing to do
    assert sched.disassociate("ghost") == 0  # never associated: nothing
    assert sched.stations() == ["b"]


def test_disassociate_refuses_late_arrivals_until_reassociation():
    sched = RoundRobinScheduler()
    sched.associate("a")
    sched.disassociate("a")
    # A late wired-pipe packet must not resurrect the association.
    assert sched.enqueue(_pkt("a")) is False
    assert not sched.is_associated("a")
    assert sched.admits("a") is False
    sched.drop_arrival("a")  # the demand path's follow-up call is safe
    assert sched.refused_departed == 2
    assert sched.total_backlog() == 0
    # ...but a brand-new station still lazily associates,
    assert sched.enqueue(_pkt("fresh")) is True
    # and an explicit re-association reopens the door.
    sched.associate("a")
    assert sched.enqueue(_pkt("a")) is True


def test_disassociate_redivides_buffer_and_keeps_rr_order():
    sched = RoundRobinScheduler(total_capacity=90)
    for name in ("a", "b", "c"):
        sched.associate(name)
    assert sched.queues["a"].capacity == 30
    sched.enqueue(_pkt("b"))
    sched.enqueue(_pkt("c"))
    sched.disassociate("a")
    # Remaining stations split the freed buffer and keep their packets.
    assert sched.stations() == ["b", "c"]
    assert all(q.capacity == 45 for q in sched.queues.values())
    assert sched.dequeue().station == "b"
    assert sched.dequeue().station == "c"


def test_disassociate_keeps_drop_counter_monotonic():
    sched = RoundRobinScheduler(per_station_capacity=1)
    sched.associate("a")
    sched.enqueue(_pkt("a"))
    assert sched.enqueue(_pkt("a")) is False  # tail drop
    assert sched.dropped() == 1
    sched.disassociate("a")
    assert sched.dropped() == 1  # departed queue's drops still counted


def test_fifo_disassociate_purges_shared_fifo():
    sched = ApFifoScheduler()
    sched.enqueue(_pkt("a"))
    sched.enqueue(_pkt("b"))
    sched.enqueue(_pkt("a"))
    assert sched.disassociate("a") == 2
    assert sched.total_backlog() == 1
    assert sched.dequeue().station == "b"
    assert sched.enqueue(_pkt("a")) is False  # departed: refused
    assert sched.refused_departed == 1


def test_drr_disassociate_drops_deficit_state():
    sched = DrrScheduler()
    sched.associate("a")
    sched.associate("b")
    sched.deficit["a"] = 700.0
    sched.disassociate("a")
    assert "a" not in sched.deficit
    sched.associate("a")
    assert sched.deficit["a"] == 0.0  # fresh, not the stale 700


def test_drr_mid_visit_departure_grants_successor_its_quantum():
    sched = DrrScheduler(quantum_bytes=1500)
    sched.associate("a")
    sched.associate("b")
    sched.enqueue(_pkt("a", size=1500))
    sched.enqueue(_pkt("a", size=1500))
    sched.enqueue(_pkt("b", size=1500))
    # Serve one packet of a's visit: the visit grant is spent.
    assert sched.dequeue().station == "a"
    sched.disassociate("a")
    # b starts a *fresh* visit: it must receive its own quantum, not
    # inherit a's half-spent visit (which would pass it over).
    assert sched.dequeue().station == "b"


# ----------------------------------------------------------------------
# TBR: tokens and rate must be released, and T_init granted once
# ----------------------------------------------------------------------
def test_tbr_disassociate_returns_rate_to_active_pool():
    sim = Simulator(seed=1)
    sched = TbrScheduler(sim, TbrConfig(adjust_interval_us=0))
    for name in ("a", "b", "c", "d"):
        sched.associate(name)
    # Skew the rates the way ADJUSTRATEEVENT would (sum stays 1.0).
    sched.buckets["a"].rate = 0.40
    for name in ("b", "c", "d"):
        sched.buckets[name].rate = 0.20
    sched.disassociate("a")
    # The freed 0.40 is redistributed: active rates sum back to ~1.0,
    # preserving the learned ratios (equal here), instead of stranding
    # the departed station's share at min_rate forever.
    remaining = [sched.token_rate(n) for n in ("b", "c", "d")]
    assert sum(remaining) == pytest.approx(1.0)
    assert remaining == pytest.approx([1.0 / 3.0] * 3)
    assert "a" not in sched.buckets
    assert sched.token_rate("a") == 0.0
    assert sched.tokens_us("a") == 0.0


def test_tbr_rates_stay_normalized_after_leave_in_live_cell():
    cell = Cell(seed=3, scheduler="tbr")
    stations = [cell.add_station(f"n{i}", rate_mbps=11.0) for i in range(4)]
    for station in stations:
        cell.udp_flow(station, direction="down", rate_mbps=4.0)
    cell.sim.schedule(
        us_from_s(1.2), lambda: cell.remove_station("n0")
    )
    cell.run(seconds=3.0)  # spans several ADJUSTRATEEVENTs post-leave
    sched = cell.scheduler
    active = [sched.token_rate(f"n{i}") for i in range(1, 4)]
    assert sum(active) == pytest.approx(1.0, abs=1e-9)
    assert sched.token_rate("n0") == 0.0


def test_tbr_rejoin_grants_initial_tokens_exactly_once():
    sim = Simulator(seed=1)
    config = TbrConfig(adjust_interval_us=0)
    sched = TbrScheduler(sim, config)
    sched.associate("a")
    sched.associate("b")
    sched.buckets["a"].charge(35_000.0)  # deep in debt
    sched.disassociate("a")
    sched.associate("a")  # rejoin: fresh bucket, fresh T_init
    assert sched.tokens_us("a") == config.initial_tokens_us
    # Re-associating while present must NOT re-grant (idempotent).
    sched.buckets["a"].charge(5_000.0)
    sched.associate("a")
    assert sched.tokens_us("a") == config.initial_tokens_us - 5_000.0


def test_tbr_ignores_uplink_from_departed_station():
    sim = Simulator(seed=1)
    sched = TbrScheduler(sim, TbrConfig(adjust_interval_us=0))
    sched.associate("a")
    sched.associate("b")
    sched.disassociate("a")
    # An uplink frame already in the air when the station left must not
    # resurrect a bucket (or steal rate from the survivors).
    sched.on_uplink_complete("a", 2_000.0, payload_bytes=1500)
    assert "a" not in sched.buckets
    assert sched.token_rate("b") == pytest.approx(1.0)


# ----------------------------------------------------------------------
# cell-level teardown: MAC, channel subscriptions, packet pool
# ----------------------------------------------------------------------
def test_disassociated_station_retains_nothing():
    cell = Cell(seed=2, scheduler="tbr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    cell.add_station("n2", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=8.0)
    cell.run(seconds=0.5)
    mac = n1.mac
    cell.remove_station("n1")
    # No station object, no queue backlog, no tokens, no rate...
    assert "n1" not in cell.stations
    assert not cell.scheduler.is_associated("n1")
    assert cell.scheduler.backlog("n1") == 0
    assert cell.scheduler.tokens_us("n1") == 0.0
    assert cell.scheduler.token_rate("n1") == 0.0
    # ...and no channel subscriptions of any kind.
    assert not cell.channel.is_attached(mac)
    assert mac not in cell.channel.listeners
    assert all(lis.address != "n1" for lis in cell.channel.listeners)
    # The AP's pinned downlink rate entry is dropped too.
    assert "n1" not in cell.ap.rate_controller.table
    # Double remove is a no-op.
    cell.remove_station("n1")
    assert "n2" in cell.stations


def test_leave_with_nonempty_queue_flushes_packets_to_pool():
    # Saturate one downlink queue, then disassociate: every packet the
    # queue held must return to the AP packet pool (no leak).
    cell = Cell(seed=5, scheduler="rr")
    n1 = cell.add_station("n1", rate_mbps=1.0)
    cell.add_station("n2", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=8.0)
    cell.run(seconds=0.5)
    pool = cell.ap.packet_pool
    backlog = cell.scheduler.backlog("n1")
    assert backlog > 0  # 8 Mbps offered at a 1 Mbps PHY: queue is full
    recycled_before = pool.recycled
    cell.remove_station("n1")
    assert cell.scheduler.backlog("n1") == 0
    assert cell.scheduler.flushed_on_disassociate == backlog
    assert pool.recycled == recycled_before + backlog
    # Let the simulation keep running: no crash, no further deliveries.
    delivered = cell.flows[0].stats.bytes_delivered
    cell.run(seconds=0.3)
    assert cell.flows[0].stats.bytes_delivered == delivered
    # Every pooled packet ever handed out has been consumed again.
    assert pool.recycled == pool.allocated + pool.reused


def test_leave_while_frame_mid_flight_at_the_mac():
    # Remove the station while the AP MAC holds a frame for it: the
    # exchange plays out against a vanished receiver (retries, then
    # drop), the packet returns to the pool, and nothing crashes.
    cell = Cell(seed=7, scheduler="rr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    cell.add_station("n2", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=10.0)

    observed = {}

    def remove_mid_flight() -> None:
        # Saturated downlink: the AP has a frame for n1 loaded now.
        observed["loaded"] = cell.ap.mac.busy_with_frame
        cell.remove_station("n1")

    cell.sim.schedule(us_from_s(0.35), remove_mid_flight)
    cell.run(seconds=0.8)
    assert observed["loaded"] is True
    assert cell.ap.mac.tx_dropped >= 1  # the orphaned frame gave up
    pool = cell.ap.packet_pool
    assert pool.recycled == pool.allocated + pool.reused  # no leak
    assert not cell.scheduler.is_associated("n1")
    assert all(lis.address != "n1" for lis in cell.channel.listeners)


def test_station_shutdown_cancels_its_pending_mac_events():
    # A station mid-backoff (or awaiting an ACK) that leaves must not
    # fire MAC callbacks afterwards.
    cell = Cell(seed=11, scheduler="rr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    cell.add_station("n2", rate_mbps=11.0)
    cell.udp_flow(n1, direction="up", rate_mbps=6.0)
    cell.run(seconds=0.2)
    flow = cell.flows[0]
    flow.sender.stop()
    tx_attempts = n1.mac.tx_attempts
    cell.remove_station("n1")
    cell.run(seconds=0.3)
    assert n1.mac.tx_attempts == tx_attempts  # silent after shutdown
    assert len(n1.queue) == 0


# ----------------------------------------------------------------------
# empty measurement windows
# ----------------------------------------------------------------------
def test_zero_length_measurement_window_reports_zeros():
    cell = Cell(seed=1, scheduler="rr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=4.0)
    # run() has not advanced past warm-up: the window is empty.
    assert cell.measured_us == 0.0
    assert cell.throughputs_mbps() == {"n1/udp-down": 0.0}
    assert cell.station_throughputs_mbps() == {"n1": 0.0}
    assert cell.total_throughput_mbps() == 0.0
    assert cell.occupancy_fractions() == {"n1": 0.0}
    assert cell.occupancy_shares() == {"n1": 0.0}


def test_reset_measurements_reopens_an_empty_window():
    cell = Cell(seed=1, scheduler="rr")
    n1 = cell.add_station("n1", rate_mbps=11.0)
    cell.udp_flow(n1, direction="down", rate_mbps=4.0)
    cell.run(seconds=0.3)
    assert cell.total_throughput_mbps() > 0.0
    cell.reset_measurements()
    # Immediately after the reset the window is empty again: still 0.0
    # everywhere, never a ZeroDivisionError.
    assert cell.measured_us == 0.0
    assert cell.total_throughput_mbps() == 0.0
    assert cell.occupancy_fractions() == {"n1": 0.0}
    assert cell.occupancy_shares() == {"n1": 0.0}
