"""Regression tests for the kernel fast paths.

Covers the lazy-cancellation accounting, heap compaction, O(1)
``pending_count``, the ``reschedule``/``schedule_many``/
``schedule_transient`` fast paths, and the ordering guarantees they
must preserve.
"""

import pytest

from repro.sim import EventPriority, SimulationError, Simulator
from repro.sim.kernel import _COMPACT_MIN_STALE


# ----------------------------------------------------------------------
# cancellation accounting and compaction
# ----------------------------------------------------------------------
def test_cancel_then_run_preserves_order_of_survivors():
    sim = Simulator()
    order = []
    events = [sim.schedule(float(i + 1), order.append, i) for i in range(10)]
    for i in (0, 3, 4, 8):
        events[i].cancel()
    sim.run()
    assert order == [1, 2, 5, 6, 7, 9]


def test_cancel_inside_callback_prevents_later_execution():
    sim = Simulator()
    fired = []
    later = sim.schedule(10.0, fired.append, "later")
    sim.schedule(5.0, later.cancel)
    sim.run()
    assert fired == []
    assert sim.pending_count() == 0


def test_peek_after_mass_cancel():
    sim = Simulator()
    keep = sim.schedule(500.0, lambda: None)
    doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    for event in doomed:
        event.cancel()
    assert sim.peek() == 500.0
    assert sim.pending_count() == 1
    del keep


def test_pending_count_is_accurate_through_churn():
    sim = Simulator()
    assert sim.pending_count() == 0
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(20)]
    assert sim.pending_count() == 20
    for event in events[::2]:
        event.cancel()
    assert sim.pending_count() == 10
    # Double-cancel must not be double-counted.
    events[0].cancel()
    assert sim.pending_count() == 10
    sim.run()
    assert sim.pending_count() == 0
    assert sim.events_executed == 10


def test_mass_cancel_triggers_compaction_and_keeps_order():
    sim = Simulator()
    order = []
    survivors = []
    stale = []
    for i in range(3 * _COMPACT_MIN_STALE):
        stale.append(sim.schedule(10_000.0 + i, order.append, "dead"))
    for i in range(5):
        survivors.append(sim.schedule(100.0 + i, order.append, i))
    for event in stale:
        event.cancel()
    assert sim.heap_compactions > 0
    assert sim.pending_count() == 5
    sim.run()
    assert order == [0, 1, 2, 3, 4]
    assert sim.events_executed == 5


def test_compaction_preserves_same_time_priority_ties():
    sim = Simulator()
    order = []
    # Interleave survivors at one timestamp with a stale majority.
    sim.schedule(50.0, order.append, "normal", priority=EventPriority.NORMAL)
    doomed = [
        sim.schedule(10.0, order.append, "dead") for _ in range(2 * _COMPACT_MIN_STALE)
    ]
    sim.schedule(50.0, order.append, "tx", priority=EventPriority.TX_START)
    sim.schedule(50.0, order.append, "normal2", priority=EventPriority.NORMAL)
    for event in doomed:
        event.cancel()
    assert sim.heap_compactions > 0
    sim.run()
    assert order == ["tx", "normal", "normal2"]


def test_cancel_after_execution_does_not_corrupt_counters():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    event.cancel()  # spent; must be a no-op for the accounting
    assert sim.pending_count() == 0
    sim.schedule(3.0, lambda: None)
    assert sim.pending_count() == 1


# ----------------------------------------------------------------------
# reschedule (timer reuse)
# ----------------------------------------------------------------------
def test_reschedule_reuses_spent_event_object():
    sim = Simulator()
    fired = []
    first = sim.schedule(1.0, fired.append, "a")
    sim.run()
    second = sim.reschedule(first, 1.0, fired.append, "b")
    assert second is first  # recycled in place
    sim.run()
    assert fired == ["a", "b"]
    assert sim.events_executed == 2


def test_reschedule_of_queued_event_allocates_fresh():
    sim = Simulator()
    fired = []
    queued = sim.schedule(10.0, fired.append, "queued")
    other = sim.reschedule(queued, 1.0, fired.append, "other")
    assert other is not queued
    sim.run()
    assert fired == ["other", "queued"]


def test_reschedule_of_cancelled_queued_event_allocates_fresh():
    sim = Simulator()
    fired = []
    dead = sim.schedule(10.0, fired.append, "dead")
    dead.cancel()
    live = sim.reschedule(dead, 1.0, fired.append, "live")
    assert live is not dead
    sim.run()
    assert fired == ["live"]


def test_reschedule_none_schedules_normally():
    sim = Simulator()
    fired = []
    sim.reschedule(None, 2.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]


def test_reschedule_foreign_event_allocates_fresh():
    sim_a = Simulator()
    sim_b = Simulator()
    fired = []
    foreign = sim_a.schedule(1.0, lambda: None)
    sim_a.run()
    event = sim_b.reschedule(foreign, 1.0, fired.append, "b")
    assert event is not foreign
    sim_b.run()
    assert fired == ["b"]


def test_reschedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.reschedule(None, -1.0, lambda: None)


def test_reschedule_ties_fall_after_existing_events():
    # A recycled event gets a fresh sequence number: at an equal
    # timestamp and priority it runs after anything scheduled earlier.
    sim = Simulator()
    order = []
    spent = sim.schedule(1.0, order.append, "warmup")
    sim.run()
    sim.schedule(5.0, order.append, "first")
    sim.reschedule(spent, 5.0, order.append, "second")
    sim.run()
    assert order == ["warmup", "first", "second"]


# ----------------------------------------------------------------------
# schedule_many
# ----------------------------------------------------------------------
def test_schedule_many_runs_in_request_order_on_ties():
    sim = Simulator()
    order = []
    events = sim.schedule_many((5.0, order.append, i) for i in range(6))
    assert len(events) == 6
    assert sim.pending_count() == 6
    sim.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_schedule_many_rejects_negative_delay_atomically():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_many([(1.0, lambda: None), (-2.0, lambda: None)])
    # The bad batch must not have been partially scheduled.
    assert sim.pending_count() == 0
    sim.run()
    assert sim.events_executed == 0


def test_schedule_many_passes_args():
    sim = Simulator()
    got = []
    sim.schedule_many([(1.0, lambda a, b: got.append((a, b)), 1, "two")])
    sim.run()
    assert got == [(1, "two")]


# ----------------------------------------------------------------------
# schedule_transient (recycled fire-and-forget events)
# ----------------------------------------------------------------------
def test_schedule_transient_executes_like_schedule():
    sim = Simulator()
    order = []
    sim.schedule_transient(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.run()
    assert order == ["a", "b"]
    assert sim.events_executed == 2


def test_transient_events_are_recycled():
    sim = Simulator()
    fired = []
    first = sim.schedule_transient(1.0, fired.append, 1)
    sim.run()
    second = sim.schedule_transient(1.0, fired.append, 2)
    assert second is first  # came back off the free list
    sim.run()
    assert fired == [1, 2]


def test_cancelled_transient_is_not_recycled():
    sim = Simulator()
    fired = []
    dead = sim.schedule_transient(1.0, fired.append, "dead")
    dead.cancel()
    fresh = sim.schedule_transient(1.0, fired.append, "fresh")
    assert fresh is not dead
    sim.run()
    assert fired == ["fresh"]


# ----------------------------------------------------------------------
# events_executed across run() variants
# ----------------------------------------------------------------------
def test_events_executed_accumulates_across_runs():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(until=2.5)
    assert sim.events_executed == 2
    sim.run(max_events=1)
    assert sim.events_executed == 3
    sim.run()
    assert sim.events_executed == 4


def test_event_at_infinity_executes_when_run_unbounded():
    sim = Simulator()
    fired = []
    sim.schedule(float("inf"), fired.append, "inf")
    sim.schedule(1.0, fired.append, "finite")
    sim.run()
    assert fired == ["finite", "inf"]
    assert sim.now == float("inf")  # clock stays a float, never None


def test_events_executed_is_live_during_run():
    sim = Simulator()
    seen = []
    for i in range(3):
        sim.schedule(float(i + 1), lambda: seen.append(sim.events_executed))
    sim.run()
    # Each callback sees the count of events completed *before* it.
    assert seen == [0, 1, 2]
    assert sim.events_executed == 3
