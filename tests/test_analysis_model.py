"""Tests for the analytic model (Equations 4-13) and baselines."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    BaselineModel,
    NodeSpec,
    PAPER_TABLE2_TCP_MBPS,
    analytic_baseline_mbps,
    dcf_time_shares,
    predict,
    rf_throughputs,
    rf_total,
    tf_throughputs,
    tf_time_shares,
    tf_total,
)


def paper_node(name, rate, weight=1.0):
    return NodeSpec(name, rate, beta_mbps=PAPER_TABLE2_TCP_MBPS[rate],
                    weight=weight)


# ----------------------------------------------------------------------
# baseline model
# ----------------------------------------------------------------------
def test_analytic_baseline_close_to_paper():
    for rate, paper in PAPER_TABLE2_TCP_MBPS.items():
        analytic = analytic_baseline_mbps(rate)
        assert analytic == pytest.approx(paper, rel=0.15)


def test_baseline_monotone_in_rate():
    values = [analytic_baseline_mbps(r) for r in (1.0, 2.0, 5.5, 11.0)]
    assert values == sorted(values)


def test_baseline_increases_with_packet_size():
    small = analytic_baseline_mbps(11.0, packet_bytes=500)
    large = analytic_baseline_mbps(11.0, packet_bytes=1500)
    assert large > small


def test_udp_baseline_exceeds_tcp():
    model = BaselineModel()
    assert model.udp_baseline_mbps(11.0) > model.tcp_baseline_mbps(11.0)


def test_contention_gap_shrinks_with_nodes():
    model = BaselineModel()
    assert model.contention_gap_us(4) < model.contention_gap_us(1)
    with pytest.raises(ValueError):
        model.contention_gap_us(0)


def test_unknown_transport_rejected():
    with pytest.raises(ValueError):
        analytic_baseline_mbps(11.0, transport="sctp")


# ----------------------------------------------------------------------
# Eq 4-10 (DCF / RF)
# ----------------------------------------------------------------------
def test_rf_equal_rates_split_equally():
    nodes = [paper_node("a", 11.0), paper_node("b", 11.0)]
    thr = rf_throughputs(nodes)
    assert thr["a"] == pytest.approx(thr["b"])
    assert sum(thr.values()) == pytest.approx(PAPER_TABLE2_TCP_MBPS[11.0])


def test_rf_mixed_rates_equal_throughput():
    """Eq 6: with equal packet sizes every node gets the same rate."""
    nodes = [paper_node("slow", 1.0), paper_node("fast", 11.0)]
    thr = rf_throughputs(nodes)
    assert thr["slow"] == pytest.approx(thr["fast"])


def test_dcf_time_shares_sum_to_one():
    nodes = [paper_node("a", 1.0), paper_node("b", 2.0), paper_node("c", 11.0)]
    shares = dcf_time_shares(nodes)
    assert sum(shares.values()) == pytest.approx(1.0)
    assert shares["a"] > shares["c"]  # slow node hogs the channel


def test_rf_1v11_matches_paper_figure2():
    nodes = [paper_node("slow", 1.0), paper_node("fast", 11.0)]
    total = rf_total(nodes)
    assert total == pytest.approx(1.34, rel=0.06)
    shares = dcf_time_shares(nodes)
    assert shares["slow"] / shares["fast"] == pytest.approx(6.4, rel=0.05)


def test_packet_size_diversity_shifts_shares():
    """Eqs 8-10: same rate, different sizes -> unequal T and R."""
    nodes = [
        NodeSpec("big", 11.0, packet_bytes=1500, beta_mbps=5.189),
        NodeSpec("small", 11.0, packet_bytes=300, beta_mbps=3.0),
    ]
    shares = dcf_time_shares(nodes)
    thr = rf_throughputs(nodes)
    assert shares["big"] > shares["small"]
    assert thr["big"] != pytest.approx(thr["small"])


# ----------------------------------------------------------------------
# Eq 11-13 (TF)
# ----------------------------------------------------------------------
def test_tf_shares_equal():
    nodes = [paper_node("a", 1.0), paper_node("b", 11.0), paper_node("c", 2.0)]
    shares = tf_time_shares(nodes)
    assert all(s == pytest.approx(1 / 3) for s in shares.values())


def test_tf_weighted_shares():
    nodes = [paper_node("gold", 11.0, weight=3.0), paper_node("plain", 11.0)]
    shares = tf_time_shares(nodes)
    assert shares["gold"] == pytest.approx(0.75)


def test_tf_throughput_is_beta_over_n():
    nodes = [paper_node("slow", 1.0), paper_node("fast", 11.0)]
    thr = tf_throughputs(nodes)
    assert thr["slow"] == pytest.approx(PAPER_TABLE2_TCP_MBPS[1.0] / 2)
    assert thr["fast"] == pytest.approx(PAPER_TABLE2_TCP_MBPS[11.0] / 2)


def test_baseline_property():
    """R'(i) is independent of the other nodes' rates (the paper's
    headline property of time-based fairness)."""
    slow = paper_node("slow", 1.0)
    against_fast = tf_throughputs([slow, paper_node("x", 11.0)])["slow"]
    against_slow = tf_throughputs([slow, paper_node("x", 1.0)])["slow"]
    against_mid = tf_throughputs([slow, paper_node("x", 2.0)])["slow"]
    assert against_fast == pytest.approx(against_slow)
    assert against_fast == pytest.approx(against_mid)


def test_rf_equals_tf_for_uniform_nodes():
    nodes = [paper_node("a", 5.5), paper_node("b", 5.5)]
    assert rf_total(nodes) == pytest.approx(tf_total(nodes))
    assert rf_throughputs(nodes) == pytest.approx(tf_throughputs(nodes))


def test_table3_values():
    nodes = [
        paper_node("n1", 1.0),
        paper_node("n2", 2.0),
        paper_node("n3", 11.0),
        paper_node("n4", 11.0),
    ]
    p = predict(nodes)
    assert p.rf_per_node["n1"] == pytest.approx(0.436, abs=0.002)
    assert p.rf_total == pytest.approx(1.742, abs=0.01)
    assert p.tf_per_node["n1"] == pytest.approx(0.202, abs=0.002)
    assert p.tf_per_node["n3"] == pytest.approx(1.30, abs=0.01)
    assert p.tf_total == pytest.approx(3.175, abs=0.01)
    assert p.improvement == pytest.approx(0.82, abs=0.01)


def test_empty_node_list_rejected():
    with pytest.raises(ValueError):
        rf_throughputs([])


def test_zero_weights_rejected():
    node = NodeSpec("a", 11.0, beta_mbps=5.0, weight=0.0)
    with pytest.raises(ValueError):
        tf_time_shares([node])


@given(
    st.lists(
        st.sampled_from([1.0, 2.0, 5.5, 11.0]),
        min_size=1,
        max_size=8,
    )
)
def test_model_invariants(rates):
    nodes = [paper_node(f"n{i}", r) for i, r in enumerate(rates)]
    rf_shares = dcf_time_shares(nodes)
    tf_shares = tf_time_shares(nodes)
    assert sum(rf_shares.values()) == pytest.approx(1.0)
    assert sum(tf_shares.values()) == pytest.approx(1.0)
    # TF aggregate always >= RF aggregate (equal sizes), equality iff
    # all rates identical.
    rf = rf_total(nodes)
    tf = tf_total(nodes)
    assert tf >= rf - 1e-9
    if len(set(rates)) == 1:
        assert tf == pytest.approx(rf)
    else:
        assert tf > rf
