"""ScenarioSpec: validation, content identity, campaign encoding."""

import pickle

import pytest

from repro.campaign.job import freeze, thaw
from repro.core.tbr import TbrConfig
from repro.scenario import (
    FlowSpec,
    JoinEvent,
    LeaveEvent,
    RateSwitchEvent,
    RejoinEvent,
    ScenarioSpec,
    StationSpec,
    TrafficOffEvent,
    TrafficOnEvent,
)


def two_station_spec(**overrides):
    kwargs = dict(
        name="t",
        stations=(
            StationSpec("slow", rate_mbps=1.0),
            StationSpec("fast", rate_mbps=11.0),
        ),
        flows=(
            FlowSpec(station="slow"),
            FlowSpec(station="fast"),
        ),
        seconds=1.0,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


# ----------------------------------------------------------------------
# content identity
# ----------------------------------------------------------------------
def test_equal_content_means_equal_spec():
    a, b = two_station_spec(), two_station_spec()
    assert a == b
    assert hash(a) == hash(b)
    assert a.digest == b.digest
    assert len({a, b}) == 1


def test_any_knob_changes_the_digest():
    base = two_station_spec()
    assert base != two_station_spec(seed=2)
    assert base != two_station_spec(scheduler="tbr")
    assert base != two_station_spec(seconds=2.0)
    assert base != two_station_spec(
        timeline=(LeaveEvent(at_s=0.5, station="slow"),)
    )


def test_spec_with_tbr_config_hashes_despite_mutable_fields():
    spec = two_station_spec(
        scheduler="tbr", tbr_config=TbrConfig(weights={"fast": 2.0})
    )
    assert isinstance(hash(spec), int)
    assert spec == two_station_spec(
        scheduler="tbr", tbr_config=TbrConfig(weights={"fast": 2.0})
    )


def test_freeze_thaw_roundtrip_preserves_identity():
    spec = two_station_spec(
        scheduler="tbr",
        tbr_config=TbrConfig(notify_clients=True),
        timeline=(
            JoinEvent(
                at_s=0.2,
                station=StationSpec("late", rate_mbps=2.0),
                flows=(FlowSpec(station="late"),),
            ),
            RateSwitchEvent(at_s=0.4, station="fast", rate_mbps=5.5),
            TrafficOffEvent(at_s=0.6, station="slow"),
            TrafficOnEvent(at_s=0.8, station="slow"),
        ),
    )
    thawed = thaw(freeze(spec))
    assert isinstance(thawed, ScenarioSpec)
    assert thawed == spec
    assert thawed.digest == spec.digest


def test_spec_pickles():
    spec = two_station_spec()
    assert pickle.loads(pickle.dumps(spec)) == spec


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_validate_accepts_a_full_timeline():
    two_station_spec(
        warmup_seconds=0.5,
        timeline=(
            JoinEvent(at_s=0.3, station=StationSpec("late")),
            RateSwitchEvent(at_s=0.5, station="late", rate_mbps=2.0),
            TrafficOffEvent(at_s=0.7, station="late"),
            TrafficOnEvent(at_s=0.9, station="late"),
            LeaveEvent(at_s=1.1, station="late"),
        ),
    ).validate()


@pytest.mark.parametrize(
    "overrides, message",
    [
        (dict(name=""), "name"),
        (dict(scheduler="edf"), "scheduler"),
        (dict(seconds=0.0), "seconds"),
        (dict(warmup_seconds=-1.0), "warmup"),
        (
            dict(stations=(StationSpec("a"), StationSpec("a"))),
            "duplicate station",
        ),
        (dict(flows=(FlowSpec(station="ghost"),)), "unknown station"),
        (
            dict(timeline=(LeaveEvent(at_s=0.1, station="ghost"),)),
            "unknown station",
        ),
    ],
)
def test_validate_rejects_bad_shapes(overrides, message):
    kwargs = dict(
        name="t",
        stations=(StationSpec("a"),),
        flows=(FlowSpec(station="a"),),
        seconds=1.0,
    )
    kwargs.update(overrides)
    with pytest.raises(ValueError, match=message):
        ScenarioSpec(**kwargs).validate()


def test_validate_tracks_timeline_causality():
    # Joining a name that exists is an error...
    with pytest.raises(ValueError, match="already exists"):
        two_station_spec(
            timeline=(JoinEvent(at_s=0.1, station=StationSpec("slow")),)
        ).validate()
    # ...as is leaving twice...
    with pytest.raises(ValueError, match="already left"):
        two_station_spec(
            timeline=(
                LeaveEvent(at_s=0.1, station="slow"),
                LeaveEvent(at_s=0.2, station="slow"),
            )
        ).validate()
    # ...or toggling traffic after departure...
    with pytest.raises(ValueError, match="already left"):
        two_station_spec(
            timeline=(
                LeaveEvent(at_s=0.1, station="slow"),
                TrafficOnEvent(at_s=0.2, station="slow"),
            )
        ).validate()
    # ...or re-rating a departed station...
    with pytest.raises(ValueError, match="already left"):
        two_station_spec(
            timeline=(
                LeaveEvent(at_s=0.1, station="slow"),
                RateSwitchEvent(at_s=0.2, station="slow", rate_mbps=2.0),
            )
        ).validate()
    # ...and a join's flows must belong to the joining station (the
    # builder files them under the joiner for quiesce/burst bookkeeping).
    with pytest.raises(ValueError, match="must belong to the joining"):
        two_station_spec(
            timeline=(
                JoinEvent(
                    at_s=0.2,
                    station=StationSpec("late"),
                    flows=(FlowSpec(station="slow"),),
                ),
            )
        ).validate()
    # Referencing a joined station is fine regardless of tuple order.
    two_station_spec(
        timeline=(
            RateSwitchEvent(at_s=0.5, station="late", rate_mbps=1.0),
            JoinEvent(at_s=0.2, station=StationSpec("late")),
        )
    ).validate()


def test_validate_tracks_rejoin_causality():
    # A full leave -> rejoin -> leave cycle is legal, and events after
    # the rejoin may reference the station again.
    two_station_spec(
        timeline=(
            LeaveEvent(at_s=0.1, station="slow"),
            RejoinEvent(at_s=0.3, station="slow"),
            RateSwitchEvent(at_s=0.5, station="slow", rate_mbps=2.0),
            LeaveEvent(at_s=0.7, station="slow"),
        )
    ).validate()
    # Rejoining a station that never left is an error...
    with pytest.raises(ValueError, match="never left"):
        two_station_spec(
            timeline=(RejoinEvent(at_s=0.1, station="slow"),)
        ).validate()
    # ...as is rejoining an unknown name...
    with pytest.raises(ValueError, match="unknown station"):
        two_station_spec(
            timeline=(RejoinEvent(at_s=0.1, station="ghost"),)
        ).validate()
    # ...or re-joining a departed name via JoinEvent (RejoinEvent is
    # the revival path; the original spec is reused).
    with pytest.raises(ValueError, match="already exists"):
        two_station_spec(
            timeline=(
                LeaveEvent(at_s=0.1, station="slow"),
                JoinEvent(at_s=0.3, station=StationSpec("slow")),
            )
        ).validate()


def test_validate_rejects_foreign_timeline_objects():
    class NotAnEvent:
        at_s = 0.5
        station = "slow"

    with pytest.raises(ValueError, match="unknown timeline event type"):
        two_station_spec(timeline=(NotAnEvent(),)).validate()


def test_rate_switch_rejects_nonpositive_rates():
    with pytest.raises(ValueError, match="positive rate"):
        two_station_spec(
            timeline=(
                RateSwitchEvent(at_s=0.1, station="slow", rate_mbps=0.0),
            )
        ).validate()
    with pytest.raises(ValueError, match="positive downlink rate"):
        two_station_spec(
            timeline=(
                RateSwitchEvent(
                    at_s=0.1, station="slow", rate_mbps=11.0,
                    downlink_rate_mbps=0.0,
                ),
            )
        ).validate()


def test_flow_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FlowSpec(station="a", kind="sctp").validate()
    with pytest.raises(ValueError, match="direction"):
        FlowSpec(station="a", direction="sideways").validate()
    with pytest.raises(ValueError, match="task_bytes"):
        FlowSpec(station="a", app="task").validate()
    with pytest.raises(ValueError, match="rate"):
        FlowSpec(station="a", kind="udp", rate_mbps=0.0).validate()
